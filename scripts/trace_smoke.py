#!/usr/bin/env python
"""Observability smoke gate.

Runs a traced AutoFeat augmentation over the diamond lake and asserts the
observability contract end to end:

1. the result carries a RunManifest that passes JSON-schema validation;
2. the manifest's timing tree accounts for the run's wall clock;
3. the Chrome-trace export loads cleanly and is non-empty;
4. the ``python -m repro.obs`` CLI accepts the saved manifest;
5. the no-op tracer is cheap: the measured per-span cost of a disabled
   tracer, scaled to this run's span count, stays under 2% of the traced
   wall time.

Exits non-zero on the first violated invariant.  Run via ``make
trace-smoke`` or ``scripts/check.sh``.
"""

import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Table
from repro.graph import DatasetRelationGraph, KFKConstraint
from repro.obs import Tracer, chrome_trace_json, validate_manifest
from repro.obs.__main__ import main as obs_cli


def diamond_lake(n=400, seed=3):
    rng = np.random.default_rng(seed)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": np.arange(n),
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


def gate(ok, message):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {message}")
    if not ok:
        sys.exit(1)


def count_nodes(tree):
    return 1 + sum(count_nodes(c) for c in tree.get("children", ()))


def null_span_cost_seconds(iterations=200_000):
    """Measured per-span cost of a disabled tracer (enter + exit)."""
    tracer = Tracer(enabled=False)
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("x"):
            pass
    return (time.perf_counter() - started) / iterations


def main():
    print("trace smoke: traced diamond-lake augmentation")
    drg = diamond_lake()
    config = AutoFeatConfig(sample_size=200, top_k=2, seed=0)
    result = AutoFeat(drg, config).augment("base", "label", "knn")
    manifest = result.run_manifest

    gate(manifest is not None, "result carries a run manifest")
    errors = validate_manifest(manifest.as_dict())
    gate(errors == [], f"manifest passes schema validation {errors or ''}")

    total = manifest.timing_total_seconds()
    wall = result.total_seconds
    gate(
        abs(total - wall) <= max(0.02, 0.05 * wall),
        f"timing tree ({total:.4f}s) accounts for wall clock ({wall:.4f}s)",
    )
    stages = manifest.stage_seconds()
    gate(
        stages and all(s >= 0 for s in stages.values()),
        f"stage timings non-negative: {manifest.stage_summary()}",
    )

    trace = json.loads(chrome_trace_json(manifest))
    gate(bool(trace["traceEvents"]), f"chrome trace has {len(trace['traceEvents'])} events")

    with tempfile.TemporaryDirectory() as tmp:
        path = manifest.save(Path(tmp) / "manifest.json")
        gate(obs_cli([str(path), "--validate"]) == 0, "obs CLI validates the manifest")
        chrome_path = Path(tmp) / "trace.json"
        gate(
            obs_cli([str(path), "--chrome", str(chrome_path)]) == 0
            and bool(json.loads(chrome_path.read_text())["traceEvents"]),
            "obs CLI exports a loadable chrome trace",
        )

    n_spans = count_nodes(manifest.timing)
    overhead = null_span_cost_seconds() * n_spans
    budget = 0.02 * wall
    gate(
        overhead < budget,
        f"no-op tracer overhead {overhead * 1e6:.1f}µs for {n_spans} spans "
        f"< 2% of wall ({budget * 1e6:.0f}µs)",
    )

    print("trace smoke passed")


if __name__ == "__main__":
    main()
