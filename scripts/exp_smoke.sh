#!/usr/bin/env bash
# End-to-end gate for the experiment-orchestration subsystem: runs the
# checked-in experiments/smoke.json matrix (2 datasets x 2 configs x
# 2 seeds) against a scratch store, twice to establish baselines, then
# verifies the three contracts scripts/check.sh gates every PR on:
#
#   1. a clean re-run passes the regression diff;
#   2. a killed sweep (--max-trials 3) resumes with exactly the 5
#      incomplete trials re-executed (fingerprint-counted in the store);
#   3. an injected per-hop slowdown (>=2x on the join stages, excluded
#      from trial fingerprints) is flagged by `diff --gate`.
#
# The scratch store keeps CI from dirtying the committed store index.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SPEC=experiments/smoke.json
SCRATCH="$(mktemp -d)"
STORE="$SCRATCH/store"
RESUME_STORE="$SCRATCH/resume-store"
trap 'rm -rf "$SCRATCH"' EXIT

echo "-- baseline runs (x2) --"
python -m repro.exp run "$SPEC" --store "$STORE" > /dev/null
python -m repro.exp run "$SPEC" --store "$STORE" > /dev/null

echo "-- clean re-run must pass the gate --"
python -m repro.exp diff "$SPEC" --store "$STORE" --gate

echo "-- kill/resume: 3 trials into a fresh store, then resume the remaining 5 --"
python -m repro.exp run "$SPEC" --store "$RESUME_STORE" --max-trials 3 \
    --run-id exp-smoke-partial > /dev/null
python -m repro.exp resume "$SPEC" --store "$RESUME_STORE" --run-id exp-smoke-resumed \
    --expect-executed 5 > /dev/null

echo "-- injected 2x+ hop slowdown must be flagged --"
python -m repro.exp run "$SPEC" --store "$STORE" --inject-hop-latency 0.05 \
    --run-id exp-smoke-slow > /dev/null
if python -m repro.exp diff "$SPEC" --store "$STORE" --run-id exp-smoke-slow --gate > /dev/null; then
    echo "ERROR: injected slowdown was not flagged as a regression" >&2
    exit 1
fi

echo "exp smoke ok"
