#!/usr/bin/env bash
# Repo-wide check: tier-1 test suite plus the engine-cache micro-bench in
# smoke mode (verifies cached/uncached discovery parity and writes
# BENCH_engine_cache.json).  Run from anywhere: `scripts/check.sh` or
# `make check`.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== engine hop-cache micro-bench (smoke) =="
python benchmarks/bench_engine_cache.py --smoke

echo
echo "all checks passed"
