#!/usr/bin/env bash
# Repo-wide check: the fault-isolation and observability fast gates, the
# tier-1 test suite, and the engine-cache and selection-kernel
# micro-benches in smoke mode (verifying cached/uncached and
# kernels-on/off discovery parity; they write BENCH_engine_cache.json and
# BENCH_selection_kernels.json).  Run from anywhere: `scripts/check.sh`
# or `make check`.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== fault-isolation fast gate =="
python -m pytest -q tests/engine tests/core -k fault

echo
echo "== parallel-backend fast gate =="
# Parity suites cover all three backends (threads and processes run at
# max_workers=2, which exercises worker pickling); the smoke bench gates
# on serial/threads/processes ranking parity.
python -m pytest -q tests/engine/test_parallel_parity.py \
    tests/core/test_parallel_faults.py tests/obs/test_parallel_manifest.py
python benchmarks/bench_parallel_discovery.py --smoke

echo
echo "== service fast gate =="
# Service suites cover the request queue, warm result cache, incremental
# DRG maintenance and surgical invalidation; the smoke bench gates on
# warm/cold parity and the >=5x warm-request speedup.
python -m pytest -q tests/service tests/graph/test_drg_delta.py \
    tests/discovery/test_incremental.py tests/engine/test_hop_cache.py
python benchmarks/bench_service.py --smoke

echo
echo "== chunked-join fast gate =="
# Encoding/chunked suites cover KeyDictionary interning + alignment, the
# out-of-core executor and spill manager, and the encoded-vs-scalar
# hypothesis parity properties; the smoke bench gates on kernel parity,
# the >=2x build+probe speedup and a spilling bounded-memory run.
python -m pytest -q tests/dataframe/test_encoding.py \
    tests/engine/test_chunked.py tests/engine/test_encoded_parity.py
python benchmarks/bench_chunked_join.py --smoke

echo
echo "== anytime-navigation fast gate =="
# Anytime suites cover the UCB frontier, run budgets, cooperative hop/run
# deadline enforcement, budgeted-vs-full-BFS parity and monotone-regret
# hypothesis properties, and service per-request budgets; the smoke bench
# gates on degeneration and infinite-budget parity over covertype.
python -m pytest -q tests/core/test_anytime.py \
    tests/engine/test_deadlines.py tests/service/test_service.py
python benchmarks/bench_anytime.py --smoke

echo
echo "== sketch-index fast gate =="
# Sketch-index suites cover banding validation, the LSH candidate index
# channels, filtered-vs-quadratic DRG parity properties and the
# containment-estimate statistics; the smoke bench gates on paper-lake
# bit-parity at recall 1.0 and sub-quadratic pairs-scored growth.
python -m pytest -q tests/discovery -k "index or lsh"
python benchmarks/bench_sketch_index.py --smoke

echo
echo "== observability fast gate =="
python -m pytest -q tests/obs
python scripts/trace_smoke.py

echo
echo "== experiment-orchestration fast gate =="
# Spec/store/runner/report suites plus the end-to-end smoke matrix
# (experiments/smoke.json against a scratch store): two baseline sweeps,
# a clean regression diff, kill/resume with exact fingerprint counters,
# and an injected hop slowdown that must trip `diff --gate`.
python -m pytest -q tests/exp tests/bench
scripts/exp_smoke.sh

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== engine hop-cache micro-bench (smoke) =="
python benchmarks/bench_engine_cache.py --smoke

echo
echo "== selection-kernel micro-bench (smoke) =="
python benchmarks/bench_selection_kernels.py --smoke

echo
echo "all checks passed"
