"""The shared join-execution engine: plan/execute split over the DRG.

Everything in the system that joins along DRG edges — the discovery BFS,
top-k path materialisation, and all four baselines — executes through one
:class:`JoinEngine`.  The engine separates the two halves of a hop:

* **plan** — resolve the edge into a probe column and a build-side
  :class:`~repro.dataframe.JoinIndex` (served by the :class:`HopCache`
  whenever the same ``(table, key_column, seed)`` was built before);
* **execute** — probe the running table through the index and collect the
  qualified columns the hop contributed.

The engine also owns the run's :class:`EngineStats`, so every consumer
gets observable build/probe/cache counters for free.
"""

from __future__ import annotations

import time

from ..dataframe import JoinIndex, Table
from ..errors import FaultError, HopBudgetExceeded, JoinError, RunBudgetExceeded
from ..graph import DatasetRelationGraph, JoinPath, OrientedEdge
from ..obs.tracer import NULL_TRACER, Tracer
from .chunked import chunked_left_join
from .faults import FaultInjector
from .hop_cache import HopCache
from .naming import qualified, source_column_name
from .stats import EngineStats, ExecutionStats

__all__ = ["JoinEngine"]


def _hop_context(base_name: str, path: JoinPath | None, edge: OrientedEdge) -> str:
    """Render the path context attached to hop-level :class:`JoinError`."""
    prefix = path.describe() if path is not None and path.edges else "(at base)"
    failing = (
        f"{edge.source}.{edge.source_column} -> {edge.target}.{edge.target_column}"
    )
    return f"base={base_name!r} path=[{prefix}] failing edge [{failing}]"


class JoinEngine:
    """Executes DRG join hops with cross-path build-state reuse.

    One engine instance spans one logical run (a discovery traversal, a
    top-k training pass, or a baseline's join loop): every hop executed
    through it shares the :class:`HopCache` and accumulates into the same
    :class:`EngineStats`.

    Parameters
    ----------
    drg:
        The dataset relation graph whose tables the engine joins.
    seed:
        Seed for the deterministic representative-row choice during the
        build phase; part of the cache key.
    enable_cache:
        Disable to rebuild the join index on every hop (exact A/B switch —
        results are bit-identical either way, only the work differs).
    hop_timeout_seconds:
        Per-hop wall-clock budget.  The check is cooperative: chunked
        hops carry the deadline into
        :func:`~repro.engine.chunked.chunked_left_join` and test it
        *between* partitions (aborting a runaway join after at most one
        chunk of overshoot), and every hop re-checks elapsed time after
        its build and probe phases.  A hop that overruns raises a typed
        :class:`~repro.errors.HopBudgetExceeded` instead of letting the
        run hang hop after hop.  None disables the guard.
    max_output_rows:
        Per-hop output-cardinality cap.  The engine only left-joins
        through deduplicated indexes, so a hop's output row count equals
        its probe-side row count — the cap is checked exactly, *before*
        any work is done, and raises
        :class:`~repro.errors.HopBudgetExceeded` instead of materialising
        an exploded join.  None disables the guard.
    fault_injector:
        Optional :class:`FaultInjector` consulted at the top of every hop
        — the deterministic harness fault-isolation tests run under.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When given (and enabled),
        every executed hop opens a ``join`` span nested under the
        caller's current span, and hop-cache lookups emit ``cache_hit`` /
        ``cache_miss`` events onto it.  Defaults to the shared no-op
        tracer.
    hop_latency_seconds:
        Simulated per-hop I/O latency (a ``time.sleep`` inside the join
        span), modelling a lake whose right-hand tables are fetched
        remotely.  This is a benchmarking/testing knob — it lets
        ``bench_parallel_discovery`` demonstrate backend speedups on any
        machine, because sleeping releases the GIL — and is 0.0 (off) in
        normal runs.  The sleep counts toward the hop's wall-clock budget.
    cache:
        Share an existing :class:`HopCache` instead of creating one —
        how per-worker engine views of a parallel run reuse the parent
        run's build state.  When given, ``enable_cache`` is ignored in
        favour of the shared cache's own setting.
    use_dict_keys:
        Build and probe join indexes on dictionary-encoded int32 codes
        (the default) or force the scalar reference kernels.  Outputs are
        bit-identical either way, so engines sharing a :class:`HopCache`
        may serve each other's indexes regardless of the setting; only
        speed differs.
    chunk_rows:
        When set, hops whose probe side is taller than this stream through
        :func:`~repro.engine.chunked.chunked_left_join` in partitions of
        ``chunk_rows`` rows.  None (the default) keeps every hop in-core.
    memory_budget_bytes:
        Resident-bytes budget for completed partitions of a chunked hop;
        exceeding it spills the oldest partitions to disk.  Only
        meaningful with ``chunk_rows`` set; None never spills.
    spill_dir:
        Parent directory for spill files (system temp when unset).
    run_deadline:
        Absolute ``time.monotonic`` timestamp of the run-level anytime
        budget (None = unbudgeted).  Hops check it cooperatively — at hop
        entry, after the index build, and between chunked partitions —
        and raise :class:`~repro.errors.RunBudgetExceeded` once it has
        passed, which the navigator treats as graceful exhaustion rather
        than a hop failure.  Monotonic timestamps are system-wide on
        Linux, so a deadline computed by the coordinator remains
        meaningful inside process-pool workers.
    """

    def __init__(
        self,
        drg: DatasetRelationGraph,
        seed: int = 0,
        enable_cache: bool = True,
        hop_timeout_seconds: float | None = None,
        max_output_rows: int | None = None,
        fault_injector: FaultInjector | None = None,
        tracer: Tracer | None = None,
        hop_latency_seconds: float = 0.0,
        cache: HopCache | None = None,
        use_dict_keys: bool = True,
        chunk_rows: int | None = None,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        run_deadline: float | None = None,
    ):
        self.drg = drg
        self.seed = seed
        self.cache = cache if cache is not None else HopCache(enabled=enable_cache)
        self.stats = EngineStats()
        self.hop_timeout_seconds = hop_timeout_seconds
        self.max_output_rows = max_output_rows
        self.fault_injector = fault_injector
        self.tracer = tracer or NULL_TRACER
        self.hop_latency_seconds = hop_latency_seconds
        self.use_dict_keys = use_dict_keys
        self.chunk_rows = chunk_rows
        self.memory_budget_bytes = memory_budget_bytes
        self.spill_dir = spill_dir
        self.run_deadline = run_deadline

    def worker_view(self, tracer: Tracer | None = None) -> "JoinEngine":
        """A per-work-unit handle on this engine for parallel execution.

        The view shares the DRG and the (single-flight) :class:`HopCache`
        — so cross-path build reuse spans all workers of a run — but
        counts into its own fresh :class:`EngineStats`, which the
        coordinator absorbs at the deterministic merge point.  The fault
        injector is deliberately dropped: parallel runs resolve injected
        faults canonically at work-unit *generation* time (seeded per
        hop), never inside a worker, so same-seed runs inject identical
        faults regardless of worker scheduling.
        """
        return JoinEngine(
            self.drg,
            seed=self.seed,
            hop_timeout_seconds=self.hop_timeout_seconds,
            max_output_rows=self.max_output_rows,
            fault_injector=None,
            tracer=tracer,
            hop_latency_seconds=self.hop_latency_seconds,
            cache=self.cache,
            use_dict_keys=self.use_dict_keys,
            chunk_rows=self.chunk_rows,
            memory_budget_bytes=self.memory_budget_bytes,
            spill_dir=self.spill_dir,
            run_deadline=self.run_deadline,
        )

    # -- plan phase ---------------------------------------------------------

    def hop_index(self, edge: OrientedEdge) -> JoinIndex:
        """The build-side index for ``edge``'s target table, cached.

        The target table is prefixed (``table.column`` qualification) and
        deduplicated on the qualified join key; both happen at most once
        per ``(target, key, seed)`` for the lifetime of the engine.
        """
        key_column = qualified(edge.target, edge.target_column)

        def builder() -> JoinIndex:
            right = self.drg.table(edge.target).prefixed(edge.target)
            return JoinIndex.build(
                right, key_column, seed=self.seed, use_dict_keys=self.use_dict_keys
            )

        hits_before = self.stats.cache_hits
        index = self.cache.get_or_build(
            edge.target, key_column, self.seed, builder, self.stats
        )
        if self.cache.enabled:
            self.tracer.event(
                "cache_hit" if self.stats.cache_hits > hits_before else "cache_miss",
                table=edge.target,
                key=key_column,
            )
        return index

    # -- execute phase ------------------------------------------------------

    def _check_run_deadline(self, context: str) -> None:
        """Raise :class:`RunBudgetExceeded` once the run deadline passed."""
        if self.run_deadline is not None and time.monotonic() >= self.run_deadline:
            raise RunBudgetExceeded(f"run budget expired; {context}")

    def apply_hop(
        self,
        current: Table,
        edge: OrientedEdge,
        base_name: str,
        path: JoinPath | None = None,
    ) -> tuple[Table, list[str]]:
        """Left-join one hop onto the running table.

        Returns ``(joined, contributed_columns)`` where the contributed
        columns are the qualified names of everything the right table added
        (join key included — its completeness is what quality pruning
        inspects).

        Raises :class:`JoinError` when the join is unfeasible: the source
        column is missing from the running join (can happen on spurious
        discovery edges) — Algorithm 1 prunes such paths.  Raises
        :class:`~repro.errors.HopBudgetExceeded` when the hop blows the
        engine's wall-clock or output-row budget, and the fault injector's
        typed errors when one is installed.  Every error message carries
        the base table, the hop sequence walked so far (when ``path`` is
        given) and the failing edge, so pruned-path and failure-report
        diagnostics are actionable.
        """
        self._check_run_deadline(_hop_context(base_name, path, edge))
        if self.fault_injector is not None:
            try:
                self.fault_injector.check(edge)
            except FaultError as exc:
                raise type(exc)(
                    f"{exc}; {_hop_context(base_name, path, edge)}"
                ) from exc
        left_col = source_column_name(edge, base_name)
        if left_col not in current:
            raise JoinError(
                f"join column {left_col!r} is not available in the running "
                f"join; {_hop_context(base_name, path, edge)}"
            )
        if self.max_output_rows is not None and current.n_rows > self.max_output_rows:
            # Left joins through a deduped index preserve probe-side
            # cardinality, so this pre-check bounds the output exactly.
            raise HopBudgetExceeded(
                f"hop output of {current.n_rows} rows exceeds "
                f"max_output_rows={self.max_output_rows}; "
                f"{_hop_context(base_name, path, edge)}"
            )
        started = time.perf_counter()
        hop_deadline = (
            time.monotonic() + self.hop_timeout_seconds
            if self.hop_timeout_seconds is not None
            else None
        )
        with self.tracer.span(
            "join", table=edge.target, key=edge.target_column, rows=current.n_rows
        ):
            if self.hop_latency_seconds > 0.0:
                # Simulated remote-lake fetch latency; sleeping releases
                # the GIL, so the threads backend overlaps these waits.
                time.sleep(self.hop_latency_seconds)
            try:
                index = self.hop_index(edge)
            except JoinError as exc:
                raise JoinError(
                    f"{exc}; {_hop_context(base_name, path, edge)}"
                ) from exc
            # Cooperative check between the build and probe phases: a run
            # whose deadline landed inside the index build aborts before
            # paying for the probe as well.
            self._check_run_deadline(_hop_context(base_name, path, edge))
            self.stats.hops_executed += 1
            self.stats.rows_probed += current.n_rows
            if self.chunk_rows is not None and current.n_rows > self.chunk_rows:
                joined = chunked_left_join(
                    index,
                    current,
                    left_col,
                    chunk_rows=self.chunk_rows,
                    memory_budget_bytes=self.memory_budget_bytes,
                    spill_dir=self.spill_dir,
                    tracer=self.tracer,
                    stats=self.stats,
                    hop_deadline=hop_deadline,
                    run_deadline=self.run_deadline,
                    deadline_context=_hop_context(base_name, path, edge),
                )
            else:
                joined = index.left_join(current, left_col)
        elapsed = time.perf_counter() - started
        if self.hop_timeout_seconds is not None and elapsed > self.hop_timeout_seconds:
            raise HopBudgetExceeded(
                f"hop took {elapsed:.3f}s, over the wall-clock budget of "
                f"{self.hop_timeout_seconds}s; "
                f"{_hop_context(base_name, path, edge)}"
            )
        contributed = [
            name for name in index.build_table.column_names if name in joined
        ]
        return joined, contributed

    def materialize_path(
        self, path: JoinPath, base_table: Table
    ) -> tuple[Table, list[list[str]]]:
        """Join the full path onto ``base_table``, hop by hop.

        Returns the augmented table and, per hop, the list of qualified
        columns that hop contributed.
        """
        current = base_table
        contributions: list[list[str]] = []
        walked = JoinPath(path.base)
        for edge in path.edges:
            with self.tracer.span("hop", table=edge.target, key=edge.target_column):
                current, contributed = self.apply_hop(
                    current, edge, path.base, path=walked
                )
            walked = walked.extend(edge)
            contributions.append(contributed)
        return current, contributions

    # -- observability ------------------------------------------------------

    def snapshot(self) -> ExecutionStats:
        """Freeze the engine's counters into an immutable stats record."""
        return self.stats.snapshot()
