"""Parallel join-path execution with a deterministic merge.

The discovery BFS and the top-k training pass are embarrassingly parallel
*between* work units — a hop's join depends only on its probe-side table
and its DRG edge, never on selection state — but AutoFeat's results must
stay bit-identical to the serial traversal.  This module supplies the
worker side of that contract; :class:`repro.core.AutoFeat` supplies the
merge side.  The split is:

* **workers execute pure joins** — a :class:`HopTask` (one frontier hop)
  or :class:`PathTask` (one top-k materialise + evaluate) runs on a
  :meth:`~repro.engine.JoinEngine.worker_view` of the run's engine and
  returns a :class:`HopOutcome` / :class:`PathOutcome` carrying the data,
  a private stats delta, its span tree and any *managed* error;
* **the coordinator merges in canonical order** — work units carry their
  enumeration ``index``, and :class:`PathExecutor` returns outcomes in
  exactly that order regardless of completion order.  All order-sensitive
  state — streaming feature selection, ranking, frontier growth, the
  failure policy and its shared error budget — advances only at the merge
  point, on the coordinating thread.

Determinism of injected faults is preserved by resolving the
:class:`~repro.engine.FaultInjector` *at work-unit generation time* in
canonical order (:func:`plan_hop_faults` / :func:`plan_path_faults`
replay the exact ``FaultManager.execute`` attempt loop against the real
injector), so a unit arrives at a worker either with a pre-resolved
failure (never dispatched) or with the attempt index at which the
injector passed.  A unit that then fails with a *real* managed error
continues the serial attempt loop at the merge point via
:func:`settle_managed_failure`.

Backends: ``serial`` runs units inline (the uniformity baseline),
``threads`` shares the engine's single-flight :class:`HopCache` across a
:class:`~concurrent.futures.ThreadPoolExecutor` (joins release the GIL
only while sleeping on simulated latency, so CPU-bound speedups are
modest — see DESIGN.md §11), and ``processes`` gives each worker process
its own engine + cache via a :class:`~concurrent.futures.ProcessPoolExecutor`
initializer (results identical; cache hit counters reflect the per-worker
caches).

Unexpected worker exceptions (anything outside ``JoinError`` /
``FaultError``) are never swallowed: they re-raise on the coordinating
thread from ``future.result()`` during the in-order collection.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..dataframe import Table
from ..errors import ConfigError, FaultError, JoinError, RunBudgetExceeded
from ..graph import JoinPath, OrientedEdge
from ..obs.tracer import Tracer
from .engine import JoinEngine, _hop_context

__all__ = [
    "PARALLEL_BACKENDS",
    "FaultPlan",
    "HopTask",
    "PathTask",
    "HopOutcome",
    "PathOutcome",
    "PathExecutor",
    "resolve_max_workers",
    "plan_hop_faults",
    "plan_path_faults",
    "settle_managed_failure",
    "simulate_injector_check",
]

#: The three execution backends a run can use.
#:
#: * ``serial`` — work units run inline on the coordinating thread, in
#:   canonical order (the baseline every parity test compares against);
#: * ``threads`` — a shared-memory pool; all workers share the run's
#:   single-flight :class:`HopCache`, so engine counters match serial
#:   exactly;
#: * ``processes`` — per-worker engines and caches behind pickled task
#:   payloads; results are identical, cache counters are per-worker.
PARALLEL_BACKENDS = ("serial", "threads", "processes")


def resolve_max_workers(backend: str, max_workers: int | None = None) -> int:
    """The worker count a backend actually uses (``None`` = auto).

    ``serial`` is always 1.  The automatic choice oversubscribes threads
    (they spend their time blocked on simulated I/O or the GIL) and
    matches CPU count for processes.
    """
    if backend == "serial":
        return 1
    if max_workers is not None:
        return max(1, max_workers)
    cpus = os.cpu_count() or 1
    return min(32, cpus * 4) if backend == "threads" else cpus


# -- fault planning ---------------------------------------------------------


@dataclass
class FaultPlan:
    """Pre-resolved injector schedule for one work unit.

    Either the injector exhausted every attempt (``exception`` is set; the
    unit is never dispatched and the coordinator records/raises it at the
    unit's canonical merge position) or it passed at attempt
    ``passed_at`` (the unit is dispatched; ``passed_at`` seeds the retry
    accounting if the dispatched work then fails for real).
    """

    exception: Exception | None = None
    retries: int = 0
    passed_at: int = 0


def simulate_injector_check(injector, edge) -> Exception | None:
    """One ``FaultInjector.check`` call, returning the raise instead.

    Uses the real injector (and therefore advances its per-edge attempt
    counters exactly as a serial hop would), which is what keeps transient
    faults (``recover_after``) deterministic across backends.
    """
    if injector is None:
        return None
    try:
        injector.check(edge)
    except FaultError as exc:
        return exc
    return None


def plan_hop_faults(
    injector, edge, *, attempts: int, base_name: str, path: JoinPath
) -> FaultPlan | None:
    """Pre-resolve the injected-fault sequence for one discovery hop.

    Replays the attempt loop of ``FaultManager.execute`` against the real
    injector, in the hop's canonical position, wrapping each injected
    error with the same :func:`~repro.engine.engine._hop_context` suffix
    the engine would — so recorded messages are byte-identical to serial.
    Returns None when the edge is not faulty (the common case).
    """
    if injector is None or injector.fault_kind(edge) is None:
        return None
    last: Exception | None = None
    for attempt in range(attempts):
        exc = simulate_injector_check(injector, edge)
        if exc is None:
            return FaultPlan(passed_at=attempt)
        last = type(exc)(f"{exc}; {_hop_context(base_name, path, edge)}")
    return FaultPlan(exception=last, retries=attempts - 1)


def walk_injected_faults(injector, path: JoinPath, base_name: str) -> Exception | None:
    """Simulate one materialise attempt's injector checks along ``path``.

    Serial ``materialize_path`` consults the injector per edge, in order,
    aborting the attempt at the first raise; the wrapped message carries
    the prefix walked so far.  Returns the wrapped error of the first
    faulting edge, or None when the whole walk passes.
    """
    walked = JoinPath(path.base)
    for edge in path.edges:
        exc = simulate_injector_check(injector, edge)
        if exc is not None:
            return type(exc)(f"{exc}; {_hop_context(base_name, walked, edge)}")
        walked = walked.extend(edge)
    return None


def plan_path_faults(
    injector, path: JoinPath, *, attempts: int, base_name: str
) -> FaultPlan | None:
    """Pre-resolve the injected-fault sequence for one top-k training path."""
    if injector is None or not injector.faulty_edges(path.edges):
        return None
    last: Exception | None = None
    for attempt in range(attempts):
        exc = walk_injected_faults(injector, path, base_name)
        if exc is None:
            return FaultPlan(passed_at=attempt)
        last = exc
    return FaultPlan(exception=last, retries=attempts - 1)


def settle_managed_failure(
    *,
    attempts: int,
    passed_at: int,
    first_exc: Exception,
    simulate,
    rerun,
    kinds: tuple[type[Exception], ...],
):
    """Continue the serial attempt loop after a dispatched unit failed.

    A worker executed the unit's attempt ``passed_at`` and it raised a
    *managed* error (``first_exc``).  Serial ``FaultManager.execute``
    would keep attempting: each remaining attempt first consults the
    injector (``simulate`` returns a wrapped error or None) and, on pass,
    re-executes the real work (``rerun``).  Returns ``(result, None)``
    when a re-attempt succeeds, or ``(None, (last_exc, retries))`` for
    the coordinator to record.  Exceptions outside ``kinds`` raised by
    ``rerun`` propagate, exactly as in serial (a discovery ``JoinError``
    is pruning input, not a failure).
    """
    last, retries = first_exc, passed_at
    for attempt in range(passed_at + 1, attempts):
        exc = simulate()
        if exc is not None:
            last, retries = exc, attempt
            continue
        try:
            return rerun(), None
        except kinds as exc2:
            last, retries = exc2, attempt
    return None, (last, retries)


# -- work units -------------------------------------------------------------


@dataclass
class HopTask:
    """One discovery frontier hop: join ``edge`` onto ``table``."""

    index: int
    path: JoinPath
    edge: OrientedEdge
    table: Table
    base_name: str
    features: tuple[str, ...] = ()
    plan: FaultPlan | None = None


@dataclass
class PathTask:
    """One top-k training unit: materialise ``path`` fully and evaluate."""

    index: int
    path: JoinPath
    selected_features: tuple[str, ...]
    base_name: str
    label_column: str
    model_name: str
    seed: int = 0
    plan: FaultPlan | None = None


@dataclass
class HopOutcome:
    """What one hop unit produced, in its canonical slot.

    ``error`` carries the managed (``JoinError`` / ``FaultError``)
    exception when the hop failed; ``dispatched`` is False for units whose
    fault plan pre-resolved to failure (the worker never saw them, so
    ``stats`` is None and no join work was charged — matching serial,
    where an injected fault aborts the hop before any join executes).
    """

    index: int
    joined: Table | None = None
    contributed: list[str] | None = None
    error: Exception | None = None
    dispatched: bool = True
    stats: object | None = None
    spans: list[dict] = field(default_factory=list)
    busy_seconds: float = 0.0


@dataclass
class PathOutcome:
    """What one training unit produced, in its canonical slot."""

    index: int
    table: Table | None = None
    accuracy: float = 0.0
    n_features_used: int = 0
    error: Exception | None = None
    dispatched: bool = True
    stats: object | None = None
    spans: list[dict] = field(default_factory=list)
    busy_seconds: float = 0.0


# -- worker bodies (shared by the serial, threads and processes backends) ---


def _execute_hop(view: JoinEngine, tracer: Tracer, task: HopTask) -> HopOutcome:
    started = time.perf_counter()
    joined = contributed = error = None
    try:
        with tracer.span("hop", table=task.edge.target, key=task.edge.target_column):
            joined, contributed = view.apply_hop(
                task.table, task.edge, task.base_name, path=task.path
            )
    except (JoinError, FaultError, RunBudgetExceeded) as exc:
        # RunBudgetExceeded is carried back as the unit's outcome (not
        # re-raised through the pool): the coordinator decides at the
        # canonical merge point whether the run's budget has expired —
        # a worker-side trip is just an early abort of that unit's work.
        error = exc
    return HopOutcome(
        index=task.index,
        joined=joined,
        contributed=contributed,
        error=error,
        stats=view.snapshot(),
        spans=[root.as_dict() for root in tracer.roots],
        busy_seconds=time.perf_counter() - started,
    )


def _execute_path(view: JoinEngine, tracer: Tracer, drg, task: PathTask) -> PathOutcome:
    # Lazy import: repro.ml is a heavier dependency the hop path never needs.
    from ..ml import evaluate_accuracy

    started = time.perf_counter()
    base = drg.table(task.base_name)
    base_features = [n for n in base.column_names if n != task.label_column]
    table = None
    accuracy = 0.0
    n_features = 0
    error = None
    try:
        with tracer.span("path", path=task.path.describe()):
            materialised, __ = view.materialize_path(task.path, base)
            features = base_features + [
                f for f in task.selected_features if f in materialised
            ]
            with tracer.span("evaluate", model=task.model_name, features=len(features)):
                accuracy = evaluate_accuracy(
                    materialised,
                    task.label_column,
                    model_name=task.model_name,
                    feature_names=features,
                    seed=task.seed,
                )
            table = materialised
            n_features = len(features)
    except (JoinError, FaultError, RunBudgetExceeded) as exc:
        error = exc
    return PathOutcome(
        index=task.index,
        table=table,
        accuracy=accuracy,
        n_features_used=n_features,
        error=error,
        stats=view.snapshot(),
        spans=[root.as_dict() for root in tracer.roots],
        busy_seconds=time.perf_counter() - started,
    )


def _run_hop(engine: JoinEngine, task: HopTask, trace_spans: bool) -> HopOutcome:
    """Serial/threads hop body: fresh tracer + worker view per unit."""
    tracer = Tracer(enabled=trace_spans)
    return _execute_hop(engine.worker_view(tracer), tracer, task)


def _run_path(engine: JoinEngine, task: PathTask, trace_spans: bool) -> PathOutcome:
    """Serial/threads path body: fresh tracer + worker view per unit."""
    tracer = Tracer(enabled=trace_spans)
    return _execute_path(engine.worker_view(tracer), tracer, engine.drg, task)


# -- processes backend ------------------------------------------------------

#: Per-worker-process engine installed by :func:`_process_init`.  Module
#: globals are how ``ProcessPoolExecutor`` initializers hand state to
#: worker functions; the engine (and its cache) lives for the life of the
#: worker process, so repeated hops on one worker still reuse builds.
_WORKER_ENGINE: JoinEngine | None = None
_WORKER_TRACE = False


def _process_init(drg, engine_kwargs: dict, trace_spans: bool) -> None:
    global _WORKER_ENGINE, _WORKER_TRACE
    _WORKER_ENGINE = JoinEngine(drg, **engine_kwargs)
    _WORKER_TRACE = trace_spans


def _process_hop(task: HopTask) -> HopOutcome:
    tracer = Tracer(enabled=_WORKER_TRACE)
    return _execute_hop(_WORKER_ENGINE.worker_view(tracer), tracer, task)


def _process_path(task: PathTask) -> PathOutcome:
    tracer = Tracer(enabled=_WORKER_TRACE)
    return _execute_path(
        _WORKER_ENGINE.worker_view(tracer), tracer, _WORKER_ENGINE.drg, task
    )


# -- the executor -----------------------------------------------------------


class PathExecutor:
    """Runs work units on a configurable backend, merging in task order.

    One executor spans one logical run, exactly like
    :class:`~repro.engine.JoinEngine`: construct it with the run's engine,
    feed it waves of :class:`HopTask` / :class:`PathTask` lists, and close
    it when the run ends.  Outcomes always come back in the order the
    tasks were submitted — the canonical enumeration order — no matter
    which worker finished first, which is the whole determinism contract.

    The executor also keeps the run's utilisation accounting:
    ``busy_seconds`` (summed worker-side unit durations) over
    ``parallel_wall_seconds`` (summed wave walls) is the
    :attr:`effective_speedup` the run manifest reports.
    """

    def __init__(
        self,
        engine: JoinEngine,
        backend: str = "serial",
        max_workers: int | None = None,
        trace_spans: bool = False,
    ):
        if backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r}; "
                f"expected one of {list(PARALLEL_BACKENDS)}"
            )
        self.engine = engine
        self.backend = backend
        self.trace_spans = trace_spans
        self.workers_used = resolve_max_workers(backend, max_workers)
        self.busy_seconds = 0.0
        self.parallel_wall_seconds = 0.0
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None

    @property
    def rebase_spans(self) -> bool:
        """True when grafted worker spans need clock rebasing.

        ``perf_counter_ns`` stamps are only comparable within one process,
        so span trees returned by process workers must be shifted into the
        parent's clock before grafting.
        """
        return self.backend == "processes"

    @property
    def effective_speedup(self) -> float:
        """Worker-busy seconds per wall second of parallel execution."""
        if self.parallel_wall_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / self.parallel_wall_seconds

    def _ensure_pool(self):
        if self._pool is None:
            if self.backend == "threads":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers_used, thread_name_prefix="pathexec"
                )
            else:
                engine = self.engine
                engine_kwargs = {
                    "seed": engine.seed,
                    "enable_cache": engine.cache.enabled,
                    "hop_timeout_seconds": engine.hop_timeout_seconds,
                    "max_output_rows": engine.max_output_rows,
                    "hop_latency_seconds": engine.hop_latency_seconds,
                    "use_dict_keys": engine.use_dict_keys,
                    "chunk_rows": engine.chunk_rows,
                    "memory_budget_bytes": engine.memory_budget_bytes,
                    "spill_dir": engine.spill_dir,
                    # monotonic deadlines are system-wide on Linux, so
                    # worker processes can honour the coordinator's one.
                    "run_deadline": engine.run_deadline,
                }
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers_used,
                    initializer=_process_init,
                    initargs=(engine.drg, engine_kwargs, self.trace_spans),
                )
        return self._pool

    def run_hops(self, tasks: list[HopTask]) -> list[HopOutcome]:
        """Execute one wave of hop units; outcomes in task order."""
        return self._run_wave(
            tasks,
            _run_hop,
            _process_hop,
            lambda task: HopOutcome(
                index=task.index, error=task.plan.exception, dispatched=False
            ),
        )

    def run_paths(self, tasks: list[PathTask]) -> list[PathOutcome]:
        """Execute one wave of training units; outcomes in task order."""
        return self._run_wave(
            tasks,
            _run_path,
            _process_path,
            lambda task: PathOutcome(
                index=task.index, error=task.plan.exception, dispatched=False
            ),
        )

    def _run_wave(self, tasks, inline_fn, process_fn, synthesize):
        started = time.perf_counter()
        outcomes: list = [None] * len(tasks)
        pending: list[tuple[int, object]] = []
        for slot, task in enumerate(tasks):
            if task.plan is not None and task.plan.exception is not None:
                # Pre-resolved failure: the injector exhausted every
                # attempt at plan time, so dispatching would charge join
                # work serial never performs.  The coordinator raises or
                # records it at this slot's canonical merge position.
                outcomes[slot] = synthesize(task)
            else:
                pending.append((slot, task))
        if self.backend == "serial":
            for slot, task in pending:
                outcomes[slot] = inline_fn(self.engine, task, self.trace_spans)
        else:
            pool = self._ensure_pool()
            if self.backend == "threads":
                futures = [
                    (slot, pool.submit(inline_fn, self.engine, task, self.trace_spans))
                    for slot, task in pending
                ]
            else:
                futures = [
                    (slot, pool.submit(process_fn, task)) for slot, task in pending
                ]
            # In-order collection: future.result() re-raises unexpected
            # worker exceptions on this thread — nothing is swallowed.
            for slot, future in futures:
                outcomes[slot] = future.result()
        self.parallel_wall_seconds += time.perf_counter() - started
        self.busy_seconds += sum(
            outcome.busy_seconds for outcome in outcomes if outcome.dispatched
        )
        return outcomes

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PathExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
