"""Fault isolation for the discover/train pipeline.

AutoFeat's value proposition is surviving a messy data lake, so one poison
table must not abort a whole discovery or training run.  This module holds
the three pieces that make per-path failures survivable and observable:

* :class:`FaultManager` — applies the run's failure policy (``fail_fast``,
  ``skip_and_record`` or ``retry``) to every guarded hop, enforces the
  per-run error budget, and accumulates :class:`FailureRecord` entries;
* :class:`FailureReport` — the frozen per-run failure accounting carried
  on ``DiscoveryResult`` / ``AugmentationResult`` / ``BaselineResult`` and
  rendered by ``summary()``;
* :class:`FaultInjector` — a deterministic, seeded fault-injection harness
  (per-edge probability of join failure or timeout) so graceful
  degradation is testable end to end.

The typed errors the layer manages live in :mod:`repro.errors`:
:class:`~repro.errors.FaultError` and its subclasses
:class:`~repro.errors.HopBudgetExceeded`,
:class:`~repro.errors.InjectedFaultError` and
:class:`~repro.errors.ErrorBudgetExceeded`.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import (
    ConfigError,
    ErrorBudgetExceeded,
    FaultError,
    HopBudgetExceeded,
    InjectedFaultError,
    JoinError,
)

__all__ = [
    "FAILURE_POLICIES",
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_MAX_RETRIES",
    "FailureRecord",
    "FailureReport",
    "FaultManager",
    "FaultInjector",
]

#: The three failure policies a run can execute under.
#:
#: * ``fail_fast`` — every managed error propagates immediately (the
#:   pre-fault-isolation behaviour);
#: * ``skip_and_record`` — the failing hop/path is skipped, the failure is
#:   recorded, and the run continues until the error budget is exhausted;
#: * ``retry`` — like ``skip_and_record``, but each failing operation is
#:   retried up to ``max_retries`` times before being recorded.
FAILURE_POLICIES = ("fail_fast", "skip_and_record", "retry")

#: Recorded failures tolerated per run before the run itself aborts.
DEFAULT_ERROR_BUDGET = 64

#: Retries per failing operation under the ``retry`` policy.
DEFAULT_MAX_RETRIES = 2

T = TypeVar("T")


@dataclass(frozen=True)
class FailureRecord:
    """One recorded failure: what failed, where, and how hard we tried."""

    #: Pipeline stage the failure occurred in (``discovery``, ``training``,
    #: or a baseline's name).
    stage: str
    #: Exception class name (``JoinError``, ``HopBudgetExceeded``, ...).
    error_kind: str
    message: str
    base_table: str = ""
    #: Description of the join path being walked, when known.
    path: str = ""
    #: ``source.column -> target.column`` of the failing edge, when known.
    edge: str = ""
    #: Retries attempted before the failure was recorded.
    retries: int = 0


@dataclass(frozen=True)
class FailureReport:
    """Immutable per-run failure accounting.

    Empty reports (``ok`` is True) are the norm; a non-empty report means
    the run degraded gracefully — paths were skipped, not computed — and
    downstream consumers (benchmarks especially) must decide whether a
    partial result is acceptable.
    """

    policy: str = "skip_and_record"
    error_budget: int = DEFAULT_ERROR_BUDGET
    records: tuple[FailureRecord, ...] = ()

    @property
    def n_failures(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> bool:
        """True when nothing was skipped: the run's results are complete."""
        return not self.records

    def by_kind(self) -> dict[str, int]:
        """Failure counts grouped by exception class name."""
        return dict(Counter(record.error_kind for record in self.records))

    def merged(self, other: "FailureReport") -> "FailureReport":
        """Record-wise concatenation — e.g. discovery plus training phase."""
        return FailureReport(
            policy=self.policy,
            error_budget=self.error_budget,
            records=self.records + other.records,
        )

    @classmethod
    def merge(cls, reports) -> "FailureReport":
        """Concatenate any iterable of reports (policy/budget from the first).

        Parallel runs record failures only at the deterministic merge
        points, so per-phase reports concatenated here are already in
        canonical order; this helper exists for multi-phase and
        multi-partition aggregation.
        """
        reports = list(reports)
        if not reports:
            return cls()
        merged = reports[0]
        for report in reports[1:]:
            merged = merged.merged(report)
        return merged

    def publish(self, registry, prefix: str = "faults"):
        """Publish the failure accounting into a
        :class:`repro.obs.MetricsRegistry` (total, budget and per-kind
        counters under ``faults.*``)."""
        registry.counter(f"{prefix}.recorded").inc(self.n_failures)
        registry.gauge(f"{prefix}.error_budget").set(self.error_budget)
        for kind, count in sorted(self.by_kind().items()):
            registry.counter(f"{prefix}.kind.{kind}").inc(count)
        return registry

    def describe(self) -> str:
        """One-line human-readable rendering for summaries."""
        if not self.records:
            return f"none (policy={self.policy})"
        kinds = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(self.by_kind().items())
        )
        return (
            f"{self.n_failures} recorded ({kinds}) under policy={self.policy}, "
            f"budget {self.n_failures}/{self.error_budget}"
        )


def _edge_signature(edge) -> str:
    """Stable ``source.column->target.column`` rendering of a DRG edge."""
    return f"{edge.source}.{edge.source_column}->{edge.target}.{edge.target_column}"


class FaultManager:
    """Applies one run's failure policy to every guarded operation.

    One manager spans one logical run, exactly like :class:`JoinEngine`:
    the discovery traversal, the top-k training pass and each baseline's
    join loop construct their own and thread every fallible hop through
    :meth:`execute`.

    Parameters
    ----------
    policy:
        One of :data:`FAILURE_POLICIES`.
    error_budget:
        Maximum failures recorded before the run aborts with
        :class:`~repro.errors.ErrorBudgetExceeded` (``fail_fast`` never
        records, so the budget only binds the other two policies).
    max_retries:
        Attempts added per failing operation under ``retry``.
    stage:
        Default stage label stamped onto records.
    """

    def __init__(
        self,
        policy: str = "skip_and_record",
        error_budget: int = DEFAULT_ERROR_BUDGET,
        max_retries: int = DEFAULT_MAX_RETRIES,
        stage: str = "",
    ):
        if policy not in FAILURE_POLICIES:
            raise ConfigError(
                f"unknown failure policy {policy!r}; "
                f"expected one of {list(FAILURE_POLICIES)}"
            )
        if error_budget < 0:
            raise ConfigError(f"error_budget must be >= 0, got {error_budget}")
        if max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
        self.policy = policy
        self.error_budget = error_budget
        self.max_retries = max_retries
        self.stage = stage
        self._records: list[FailureRecord] = []

    @property
    def n_failures(self) -> int:
        return len(self._records)

    def execute(
        self,
        fn: Callable[[], T],
        *,
        stage: str | None = None,
        base: str = "",
        path=None,
        edge=None,
        kinds: tuple[type[Exception], ...] = (JoinError, FaultError),
    ) -> T | None:
        """Run ``fn`` under the policy; None means "recorded and skipped".

        ``kinds`` is the exception family the policy manages here — the
        discovery BFS passes ``(FaultError,)`` only, because an ordinary
        :class:`~repro.errors.JoinError` is pruning input for Algorithm 1,
        not a failure.  Everything outside ``kinds`` (and
        :class:`~repro.errors.ErrorBudgetExceeded`, always) propagates.
        """
        if self.policy == "fail_fast":
            return fn()
        attempts = 1 + (self.max_retries if self.policy == "retry" else 0)
        last: Exception | None = None
        retries = 0
        for attempt in range(attempts):
            try:
                return fn()
            except ErrorBudgetExceeded:
                raise
            except kinds as exc:
                last = exc
                retries = attempt
        self.record(last, stage=stage, base=base, path=path, edge=edge, retries=retries)
        return None

    def record(
        self,
        exc: Exception,
        *,
        stage: str | None = None,
        base: str = "",
        path=None,
        edge=None,
        retries: int = 0,
    ) -> None:
        """Append a failure record, aborting once the budget is exhausted."""
        record = FailureRecord(
            stage=self.stage if stage is None else stage,
            error_kind=type(exc).__name__,
            message=str(exc),
            base_table=base,
            path=path.describe() if hasattr(path, "describe") else (path or ""),
            edge=_edge_signature(edge) if edge is not None else "",
            retries=retries,
        )
        self._records.append(record)
        if len(self._records) > self.error_budget:
            raise ErrorBudgetExceeded(
                f"error budget exhausted: {len(self._records)} failures exceed "
                f"the budget of {self.error_budget} "
                f"(last: {record.error_kind} on edge [{record.edge}])"
            )

    def report(self) -> FailureReport:
        """Freeze the failures recorded so far into an immutable report."""
        return FailureReport(
            policy=self.policy,
            error_budget=self.error_budget,
            records=tuple(self._records),
        )


class FaultInjector:
    """Deterministic, seeded fault injection for join hops.

    Whether an edge is faulty — and whether its fault manifests as a join
    failure or a timeout — is a pure function of ``(seed, edge)``: a
    SHA-256 draw over the edge signature is compared against the two
    probabilities.  The same seed therefore injects the same faults on
    every run, which is what makes degradation testable (same seed → same
    :class:`FailureReport`).

    Parameters
    ----------
    failure_probability:
        Per-edge probability of an injected
        :class:`~repro.errors.InjectedFaultError` (a failing join).
    timeout_probability:
        Per-edge probability of an injected
        :class:`~repro.errors.HopBudgetExceeded` (a hop that would hang).
    seed:
        Determinism seed; part of every draw.
    recover_after:
        When positive, a faulty edge is *transient*: it fails its first
        ``recover_after`` attempts and succeeds afterwards — the scenario
        the ``retry`` policy exists for.  Zero means faults are permanent.
    """

    def __init__(
        self,
        failure_probability: float = 0.0,
        timeout_probability: float = 0.0,
        seed: int = 0,
        recover_after: int = 0,
    ):
        for name, p in (
            ("failure_probability", failure_probability),
            ("timeout_probability", timeout_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {p}")
        if failure_probability + timeout_probability > 1.0:
            raise ConfigError(
                "failure_probability + timeout_probability must not exceed 1"
            )
        if recover_after < 0:
            raise ConfigError(f"recover_after must be >= 0, got {recover_after}")
        self.failure_probability = failure_probability
        self.timeout_probability = timeout_probability
        self.seed = seed
        self.recover_after = recover_after
        self._attempts: dict[str, int] = {}

    def _draw(self, signature: str) -> float:
        digest = hashlib.sha256(f"{self.seed}:{signature}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fault_kind(self, edge) -> str | None:
        """``"failure"``, ``"timeout"`` or None for the given edge."""
        u = self._draw(_edge_signature(edge))
        if u < self.failure_probability:
            return "failure"
        if u < self.failure_probability + self.timeout_probability:
            return "timeout"
        return None

    def faulty_edges(self, edges) -> list:
        """The subset of ``edges`` this injector will fault (any kind)."""
        return [edge for edge in edges if self.fault_kind(edge) is not None]

    def reset(self) -> None:
        """Forget attempt counts, so transient faults fail afresh."""
        self._attempts.clear()

    def check(self, edge) -> None:
        """Raise the edge's injected fault, if any.

        Called by :class:`JoinEngine` at the top of every hop.  Transient
        faults (``recover_after > 0``) count their attempts per edge and
        stop raising once the attempt count passes the threshold.
        """
        kind = self.fault_kind(edge)
        if kind is None:
            return
        signature = _edge_signature(edge)
        attempt = self._attempts.get(signature, 0)
        self._attempts[signature] = attempt + 1
        if self.recover_after and attempt >= self.recover_after:
            return
        if kind == "failure":
            raise InjectedFaultError(
                f"injected join failure on edge [{signature}]"
            )
        raise HopBudgetExceeded(f"injected hop timeout on edge [{signature}]")
