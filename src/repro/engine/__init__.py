"""Shared join-execution engine (plan/execute split with hop caching).

The engine layer sits between the columnar substrate
(:mod:`repro.dataframe`) and the algorithm layer (:mod:`repro.core`,
:mod:`repro.baselines`): it turns DRG edges into build/probe join kernels,
memoizes build-side state across join paths with a :class:`HopCache`,
guards every hop with per-hop budgets and a run-level failure policy
(:mod:`repro.engine.faults`), and exposes execution counters so callers
can observe exactly how much join work a run performed.
"""

from .chunked import SpillManager, chunked_left_join, estimate_table_bytes
from .engine import JoinEngine
from .faults import (
    DEFAULT_ERROR_BUDGET,
    DEFAULT_MAX_RETRIES,
    FAILURE_POLICIES,
    FailureRecord,
    FailureReport,
    FaultInjector,
    FaultManager,
)
from .hop_cache import HopCache
from .naming import qualified, source_column_name
from .parallel import (
    PARALLEL_BACKENDS,
    FaultPlan,
    HopOutcome,
    HopTask,
    PathExecutor,
    PathOutcome,
    PathTask,
    plan_hop_faults,
    plan_path_faults,
    resolve_max_workers,
    settle_managed_failure,
)
from .stats import EngineStats, ExecutionStats

__all__ = [
    "JoinEngine",
    "HopCache",
    "EngineStats",
    "ExecutionStats",
    "SpillManager",
    "chunked_left_join",
    "estimate_table_bytes",
    "qualified",
    "source_column_name",
    "FAILURE_POLICIES",
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_MAX_RETRIES",
    "FailureRecord",
    "FailureReport",
    "FaultManager",
    "FaultInjector",
    "PARALLEL_BACKENDS",
    "PathExecutor",
    "FaultPlan",
    "HopTask",
    "PathTask",
    "HopOutcome",
    "PathOutcome",
    "resolve_max_workers",
    "plan_hop_faults",
    "plan_path_faults",
    "settle_managed_failure",
]
