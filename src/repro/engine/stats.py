"""Execution statistics for the join engine.

Two flavours of the same record: :class:`EngineStats` is the mutable
counter block a :class:`repro.engine.JoinEngine` increments while it runs,
and :class:`ExecutionStats` is the frozen snapshot threaded into result
objects (``DiscoveryResult.engine_stats`` and friends) so callers can
observe exactly how much join work a run performed — and how much the
:class:`repro.engine.HopCache` saved.

The snapshot publishes into the observability layer's
:class:`repro.obs.MetricsRegistry` (``engine.*`` metric names);
:meth:`ExecutionStats.as_dict` round-trips through a registry and
:meth:`ExecutionStats.from_dict` re-loads persisted benchmark JSON
losslessly.

Out-of-core runs add the chunked-execution block: how many row partitions
streamed through :func:`repro.engine.chunked.chunked_left_join`, how many
were spilled to disk and how many bytes crossed the spill boundary, plus
``peak_resident_bytes`` — the high-water estimate of partition bytes held
in memory at once.  All spill fields are plain summing counters except the
peak, which merges by ``max`` (two workers that each peaked at 1 MiB did
not jointly peak at 2 MiB) and publishes as a gauge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

__all__ = ["EngineStats", "ExecutionStats"]

#: Counter fields of the stats record, in canonical reporting order.
#: Every field here sums under merge and publishes as a counter.
_COUNTER_FIELDS = (
    "hops_executed",
    "index_builds",
    "cache_hits",
    "cache_misses",
    "rows_probed",
    "chunks_executed",
    "partitions_spilled",
    "spill_bytes_written",
    "spill_bytes_read",
)

#: High-water-mark fields: merge by max, publish as gauges.
_PEAK_FIELDS = ("peak_resident_bytes",)


@dataclass(frozen=True)
class ExecutionStats:
    """Immutable snapshot of one engine's join-execution counters.

    Attributes
    ----------
    hops_executed:
        Join hops the engine actually performed (probe phases).
    index_builds:
        Build phases run: dedup + hash of a right-hand table.  With the hop
        cache enabled this is strictly less than ``hops_executed`` whenever
        any ``(table, key_column)`` pair recurs across paths.
    cache_hits / cache_misses:
        Hop-cache lookups that found / did not find a prebuilt index.  Both
        stay zero when the cache is disabled (there are no lookups).
    rows_probed:
        Total probe-side rows streamed through :meth:`JoinIndex.probe`.
    chunks_executed:
        Row partitions probed by the chunked executor.  Zero on in-core
        runs (``chunk_rows`` unset or larger than every hop's probe side).
    partitions_spilled:
        Completed partitions written to the disk-backed spill manager
        because resident partition bytes exceeded ``memory_budget_bytes``.
    spill_bytes_written / spill_bytes_read:
        Bytes serialized to / restored from spill files.
    peak_resident_bytes:
        High-water estimate of partition bytes held in memory at once by
        the chunked executor (0 when no hop ran chunked).
    """

    hops_executed: int = 0
    index_builds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_probed: int = 0
    chunks_executed: int = 0
    partitions_spilled: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    peak_resident_bytes: int = 0

    @property
    def cache_lookups(self) -> int:
        """Total hop-cache lookups (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from the cache (0.0 if none)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def merged(self, other: "ExecutionStats") -> "ExecutionStats":
        """Counter-wise sum — e.g. discovery-phase + training-phase stats.

        Summing counters add; the resident high-water mark takes the max of
        the two runs (peaks do not stack across sequential or parallel
        phases that never held their partitions simultaneously... the max
        is the honest bound either way).
        """
        fields = {
            name: getattr(self, name) + getattr(other, name)
            for name in _COUNTER_FIELDS
        }
        fields.update(
            {
                name: max(getattr(self, name), getattr(other, name))
                for name in _PEAK_FIELDS
            }
        )
        return ExecutionStats(**fields)

    @classmethod
    def merge(cls, stats) -> "ExecutionStats":
        """Counter-wise sum over any iterable of snapshots.

        The parallel executor's per-work-unit deltas merge through here;
        summation (and max, for peaks) is order-independent, so the merged
        totals are identical no matter which worker finished first.
        """
        merged = cls()
        for snapshot in stats:
            merged = merged.merged(snapshot)
        return merged

    def publish(self, registry: MetricsRegistry, prefix: str = "engine") -> MetricsRegistry:
        """Publish the counters (and the hit-rate/peak gauges) into ``registry``."""
        for name in _COUNTER_FIELDS:
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.gauge(f"{prefix}.cache_hit_rate").set(round(self.cache_hit_rate, 4))
        for name in _PEAK_FIELDS:
            registry.gauge(f"{prefix}.{name}").set(getattr(self, name))
        return registry

    def as_dict(self) -> dict:
        """Flat dict for reports and the engine-cache benchmark JSON.

        Round-trips through a :class:`repro.obs.MetricsRegistry`, so the
        flat view and the registry view can never drift apart.
        """
        registry = self.publish(MetricsRegistry())
        out = {
            name: registry.value(f"engine.{name}")
            for name in _COUNTER_FIELDS + _PEAK_FIELDS
        }
        out["cache_hit_rate"] = registry.value("engine.cache_hit_rate")
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionStats":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        return cls(
            **{
                name: int(data.get(name, 0))
                for name in _COUNTER_FIELDS + _PEAK_FIELDS
            }
        )

    def describe(self) -> str:
        """One-line human-readable rendering for summaries."""
        line = (
            f"{self.hops_executed} hops, {self.index_builds} index builds, "
            f"{self.cache_hits}/{self.cache_lookups} cache hits, "
            f"{self.rows_probed} rows probed"
        )
        if self.chunks_executed:
            line += (
                f", {self.chunks_executed} chunks "
                f"({self.partitions_spilled} spilled, "
                f"{self.spill_bytes_written} bytes to disk)"
            )
        return line


@dataclass
class EngineStats:
    """Mutable counters incremented by a running engine.

    Field meanings match :class:`ExecutionStats`; call :meth:`snapshot` to
    freeze the current values into a result-friendly record.
    """

    hops_executed: int = 0
    index_builds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_probed: int = 0
    chunks_executed: int = 0
    partitions_spilled: int = 0
    spill_bytes_written: int = 0
    spill_bytes_read: int = 0
    peak_resident_bytes: int = 0

    def snapshot(self) -> ExecutionStats:
        """Freeze the current counter values."""
        return ExecutionStats(
            **{
                name: getattr(self, name)
                for name in _COUNTER_FIELDS + _PEAK_FIELDS
            }
        )

    def absorb(self, delta: "ExecutionStats | EngineStats") -> None:
        """Add another stats record's counters into this one in place.

        The merge point of parallel runs: each work unit counts into its
        own fresh :class:`EngineStats` (no cross-worker races) and the
        coordinating thread absorbs the deltas in canonical unit order.
        Peaks absorb by max, like :meth:`ExecutionStats.merged`.
        """
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(delta, name))
        for name in _PEAK_FIELDS:
            setattr(self, name, max(getattr(self, name), getattr(delta, name)))

    def record_peak(self, resident_bytes: int) -> None:
        """Raise the resident high-water mark if ``resident_bytes`` tops it."""
        if resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = resident_bytes
