"""Execution statistics for the join engine.

Two flavours of the same record: :class:`EngineStats` is the mutable
counter block a :class:`repro.engine.JoinEngine` increments while it runs,
and :class:`ExecutionStats` is the frozen snapshot threaded into result
objects (``DiscoveryResult.engine_stats`` and friends) so callers can
observe exactly how much join work a run performed — and how much the
:class:`repro.engine.HopCache` saved.

The snapshot publishes into the observability layer's
:class:`repro.obs.MetricsRegistry` (``engine.*`` metric names);
:meth:`ExecutionStats.as_dict` round-trips through a registry and
:meth:`ExecutionStats.from_dict` re-loads persisted benchmark JSON
losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

__all__ = ["EngineStats", "ExecutionStats"]

#: Counter fields of the stats record, in canonical reporting order.
_COUNTER_FIELDS = (
    "hops_executed",
    "index_builds",
    "cache_hits",
    "cache_misses",
    "rows_probed",
)


@dataclass(frozen=True)
class ExecutionStats:
    """Immutable snapshot of one engine's join-execution counters.

    Attributes
    ----------
    hops_executed:
        Join hops the engine actually performed (probe phases).
    index_builds:
        Build phases run: dedup + hash of a right-hand table.  With the hop
        cache enabled this is strictly less than ``hops_executed`` whenever
        any ``(table, key_column)`` pair recurs across paths.
    cache_hits / cache_misses:
        Hop-cache lookups that found / did not find a prebuilt index.  Both
        stay zero when the cache is disabled (there are no lookups).
    rows_probed:
        Total probe-side rows streamed through :meth:`JoinIndex.probe`.
    """

    hops_executed: int = 0
    index_builds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_probed: int = 0

    @property
    def cache_lookups(self) -> int:
        """Total hop-cache lookups (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from the cache (0.0 if none)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def merged(self, other: "ExecutionStats") -> "ExecutionStats":
        """Counter-wise sum — e.g. discovery-phase + training-phase stats."""
        return ExecutionStats(
            hops_executed=self.hops_executed + other.hops_executed,
            index_builds=self.index_builds + other.index_builds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            rows_probed=self.rows_probed + other.rows_probed,
        )

    @classmethod
    def merge(cls, stats) -> "ExecutionStats":
        """Counter-wise sum over any iterable of snapshots.

        The parallel executor's per-work-unit deltas merge through here;
        summation is order-independent, so the merged totals are identical
        no matter which worker finished first.
        """
        merged = cls()
        for snapshot in stats:
            merged = merged.merged(snapshot)
        return merged

    def publish(self, registry: MetricsRegistry, prefix: str = "engine") -> MetricsRegistry:
        """Publish the counters (and the hit-rate gauge) into ``registry``."""
        for name in _COUNTER_FIELDS:
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.gauge(f"{prefix}.cache_hit_rate").set(round(self.cache_hit_rate, 4))
        return registry

    def as_dict(self) -> dict:
        """Flat dict for reports and the engine-cache benchmark JSON.

        Round-trips through a :class:`repro.obs.MetricsRegistry`, so the
        flat view and the registry view can never drift apart.
        """
        registry = self.publish(MetricsRegistry())
        return {
            "hops_executed": registry.value("engine.hops_executed"),
            "index_builds": registry.value("engine.index_builds"),
            "cache_hits": registry.value("engine.cache_hits"),
            "cache_misses": registry.value("engine.cache_misses"),
            "cache_hit_rate": registry.value("engine.cache_hit_rate"),
            "rows_probed": registry.value("engine.rows_probed"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionStats":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        return cls(**{name: int(data.get(name, 0)) for name in _COUNTER_FIELDS})

    def describe(self) -> str:
        """One-line human-readable rendering for summaries."""
        return (
            f"{self.hops_executed} hops, {self.index_builds} index builds, "
            f"{self.cache_hits}/{self.cache_lookups} cache hits, "
            f"{self.rows_probed} rows probed"
        )


@dataclass
class EngineStats:
    """Mutable counters incremented by a running engine.

    Field meanings match :class:`ExecutionStats`; call :meth:`snapshot` to
    freeze the current values into a result-friendly record.
    """

    hops_executed: int = 0
    index_builds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_probed: int = 0

    def snapshot(self) -> ExecutionStats:
        """Freeze the current counter values."""
        return ExecutionStats(
            hops_executed=self.hops_executed,
            index_builds=self.index_builds,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            rows_probed=self.rows_probed,
        )

    def absorb(self, delta: "ExecutionStats | EngineStats") -> None:
        """Add another stats record's counters into this one in place.

        The merge point of parallel runs: each work unit counts into its
        own fresh :class:`EngineStats` (no cross-worker races) and the
        coordinating thread absorbs the deltas in canonical unit order.
        """
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(delta, name))
