"""Cross-path caching of join-hop build state.

The discovery BFS (Algorithm 1) revisits the same right-hand table on many
different join paths: every acyclic path that reaches dataset ``T`` through
key column ``k`` needs the *identical* deduped table and hash index,
because deduplication is deterministic in ``(table, key_column, seed)``.
The :class:`HopCache` memoizes that build state so it is computed once per
discovery run instead of once per frontier hop — the reuse lever
FeatNavigator and Hippasus identify as dominant for data-lake-scale
augmentation.

Correctness note: a cached :class:`~repro.dataframe.JoinIndex` is
immutable, and the representative-row choice inside
:func:`~repro.dataframe.dedup_by_key` depends only on the cache key, so
executing through the cache is bit-identical to rebuilding per hop
(verified by the engine parity tests and the ``bench_engine_cache``
micro-benchmark).
"""

from __future__ import annotations

from typing import Callable

from ..dataframe import JoinIndex
from .stats import EngineStats

__all__ = ["HopCache"]


class HopCache:
    """Memoizes :class:`JoinIndex` objects keyed by ``(table, key, seed)``.

    Parameters
    ----------
    enabled:
        When False every lookup falls through to the builder (and no
        entries are stored) — the exact-A/B switch behind
        ``AutoFeatConfig.enable_hop_cache``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._indexes: dict[tuple[str, str, int], JoinIndex] = {}

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, key: tuple[str, str, int]) -> bool:
        return key in self._indexes

    def clear(self) -> None:
        """Drop every cached index (e.g. between unrelated discovery runs)."""
        self._indexes.clear()

    def get_or_build(
        self,
        table_name: str,
        key_column: str,
        seed: int,
        builder: Callable[[], JoinIndex],
        stats: EngineStats | None = None,
    ) -> JoinIndex:
        """Return the cached index for the key, building it on first use.

        ``builder`` is only invoked on a miss (or always, when the cache is
        disabled), so callers can defer *all* build-side work — including
        column prefixing — behind it.  ``stats`` counters are updated in
        place: ``index_builds`` on every build, ``cache_hits`` /
        ``cache_misses`` only when the cache is enabled (a disabled cache
        performs no lookups).
        """
        if not self.enabled:
            if stats is not None:
                stats.index_builds += 1
            return builder()
        key = (table_name, key_column, seed)
        cached = self._indexes.get(key)
        if cached is not None:
            if stats is not None:
                stats.cache_hits += 1
            return cached
        if stats is not None:
            stats.cache_misses += 1
            stats.index_builds += 1
        index = builder()
        self._indexes[key] = index
        return index
