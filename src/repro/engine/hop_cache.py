"""Cross-path caching of join-hop build state.

The discovery BFS (Algorithm 1) revisits the same right-hand table on many
different join paths: every acyclic path that reaches dataset ``T`` through
key column ``k`` needs the *identical* deduped table and hash index,
because deduplication is deterministic in ``(table, key_column, seed)``.
The :class:`HopCache` memoizes that build state so it is computed once per
discovery run instead of once per frontier hop — the reuse lever
FeatNavigator and Hippasus identify as dominant for data-lake-scale
augmentation.

Correctness note: a cached :class:`~repro.dataframe.JoinIndex` is
immutable, and the representative-row choice inside
:func:`~repro.dataframe.dedup_by_key` depends only on the cache key, so
executing through the cache is bit-identical to rebuilding per hop
(verified by the engine parity tests and the ``bench_engine_cache``
micro-benchmark).

Thread safety: the ``threads`` parallel backend shares one cache between
every worker of a run, so :meth:`HopCache.get_or_build` is single-flight —
concurrent probes of a cold key elect exactly one builder while the rest
wait on its result.  The counters stay *exact* under contention: each key
costs one miss and one build no matter how many workers race it, and every
other lookup is a hit — the same totals a serial traversal produces.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..dataframe import JoinIndex
from .stats import EngineStats

__all__ = ["HopCache"]


class HopCache:
    """Memoizes :class:`JoinIndex` objects keyed by ``(table, key, seed)``.

    Parameters
    ----------
    enabled:
        When False every lookup falls through to the builder (and no
        entries are stored) — the exact-A/B switch behind
        ``AutoFeatConfig.enable_hop_cache``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._indexes: dict[tuple[str, str, int], JoinIndex] = {}
        self._lock = threading.Lock()
        #: Per-key build latches: present while exactly one caller builds.
        self._building: dict[tuple[str, str, int], threading.Event] = {}
        #: Per-table invalidation epochs: a builder that started before an
        #: :meth:`invalidate` of its table publishes nothing (its caller
        #: still gets the index it built — that request began against the
        #: pre-mutation snapshot — but the stale index never enters the
        #: cache).
        self._epochs: dict[str, int] = {}
        #: Cumulative cache-lifetime counters (exact under concurrency:
        #: every update happens under ``_lock``).  Distinct from the
        #: per-run :class:`EngineStats` callers pass in — these span the
        #: cache's whole life, which is what a long-lived service's
        #: warm-hit-rate gauge reports.
        self._counters = {
            "hits": 0,
            "misses": 0,
            "builds": 0,
            "invalidations": 0,
            "entries_invalidated": 0,
            # Dictionary-encoding traffic: a hit on an index that carries
            # its KeyDictionary means the warm request skipped re-encoding
            # entirely (encode_hits); every build of an encoded index paid
            # the interning once (encode_misses).  Scalar-path indexes
            # (NaN-key fallback or use_dict_keys=False) count in neither.
            "encode_hits": 0,
            "encode_misses": 0,
        }

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, key: tuple[str, str, int]) -> bool:
        return key in self._indexes

    def counters(self) -> dict[str, int]:
        """Snapshot of the cache-lifetime counters."""
        with self._lock:
            return dict(self._counters)

    @property
    def hit_rate(self) -> float:
        """Lifetime hits over lookups (0.0 before any lookup)."""
        with self._lock:
            lookups = self._counters["hits"] + self._counters["misses"]
            return self._counters["hits"] / lookups if lookups else 0.0

    def clear(self) -> None:
        """Drop every cached index (e.g. between unrelated discovery runs)."""
        with self._lock:
            for table_name in {key[0] for key in self._indexes}:
                self._epochs[table_name] = self._epochs.get(table_name, 0) + 1
            self._indexes.clear()

    def invalidate(self, table_name: str) -> int:
        """Surgically drop every entry built from ``table_name``.

        The per-table mutation hook of the always-on service: an
        ``update_table``/``drop_table`` only stales the indexes built
        *from that table's rows* — entries for every other table (any
        key column, any seed) stay warm.  Returns the number of entries
        dropped.

        Safe under concurrency: the table's epoch is bumped under the
        lock, so a builder elected *before* the invalidation completes
        its build but never publishes — waiters retry and rebuild
        against whatever the caller's builder closure now reads.
        """
        with self._lock:
            doomed = [key for key in self._indexes if key[0] == table_name]
            for key in doomed:
                del self._indexes[key]
            self._epochs[table_name] = self._epochs.get(table_name, 0) + 1
            self._counters["invalidations"] += 1
            self._counters["entries_invalidated"] += len(doomed)
        return len(doomed)

    def get_or_build(
        self,
        table_name: str,
        key_column: str,
        seed: int,
        builder: Callable[[], JoinIndex],
        stats: EngineStats | None = None,
    ) -> JoinIndex:
        """Return the cached index for the key, building it on first use.

        ``builder`` is only invoked on a miss (or always, when the cache is
        disabled), so callers can defer *all* build-side work — including
        column prefixing — behind it.  ``stats`` counters are updated in
        place: ``index_builds`` on every build, ``cache_hits`` /
        ``cache_misses`` only when the cache is enabled (a disabled cache
        performs no lookups).

        Single-flight under threads: concurrent calls for the same cold key
        run ``builder`` exactly once; the losers block until the winner
        publishes the index and then count an ordinary hit.  If the winner's
        builder raises, the waiters retry the lookup themselves (one becomes
        the new builder and surfaces the same deterministic error), which
        matches the serial counter sequence for failing builds exactly.
        """
        if not self.enabled:
            if stats is not None:
                stats.index_builds += 1
            with self._lock:
                self._counters["builds"] += 1
            index = builder()
            if getattr(index, "dictionary", None) is not None:
                with self._lock:
                    self._counters["encode_misses"] += 1
            return index
        key = (table_name, key_column, seed)
        while True:
            with self._lock:
                cached = self._indexes.get(key)
                if cached is not None:
                    if stats is not None:
                        stats.cache_hits += 1
                    self._counters["hits"] += 1
                    if getattr(cached, "dictionary", None) is not None:
                        # The cached index carries its KeyDictionary, so
                        # this request skips the encode phase outright.
                        self._counters["encode_hits"] += 1
                    return cached
                event = self._building.get(key)
                if event is None:
                    event = threading.Event()
                    self._building[key] = event
                    # Counters move under the lock, and only for the
                    # elected builder — one miss + one build per cold key.
                    if stats is not None:
                        stats.cache_misses += 1
                        stats.index_builds += 1
                    self._counters["misses"] += 1
                    self._counters["builds"] += 1
                    epoch = self._epochs.get(table_name, 0)
                    break
            event.wait()
        try:
            index = builder()
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            event.set()
            raise
        with self._lock:
            # Publish only if the table was not invalidated mid-build;
            # the caller still gets the index it built either way.
            if self._epochs.get(table_name, 0) == epoch:
                self._indexes[key] = index
            self._building.pop(key, None)
            if getattr(index, "dictionary", None) is not None:
                self._counters["encode_misses"] += 1
        event.set()
        return index
