"""Qualified feature naming shared by the engine and the core algorithm.

Columns contributed by a lake table are qualified as ``table.column`` so
provenance survives multi-hop joins and name collisions cannot occur.
These helpers are the single source of truth for that convention; the
``repro.core.materialize`` module re-exports them for backward
compatibility.
"""

from __future__ import annotations

from ..graph import OrientedEdge

__all__ = ["qualified", "source_column_name"]


def qualified(table_name: str, column_name: str) -> str:
    """The qualified feature name a hop contributes."""
    return f"{table_name}.{column_name}"


def source_column_name(edge: OrientedEdge, base_name: str) -> str:
    """Resolve the join column of ``edge.source`` inside the running join.

    Base-table columns keep their bare names; columns that arrived through
    an earlier hop are qualified with their origin table.
    """
    if edge.source == base_name:
        return edge.source_column
    return qualified(edge.source, edge.source_column)
