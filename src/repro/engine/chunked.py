"""Out-of-core hop execution: chunked probes with disk-backed spill.

A left join through a deduplicated :class:`~repro.dataframe.JoinIndex` is
row-independent — row *i* of the output depends only on row *i* of the
probe side — so a hop can stream over fixed-size row partitions and the
concatenation of the per-chunk results is bit-identical to the whole-table
join.  :func:`chunked_left_join` exploits exactly that: probe
``chunk_rows`` rows at a time, emit partial results, and once the resident
estimate of completed partitions exceeds ``memory_budget_bytes`` hand the
oldest ones to a :class:`SpillManager`, which pickles them to disk and
restores them (in order) for the final concatenation.

This keeps a hop's working set bounded by roughly
``chunk_rows × row_width + memory_budget_bytes`` regardless of the probe
table's size — the bigger-than-RAM unlock the ROADMAP names — while
changing nothing about join semantics: Algorithm-1/2 traversal, the
HopCache, fault policies, and parallel merge all see the same tables they
would have seen in-core.

Determinism contract: chunk boundaries are a pure function of
``(n_rows, chunk_rows)``, spilling is driven only by the deterministic
byte estimate of each partition (:func:`estimate_table_bytes`), and the
spill round-trip is value-preserving (numpy arrays pickle exactly).  The
hypothesis suite in ``tests/engine/test_encoded_parity.py`` holds chunked
output bit-identical to the one-shot scalar join across chunk sizes.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time

import numpy as np

from ..dataframe import Column, JoinIndex, Table
from ..errors import HopBudgetExceeded, RunBudgetExceeded
from ..obs.tracer import NULL_TRACER, Tracer
from .stats import EngineStats

__all__ = ["SpillManager", "chunked_left_join", "estimate_table_bytes"]

#: Flat per-element resident estimate for object (string) arrays: pointer
#: plus a typical small-string PyObject.  Deliberately O(1) per column —
#: the estimate drives spill *timing*, never correctness.
_OBJECT_ELEMENT_BYTES = 48


def estimate_table_bytes(table: Table) -> int:
    """Deterministic resident-size estimate of a table in bytes.

    Numeric columns count their backing buffers exactly; object-dtype
    (string) columns add a flat per-element estimate so the figure stays
    O(columns) to compute.
    """
    total = 0
    for name in table.column_names:
        column = table.column(name)
        total += int(column.values.nbytes) + int(column.mask.nbytes)
        if column.values.dtype.kind == "O":
            total += _OBJECT_ELEMENT_BYTES * len(column.values)
    return total


class SpillManager:
    """Disk-backed store for completed row partitions of a chunked hop.

    Partitions are pickled to numbered files under a private temporary
    directory (created lazily inside ``spill_dir``, or the system temp
    location when unset) and restored on demand.  The manager owns the
    directory: :meth:`close` — or use as a context manager — removes every
    spill file.  Lifetime counters (``partitions_spilled``,
    ``bytes_written``, ``bytes_read``) mirror into an optional
    :class:`~repro.engine.stats.EngineStats` so spill traffic shows up in
    run results and the metrics registry.
    """

    def __init__(
        self,
        spill_dir: str | None = None,
        stats: EngineStats | None = None,
        tracer: Tracer | None = None,
    ):
        self._spill_dir = spill_dir
        self._dir: str | None = None
        self._next_id = 0
        self._stats = stats
        self._tracer = tracer or NULL_TRACER
        self.partitions_spilled = 0
        self.bytes_written = 0
        self.bytes_read = 0

    def _ensure_dir(self) -> str:
        if self._dir is None:
            if self._spill_dir is not None:
                os.makedirs(self._spill_dir, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="autofeat-spill-", dir=self._spill_dir)
        return self._dir

    @staticmethod
    def _payload(table: Table) -> dict:
        """A plain-data snapshot of ``table`` (immune to class layout)."""
        return {
            "name": table.name,
            "columns": [
                (name, col.values, col.mask, col.dtype)
                for name, col in ((n, table.column(n)) for n in table.column_names)
            ],
        }

    def spill(self, table: Table) -> int:
        """Write ``table`` to disk and return a handle for :meth:`restore`."""
        handle = self._next_id
        self._next_id += 1
        path = os.path.join(self._ensure_dir(), f"part-{handle:06d}.pkl")
        with open(path, "wb") as fh:
            pickle.dump(self._payload(table), fh, protocol=pickle.HIGHEST_PROTOCOL)
        written = os.path.getsize(path)
        self.partitions_spilled += 1
        self.bytes_written += written
        if self._stats is not None:
            self._stats.partitions_spilled += 1
            self._stats.spill_bytes_written += written
        self._tracer.event(
            "spill", partition=handle, bytes=int(written), rows=table.n_rows
        )
        return handle

    def restore(self, handle: int) -> Table:
        """Load a spilled partition back into memory."""
        path = os.path.join(self._ensure_dir(), f"part-{handle:06d}.pkl")
        read = os.path.getsize(path)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        self.bytes_read += read
        if self._stats is not None:
            self._stats.spill_bytes_read += read
        self._tracer.event("restore", partition=handle, bytes=int(read))
        return Table(
            {
                name: Column(values, dtype=dtype, mask=mask)
                for name, values, mask, dtype in payload["columns"]
            },
            name=payload["name"],
        )

    def close(self) -> None:
        """Delete every spill file and the private directory."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def chunked_left_join(
    index: JoinIndex,
    left: Table,
    left_on: str,
    *,
    chunk_rows: int,
    memory_budget_bytes: int | None = None,
    spill_dir: str | None = None,
    tracer: Tracer | None = None,
    stats: EngineStats | None = None,
    hop_deadline: float | None = None,
    run_deadline: float | None = None,
    deadline_context: str = "",
) -> Table:
    """Probe ``index`` with ``left`` in fixed-size row partitions.

    Bit-identical to ``index.left_join(left, left_on)`` — per-partition
    left joins concatenate to the whole-table result because the join is
    row-independent — but the working set is bounded: once the resident
    estimate of completed partitions exceeds ``memory_budget_bytes``, the
    oldest partitions spill to disk through a :class:`SpillManager` and
    are streamed back only for the final concatenation.

    Parameters
    ----------
    index:
        The (deduplicated) build side of the hop.
    left, left_on:
        Probe table and its join column.
    chunk_rows:
        Partition height.  Tables no taller than this take the one-shot
        path unchanged.
    memory_budget_bytes:
        Spill threshold over the summed :func:`estimate_table_bytes` of
        resident completed partitions.  ``None`` never spills (chunked
        execution still bounds transient probe buffers to one chunk).
    spill_dir:
        Parent directory for spill files (system temp when unset).
    tracer:
        Per-chunk ``chunk`` spans plus ``spill``/``restore`` events are
        emitted here — this is what makes chunk waves visible in chrome
        traces.
    stats:
        Engine counters: ``chunks_executed``, spill counters, and the
        ``peak_resident_bytes`` high-water mark.
    hop_deadline / run_deadline:
        Cooperative deadlines as absolute ``time.monotonic`` timestamps,
        checked *between* partitions so a runaway hop aborts after at
        most one chunk's worth of overshoot instead of paying the full
        join cost before the post-hoc timeout fires.  ``hop_deadline``
        (the per-hop ``hop_timeout_seconds`` budget) raises
        :class:`~repro.errors.HopBudgetExceeded`; ``run_deadline`` (the
        run-level anytime budget) raises
        :class:`~repro.errors.RunBudgetExceeded`.  The run deadline is
        checked first — anytime expiry is graceful termination, not a
        recorded hop failure.
    deadline_context:
        Human-readable hop description appended to deadline error
        messages.
    """
    tracer = tracer or NULL_TRACER
    n = left.n_rows
    if n <= chunk_rows:
        return index.left_join(left, left_on)

    def check_deadlines(chunks_done: int) -> None:
        now = time.monotonic()
        suffix = f"; {deadline_context}" if deadline_context else ""
        if run_deadline is not None and now >= run_deadline:
            raise RunBudgetExceeded(
                f"run budget expired after {chunks_done} of "
                f"{-(-n // chunk_rows)} partitions of a chunked hop{suffix}"
            )
        if hop_deadline is not None and now >= hop_deadline:
            raise HopBudgetExceeded(
                f"chunked hop overran its wall-clock budget after "
                f"{chunks_done} of {-(-n // chunk_rows)} partitions{suffix}"
            )

    spiller = SpillManager(spill_dir, stats=stats, tracer=tracer)
    # Each entry is ["mem", table, nbytes] or ["disk", handle, None],
    # always in partition order.
    parts: list[list] = []
    resident_bytes = 0
    oldest_resident = 0
    try:
        for chunk_no, start in enumerate(range(0, n, chunk_rows)):
            check_deadlines(chunk_no)
            stop = min(start + chunk_rows, n)
            with tracer.span("chunk", start=start, rows=stop - start):
                chunk = left.take(np.arange(start, stop))
                part = index.left_join(chunk, left_on)
            size = estimate_table_bytes(part)
            parts.append(["mem", part, size])
            resident_bytes += size
            if stats is not None:
                stats.chunks_executed += 1
                stats.record_peak(resident_bytes)
            if memory_budget_bytes is None:
                continue
            while resident_bytes > memory_budget_bytes and oldest_resident < len(parts):
                slot = parts[oldest_resident]
                handle = spiller.spill(slot[1])
                resident_bytes -= slot[2]
                parts[oldest_resident] = ["disk", handle, None]
                oldest_resident += 1

        with tracer.span("concat", partitions=len(parts)):
            tables = [
                slot[1] if slot[0] == "mem" else spiller.restore(slot[1])
                for slot in parts
            ]
            columns = {
                name: Column.concat([t.column(name) for t in tables])
                for name in tables[0].column_names
            }
            return Table(columns, name=left.name)
    finally:
        spiller.close()
