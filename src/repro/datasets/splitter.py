"""Splitting a flat dataset into a snowflake of joinable tables.

This reproduces the paper's *benchmark setting* construction: "a technique
to divide a dataset into multiple small tables with known KFK constraints
... which resembles a snowflake schemata" (Section VII-A).  The base table
keeps the label and the *weakest* features; stronger features are pushed
into satellite tables, deepest-first, so that finding them requires the
transitive joins AutoFeat is built for.

Key mechanics:

* every parent-child edge gets its own key domain — a seeded permutation
  of the row index shared by both sides — so joins are exactly 1:1 where
  rows exist on both sides;
* satellites are row-subsampled by a per-table ``match_rate``, producing
  genuine nulls after a left join (the raw material of τ-pruning);
* in the benchmark naming scheme both sides of an edge carry the *same*
  key column name (``<child>_key``) — the convention MAB depends on; the
  lake builder renames the parent side to ``<child>_ref`` to break it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dataframe import Column, Table
from ..errors import DatasetError
from ..graph import DatasetRelationGraph, KFKConstraint
from .generators import FlatDataset

__all__ = ["SplitPlan", "LakeBundle", "split_into_lake", "key_column_name", "ref_column_name"]

LABEL_COLUMN = "label"
BASE_ID = "base_id"


def key_column_name(child_table: str) -> str:
    """Key column name used on the child (and, in benchmark, parent) side."""
    return f"{child_table}_key"


def ref_column_name(child_table: str) -> str:
    """Parent-side key name in the data-lake (renamed) scheme."""
    return f"{child_table}_ref"


@dataclass(frozen=True)
class SplitPlan:
    """How a flat dataset is carved into a snowflake."""

    name: str
    n_satellites: int
    n_base_features: int
    max_depth: int = 2
    deep_signal: bool = True
    match_rate_range: tuple[float, float] = (0.8, 1.0)
    n_shared_categories: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_satellites < 1:
            raise DatasetError("need at least one satellite table")
        if self.n_base_features < 1:
            raise DatasetError("base table needs at least one feature")
        if self.max_depth < 1:
            raise DatasetError("max_depth must be >= 1")
        lo, hi = self.match_rate_range
        if not 0.0 < lo <= hi <= 1.0:
            raise DatasetError(f"invalid match_rate_range {self.match_rate_range}")


@dataclass(frozen=True)
class LakeBundle:
    """A split dataset: tables, constraints and ground truth."""

    name: str
    base_name: str
    label_column: str
    tables: tuple[Table, ...]
    constraints: tuple[KFKConstraint, ...]
    depths: dict[str, int]
    feature_placement: dict[str, str] = field(default_factory=dict)

    @property
    def base_table(self) -> Table:
        for table in self.tables:
            if table.name == self.base_name:
                return table
        raise DatasetError(f"bundle has no base table {self.base_name!r}")

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    @property
    def total_features(self) -> int:
        """Feature columns across all tables (keys and label excluded)."""
        keys = {c.column_a for c in self.constraints} | {
            c.column_b for c in self.constraints
        }
        total = 0
        for table in self.tables:
            for name in table.column_names:
                if name in keys or name in (self.label_column, BASE_ID):
                    continue
                total += 1
        return total

    def benchmark_drg(self) -> DatasetRelationGraph:
        """DRG of the benchmark setting: KFK edges only, weight 1."""
        return DatasetRelationGraph.from_constraints(
            list(self.tables), list(self.constraints)
        )


def _signal_spine(topology: dict[str, tuple[str, int]]) -> set[str]:
    """The deepest root-to-leaf chain of satellites (ties: first by name)."""
    if not topology:
        return set()
    deepest = min(
        topology, key=lambda s: (-topology[s][1], s)
    )
    spine = {deepest}
    parent = topology[deepest][0]
    while parent != "__base__":
        spine.add(parent)
        parent = topology[parent][0]
    return spine


def _topology(plan: SplitPlan, rng: np.random.Generator) -> dict[str, tuple[str, int]]:
    """Assign each satellite a parent and depth (snowflake tree)."""
    names = [f"{plan.name}_t{i:02d}" for i in range(plan.n_satellites)]
    parents: dict[str, tuple[str, int]] = {}
    n_level1 = max(1, int(np.ceil(plan.n_satellites * 0.5)))
    attachable: list[tuple[str, int]] = []
    for i, child in enumerate(names):
        if i < n_level1 or not attachable:
            parents[child] = ("__base__", 1)
        else:
            pick_pool = [a for a in attachable if a[1] < plan.max_depth]
            if not pick_pool:
                parents[child] = ("__base__", 1)
            else:
                parent, depth = pick_pool[int(rng.integers(len(pick_pool)))]
                parents[child] = (parent, depth + 1)
        attachable.append((child, parents[child][1]))
    return parents


def split_into_lake(flat: FlatDataset, plan: SplitPlan) -> LakeBundle:
    """Carve ``flat`` into a base table plus snowflake satellites."""
    if plan.n_base_features >= flat.n_features:
        raise DatasetError(
            f"base would swallow all {flat.n_features} features; "
            "reduce n_base_features"
        )
    rng = np.random.default_rng(plan.seed)
    n = flat.n_rows
    base_name = f"{plan.name}_base"

    weakest_first = list(flat.relevance_order)
    base_features = weakest_first[: plan.n_base_features]
    remaining = weakest_first[plan.n_base_features :]

    topology = _topology(plan, rng)
    satellites = list(topology.keys())
    spine = _signal_spine(topology)
    # Feature placement order: non-spine tables first (shallow to deep),
    # then the spine tables shallow to deep.  Features are dealt in
    # weakest-first order, so the strongest signal accumulates *along* the
    # deepest chain — one transitive join path can collect it all, which is
    # the regime the paper's evaluation probes.
    by_depth = sorted(
        satellites, key=lambda s: (s in spine, topology[s][1], s)
    )
    if not plan.deep_signal:
        rng.shuffle(by_depth)

    # Deal strongest-first to the deepest tables (spine first within a
    # depth), so the signal lives behind transitive joins and shallow
    # (star-schema-reachable) tables hold the weak remainder.
    dealing_order = sorted(
        satellites, key=lambda s: (-topology[s][1], s not in spine, s)
    )
    if not plan.deep_signal:
        dealing_order = list(by_depth)
    assignment: dict[str, list[str]] = {s: [] for s in satellites}
    quota = int(np.ceil(len(remaining) / len(satellites)))
    strongest_first = remaining[::-1]
    cursor = 0
    for satellite in dealing_order:
        take = strongest_first[cursor : cursor + quota]
        assignment[satellite] = list(take)
        cursor += len(take)
    if cursor < len(strongest_first):
        assignment[dealing_order[-1]].extend(strongest_first[cursor:])

    # Per-edge key domains: a seeded permutation shared by parent and child.
    # Domains are disjoint across satellites (distinct offsets) so that a
    # value-overlap matcher sees true key pairs at overlap 1.0 and unrelated
    # key pairs at overlap 0 — without this, every key column would match
    # every other and the lake graph would be pure noise.
    key_values: dict[str, np.ndarray] = {
        s: rng.permutation(n) + 1000 + (i + 1) * 10 * n
        for i, s in enumerate(satellites)
    }

    columns_of: dict[str, dict[str, np.ndarray | Column]] = {
        base_name: {BASE_ID: np.arange(n)}
    }
    for satellite in satellites:
        columns_of[satellite] = {key_column_name(satellite): key_values[satellite]}

    for satellite in satellites:
        parent, __ = topology[satellite]
        parent_name = base_name if parent == "__base__" else parent
        columns_of[parent_name][key_column_name(satellite)] = key_values[satellite]

    for feature in base_features:
        columns_of[base_name][feature] = flat.features[feature]
    placement = {feature: base_name for feature in base_features}
    for satellite, features in assignment.items():
        for feature in features:
            columns_of[satellite][feature] = flat.features[feature]
            placement[feature] = satellite

    # Shared low-cardinality category columns: same name, *partially*
    # overlapping value domains, independent values — spurious-edge bait for
    # lake discovery.  Partial overlap keeps the spurious score real but
    # below a true key match, so similarity pruning faces a genuine contest
    # rather than a foregone conclusion.
    shared_targets = by_depth[: plan.n_shared_categories]
    for idx, target in enumerate(shared_targets):
        offset = 4 * ((idx % 3) + 1)
        columns_of[target]["region"] = rng.integers(
            offset, offset + 8, size=n
        ).astype(np.float64)
        if idx % 2 == 1:
            columns_of[target]["status"] = rng.integers(0, 5, size=n).astype(
                np.float64
            )
    if shared_targets:
        columns_of[base_name]["region"] = rng.integers(0, 8, size=n).astype(
            np.float64
        )

    columns_of[base_name][LABEL_COLUMN] = flat.label

    tables: list[Table] = [Table(columns_of[base_name], name=base_name)]
    lo, hi = plan.match_rate_range
    # The signal spine keeps perfect key coverage (match rate 1.0) when the
    # plan allows it, so a tau = 1 run can still reach the strong features —
    # the paper observes tau = 1 hitting peak accuracy on some datasets
    # while yielding nothing on lakes without perfect matches (school).
    perfect = set(spine) if hi >= 1.0 else set()
    for satellite in satellites:
        table = Table(columns_of[satellite], name=satellite)
        match_rate = 1.0 if satellite in perfect else float(rng.uniform(lo, hi))
        if match_rate < 1.0:
            keep = rng.random(n) < match_rate
            if not keep.any():
                keep[0] = True
            table = table.filter(keep)
        tables.append(table)

    constraints = []
    for satellite in satellites:
        parent, __ = topology[satellite]
        parent_name = base_name if parent == "__base__" else parent
        constraints.append(
            KFKConstraint(
                table_a=parent_name,
                column_a=key_column_name(satellite),
                table_b=satellite,
                column_b=key_column_name(satellite),
            )
        )

    depths = {base_name: 0}
    depths.update({s: topology[s][1] for s in satellites})
    return LakeBundle(
        name=plan.name,
        base_name=base_name,
        label_column=LABEL_COLUMN,
        tables=tuple(tables),
        constraints=tuple(constraints),
        depths=depths,
        feature_placement=placement,
    )
