"""The eight evaluation datasets of Table II, as scaled synthetic lakes.

Each spec records the *paper* shape (rows, joinable tables, total
features, best published accuracy) and the *scaled* shape we generate —
row counts are capped so the full benchmark matrix runs on one machine,
while the number of joinable tables and the feature spread follow Table II
exactly (feature totals are scaled down for the two very wide datasets,
school and bioresponse).

Every generated lake plants its strongest features in the deepest
satellites, mirroring the empirical finding that "the most relevant
features reside via transitive joins" (Section VII-C1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DatasetError
from .generators import FlatDataset, make_classification
from .splitter import LakeBundle, SplitPlan, split_into_lake

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "build_dataset", "build_all"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row plus the parameters of its scaled synthetic twin."""

    name: str
    paper_rows: int
    paper_joinable_tables: int
    paper_features: int
    paper_best_accuracy: float
    rows: int
    n_satellites: int
    n_features: int
    n_base_features: int
    max_depth: int
    class_sep: float
    n_categorical: int = 2
    match_rate_range: tuple[float, float] = (0.8, 1.0)
    seed: int = 0

    def plan(self) -> SplitPlan:
        return SplitPlan(
            name=self.name,
            n_satellites=self.n_satellites,
            n_base_features=self.n_base_features,
            max_depth=self.max_depth,
            deep_signal=True,
            match_rate_range=self.match_rate_range,
            n_shared_categories=max(2, self.n_satellites // 3),
            seed=self.seed,
        )

    def flat(self) -> FlatDataset:
        n_informative = max(2, int(0.4 * self.n_features))
        n_redundant = max(1, int(0.2 * self.n_features))
        n_noise = self.n_features - n_informative - n_redundant
        return make_classification(
            n_rows=self.rows,
            n_informative=n_informative,
            n_redundant=n_redundant,
            n_noise=n_noise,
            class_sep=self.class_sep,
            n_categorical=min(self.n_categorical, n_informative),
            seed=self.seed,
        )


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="credit",
            paper_rows=1001, paper_joinable_tables=5, paper_features=21,
            paper_best_accuracy=0.99,
            rows=1000, n_satellites=5, n_features=21, n_base_features=4,
            max_depth=2, class_sep=2.2, seed=11,
        ),
        DatasetSpec(
            name="eyemove",
            paper_rows=7609, paper_joinable_tables=6, paper_features=24,
            paper_best_accuracy=0.894,
            rows=1500, n_satellites=6, n_features=24, n_base_features=4,
            max_depth=2, class_sep=1.4, seed=12,
        ),
        DatasetSpec(
            name="covertype",
            paper_rows=423682, paper_joinable_tables=12, paper_features=21,
            paper_best_accuracy=0.99,
            rows=2000, n_satellites=12, n_features=21, n_base_features=3,
            max_depth=3, class_sep=2.4, seed=13,
        ),
        DatasetSpec(
            name="jannis",
            paper_rows=57581, paper_joinable_tables=12, paper_features=55,
            paper_best_accuracy=0.875,
            rows=1500, n_satellites=12, n_features=55, n_base_features=6,
            max_depth=3, class_sep=1.2, seed=14,
        ),
        DatasetSpec(
            name="miniboone",
            paper_rows=73000, paper_joinable_tables=15, paper_features=51,
            paper_best_accuracy=0.9465,
            rows=1500, n_satellites=15, n_features=51, n_base_features=5,
            max_depth=3, class_sep=1.8, seed=15,
        ),
        DatasetSpec(
            name="steel",
            paper_rows=1943, paper_joinable_tables=15, paper_features=34,
            paper_best_accuracy=1.0,
            rows=1200, n_satellites=15, n_features=34, n_base_features=4,
            max_depth=3, class_sep=2.6, seed=16,
        ),
        DatasetSpec(
            name="school",
            paper_rows=1775, paper_joinable_tables=16, paper_features=731,
            paper_best_accuracy=0.831,
            # The paper notes school "follows a star schema" — max_depth=1
            # makes JoinAll's ordering count hit the infeasible regime (16!)
            # exactly as the paper reports for this dataset.
            rows=1000, n_satellites=16, n_features=96, n_base_features=8,
            max_depth=1, class_sep=1.0, match_rate_range=(0.7, 0.95), seed=17,
        ),
        DatasetSpec(
            name="bioresponse",
            paper_rows=3435, paper_joinable_tables=40, paper_features=420,
            paper_best_accuracy=0.885,
            rows=1000, n_satellites=40, n_features=120, n_base_features=8,
            max_depth=3, class_sep=1.3, seed=18,
        ),
    )
}


def dataset_names() -> list[str]:
    """The eight dataset names in Table II order."""
    return list(DATASETS.keys())


def build_dataset(name: str) -> LakeBundle:
    """Generate the scaled synthetic lake for one Table II dataset."""
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        )
    spec = DATASETS[name]
    return split_into_lake(spec.flat(), spec.plan())


def build_all() -> dict[str, LakeBundle]:
    """Generate every Table II lake (cached nowhere; call once per run)."""
    return {name: build_dataset(name) for name in DATASETS}
