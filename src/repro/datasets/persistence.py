"""On-disk persistence for lakes: CSV tables plus a JSON manifest.

A saved lake is a directory of one CSV per table and a ``manifest.json``
recording the base table, label column, declared KFK constraints and the
generation metadata — enough to reload the exact benchmark setting, or to
ignore the constraints and re-discover them (the data-lake setting).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..dataframe import DType, Table, read_csv, write_csv
from ..errors import DatasetError
from ..graph import DatasetRelationGraph, KFKConstraint
from .splitter import LakeBundle

__all__ = ["save_lake", "load_lake", "load_lake_tables", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1


def save_lake(bundle: LakeBundle, directory: str | Path) -> Path:
    """Write every table as CSV plus the manifest; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in bundle.tables:
        write_csv(table, directory / f"{table.name}.csv")
    manifest = {
        "version": _MANIFEST_VERSION,
        "name": bundle.name,
        "base_table": bundle.base_name,
        "label_column": bundle.label_column,
        "tables": [table.name for table in bundle.tables],
        "dtypes": {
            table.name: {
                column: dtype.value for column, dtype in table.dtypes().items()
            }
            for table in bundle.tables
        },
        "constraints": [
            {
                "table_a": c.table_a,
                "column_a": c.column_a,
                "table_b": c.table_b,
                "column_b": c.column_b,
            }
            for c in bundle.constraints
        ],
        "depths": bundle.depths,
        "feature_placement": bundle.feature_placement,
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def _read_manifest(directory: Path) -> dict:
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise DatasetError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corrupt manifest in {directory}: {exc}") from exc
    if manifest.get("version") != _MANIFEST_VERSION:
        raise DatasetError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    return manifest


def load_lake(directory: str | Path) -> LakeBundle:
    """Reload a saved lake into a :class:`LakeBundle`."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    tables = []
    dtype_map = manifest.get("dtypes", {})
    for name in manifest["tables"]:
        csv_path = directory / f"{name}.csv"
        if not csv_path.exists():
            raise DatasetError(f"manifest lists {name!r} but {csv_path} is missing")
        table = read_csv(csv_path, name=name)
        # CSV is dtype-lossy (whole floats read back as ints); restore the
        # recorded logical dtypes so a load is byte-for-byte faithful.
        for column, dtype_value in dtype_map.get(name, {}).items():
            wanted = DType(dtype_value)
            if column in table and table.column(column).dtype is not wanted:
                table = table.with_column(
                    column,
                    table.column(column).rename_nulls_preserved_cast(wanted),
                )
        tables.append(table)
    constraints = tuple(
        KFKConstraint(
            table_a=c["table_a"],
            column_a=c["column_a"],
            table_b=c["table_b"],
            column_b=c["column_b"],
        )
        for c in manifest["constraints"]
    )
    return LakeBundle(
        name=manifest["name"],
        base_name=manifest["base_table"],
        label_column=manifest["label_column"],
        tables=tuple(tables),
        constraints=constraints,
        depths={k: int(v) for k, v in manifest["depths"].items()},
        feature_placement=dict(manifest.get("feature_placement", {})),
    )


def load_lake_tables(directory: str | Path) -> list[Table]:
    """Load only the CSV tables (cold-start mode: constraints ignored).

    This is what a discovery-first workflow uses: read the files, then
    build the DRG with a matcher instead of the manifest's constraints.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    return [
        read_csv(directory / f"{name}.csv", name=name)
        for name in manifest["tables"]
    ]
