"""Building the paper's two experimental settings from a LakeBundle.

* :func:`benchmark_drg` — known KFK constraints, weight-1 edges (snowflake);
* :func:`datalake_drg` — KFK edges are *discarded* and relationships are
  rediscovered with a schema matcher (COMA at threshold 0.55), after the
  parent-side join columns are renamed so that naive same-name matching
  (MAB's requirement) no longer works.  The result is the dense, noisy
  multigraph of Section VII-C2.
"""

from __future__ import annotations

from ..dataframe import Table
from ..discovery import ComaMatcher
from ..graph import DatasetRelationGraph
from .splitter import LakeBundle, key_column_name, ref_column_name

__all__ = ["benchmark_drg", "datalake_drg", "rename_for_lake"]

DEFAULT_LAKE_THRESHOLD = 0.55


def benchmark_drg(bundle: LakeBundle) -> DatasetRelationGraph:
    """The benchmark setting: trust the bundle's KFK constraints."""
    return bundle.benchmark_drg()


def rename_for_lake(
    bundle: LakeBundle, rename_fraction: float = 0.5
) -> list[Table]:
    """Rename a fraction of parent-side join columns ``*_key`` -> ``*_ref``.

    Child tables keep their key names; on the renamed edges token-level
    similarity between ``x_ref`` and ``x_key`` (plus full value overlap)
    still lets a matcher recover the truth, but exact-name matching fails.
    Renaming only a fraction (every other constraint by default) mirrors
    real lakes, where some foreign keys keep the referenced name and some
    do not — MAB keeps partial reach, which is the regime Figure 6 shows.
    """
    parent_side: dict[str, list[str]] = {}
    for i, constraint in enumerate(bundle.constraints):
        if rename_fraction >= 1.0 or (
            rename_fraction > 0.0 and (i % max(1, round(1 / rename_fraction))) == 1
        ):
            parent_side.setdefault(constraint.table_a, []).append(
                constraint.column_a
            )
    renamed: list[Table] = []
    for table in bundle.tables:
        mapping = {}
        for column in parent_side.get(table.name, []):
            child = column[: -len("_key")] if column.endswith("_key") else column
            mapping[column] = ref_column_name(child)
        renamed.append(table.rename(mapping) if mapping else table)
    return renamed


def datalake_drg(
    bundle: LakeBundle,
    matcher: ComaMatcher | None = None,
    threshold: float = DEFAULT_LAKE_THRESHOLD,
    rename: bool = True,
    rename_fraction: float = 0.5,
) -> DatasetRelationGraph:
    """The data-lake setting: rediscover all edges with a matcher."""
    tables = (
        rename_for_lake(bundle, rename_fraction) if rename else list(bundle.tables)
    )
    return DatasetRelationGraph.from_discovery(
        tables, matcher or ComaMatcher(), threshold=threshold
    )
