"""Synthetic evaluation lakes: planted-signal twins of the Table II datasets."""

from .generators import FlatDataset, WideLake, make_classification, make_wide_lake
from .lake import DEFAULT_LAKE_THRESHOLD, benchmark_drg, datalake_drg, rename_for_lake
from .persistence import MANIFEST_NAME, load_lake, load_lake_tables, save_lake
from .registry import DATASETS, DatasetSpec, build_all, build_dataset, dataset_names
from .splitter import (
    BASE_ID,
    LABEL_COLUMN,
    LakeBundle,
    SplitPlan,
    key_column_name,
    ref_column_name,
    split_into_lake,
)

__all__ = [
    "FlatDataset",
    "make_classification",
    "WideLake",
    "make_wide_lake",
    "SplitPlan",
    "LakeBundle",
    "split_into_lake",
    "key_column_name",
    "ref_column_name",
    "LABEL_COLUMN",
    "BASE_ID",
    "benchmark_drg",
    "datalake_drg",
    "rename_for_lake",
    "DEFAULT_LAKE_THRESHOLD",
    "save_lake",
    "load_lake",
    "load_lake_tables",
    "MANIFEST_NAME",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "build_dataset",
    "build_all",
]
