"""Synthetic classification data with controllable feature relevance.

The paper evaluates on eight public datasets that cannot be downloaded in
this environment, so we generate planted-signal equivalents: binary
classification tables whose features span a controlled spectrum from
strongly informative through redundant to pure noise.  What the
experiments measure — can a method find the informative features once they
are scattered across transitively-joined tables — only depends on that
spectrum, not on the original data values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError

__all__ = ["FlatDataset", "make_classification"]


@dataclass(frozen=True)
class FlatDataset:
    """A flat (single-table) synthetic classification dataset.

    ``features`` maps feature name to a float vector; ``relevance_order``
    lists feature names from weakest to strongest planted association with
    the label (ground truth for the splitter's placement policy).
    """

    features: dict[str, np.ndarray]
    label: np.ndarray
    relevance_order: tuple[str, ...]

    @property
    def n_rows(self) -> int:
        return len(self.label)

    @property
    def n_features(self) -> int:
        return len(self.features)


def make_classification(
    n_rows: int,
    n_informative: int,
    n_redundant: int,
    n_noise: int,
    class_sep: float = 1.0,
    label_noise: float = 0.05,
    n_categorical: int = 0,
    seed: int = 0,
) -> FlatDataset:
    """Generate a binary classification dataset with planted structure.

    * informative features: class-conditional Gaussians with per-feature
      effect sizes decaying from ``class_sep`` down to ``class_sep / 4``,
      so informativeness is graded rather than uniform;
    * redundant features: noisy linear combinations of two informative
      features (they carry signal but add little beyond it — MRMR bait);
    * noise features: independent standard Gaussians;
    * categorical features: the first ``n_categorical`` informative
      features are additionally discretised into small integer codes.

    ``label_noise`` flips that fraction of labels to keep accuracy away
    from a trivial 1.0.
    """
    if n_rows < 10:
        raise DatasetError(f"n_rows must be >= 10, got {n_rows}")
    if n_informative < 1:
        raise DatasetError("need at least one informative feature")
    if min(n_redundant, n_noise) < 0 or n_categorical < 0:
        raise DatasetError("feature counts must be non-negative")
    if n_categorical > n_informative:
        raise DatasetError("n_categorical cannot exceed n_informative")

    rng = np.random.default_rng(seed)
    label = rng.integers(0, 2, size=n_rows)
    signs = np.where(label == 1, 1.0, -1.0)

    features: dict[str, np.ndarray] = {}
    strengths: dict[str, float] = {}

    informative_names = []
    for i in range(n_informative):
        effect = class_sep * (1.0 - 0.75 * i / max(1, n_informative - 1))
        name = f"inf_{i:02d}"
        features[name] = signs * effect / 2.0 + rng.normal(0.0, 1.0, n_rows)
        strengths[name] = effect
        informative_names.append(name)

    for i in range(n_redundant):
        a, b = rng.choice(n_informative, size=2, replace=n_informative < 2)
        name = f"red_{i:02d}"
        base = (
            features[informative_names[a]] + features[informative_names[int(b)]]
        ) / 2.0
        features[name] = base + rng.normal(0.0, 0.3, n_rows)
        strengths[name] = 0.6 * (
            strengths[informative_names[a]] + strengths[informative_names[int(b)]]
        ) / 2.0

    for i in range(n_noise):
        name = f"noise_{i:02d}"
        features[name] = rng.normal(0.0, 1.0, n_rows)
        strengths[name] = 0.0

    for i in range(n_categorical):
        name = informative_names[i]
        quantiles = np.quantile(features[name], [0.25, 0.5, 0.75])
        features[name] = np.searchsorted(quantiles, features[name]).astype(np.float64)

    if label_noise > 0.0:
        flips = rng.random(n_rows) < label_noise
        label = np.where(flips, 1 - label, label)

    relevance_order = tuple(sorted(features, key=lambda n: strengths[n]))
    return FlatDataset(
        features=features,
        label=label.astype(np.int64),
        relevance_order=relevance_order,
    )
