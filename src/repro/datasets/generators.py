"""Synthetic classification data with controllable feature relevance.

The paper evaluates on eight public datasets that cannot be downloaded in
this environment, so we generate planted-signal equivalents: binary
classification tables whose features span a controlled spectrum from
strongly informative through redundant to pure noise.  What the
experiments measure — can a method find the informative features once they
are scattered across transitively-joined tables — only depends on that
spectrum, not on the original data values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataframe import Table
from ..errors import DatasetError

__all__ = ["FlatDataset", "make_classification", "WideLake", "make_wide_lake"]


@dataclass(frozen=True)
class FlatDataset:
    """A flat (single-table) synthetic classification dataset.

    ``features`` maps feature name to a float vector; ``relevance_order``
    lists feature names from weakest to strongest planted association with
    the label (ground truth for the splitter's placement policy).
    """

    features: dict[str, np.ndarray]
    label: np.ndarray
    relevance_order: tuple[str, ...]

    @property
    def n_rows(self) -> int:
        return len(self.label)

    @property
    def n_features(self) -> int:
        return len(self.features)


def make_classification(
    n_rows: int,
    n_informative: int,
    n_redundant: int,
    n_noise: int,
    class_sep: float = 1.0,
    label_noise: float = 0.05,
    n_categorical: int = 0,
    seed: int = 0,
) -> FlatDataset:
    """Generate a binary classification dataset with planted structure.

    * informative features: class-conditional Gaussians with per-feature
      effect sizes decaying from ``class_sep`` down to ``class_sep / 4``,
      so informativeness is graded rather than uniform;
    * redundant features: noisy linear combinations of two informative
      features (they carry signal but add little beyond it — MRMR bait);
    * noise features: independent standard Gaussians;
    * categorical features: the first ``n_categorical`` informative
      features are additionally discretised into small integer codes.

    ``label_noise`` flips that fraction of labels to keep accuracy away
    from a trivial 1.0.
    """
    if n_rows < 10:
        raise DatasetError(f"n_rows must be >= 10, got {n_rows}")
    if n_informative < 1:
        raise DatasetError("need at least one informative feature")
    if min(n_redundant, n_noise) < 0 or n_categorical < 0:
        raise DatasetError("feature counts must be non-negative")
    if n_categorical > n_informative:
        raise DatasetError("n_categorical cannot exceed n_informative")

    rng = np.random.default_rng(seed)
    label = rng.integers(0, 2, size=n_rows)
    signs = np.where(label == 1, 1.0, -1.0)

    features: dict[str, np.ndarray] = {}
    strengths: dict[str, float] = {}

    informative_names = []
    for i in range(n_informative):
        effect = class_sep * (1.0 - 0.75 * i / max(1, n_informative - 1))
        name = f"inf_{i:02d}"
        features[name] = signs * effect / 2.0 + rng.normal(0.0, 1.0, n_rows)
        strengths[name] = effect
        informative_names.append(name)

    for i in range(n_redundant):
        a, b = rng.choice(n_informative, size=2, replace=n_informative < 2)
        name = f"red_{i:02d}"
        base = (
            features[informative_names[a]] + features[informative_names[int(b)]]
        ) / 2.0
        features[name] = base + rng.normal(0.0, 0.3, n_rows)
        strengths[name] = 0.6 * (
            strengths[informative_names[a]] + strengths[informative_names[int(b)]]
        ) / 2.0

    for i in range(n_noise):
        name = f"noise_{i:02d}"
        features[name] = rng.normal(0.0, 1.0, n_rows)
        strengths[name] = 0.0

    for i in range(n_categorical):
        name = informative_names[i]
        quantiles = np.quantile(features[name], [0.25, 0.5, 0.75])
        features[name] = np.searchsorted(quantiles, features[name]).astype(np.float64)

    if label_noise > 0.0:
        flips = rng.random(n_rows) < label_noise
        label = np.where(flips, 1 - label, label)

    relevance_order = tuple(sorted(features, key=lambda n: strengths[n]))
    return FlatDataset(
        features=features,
        label=label.astype(np.int64),
        relevance_order=relevance_order,
    )


@dataclass(frozen=True)
class WideLake:
    """A many-table synthetic lake for discovery-scale experiments.

    ``expected_key_edges`` is the planted ground truth: one
    ``(parent, key, child, key)`` tuple per parent→child join — exactly
    the high-weight edges a schema matcher should recover.
    """

    tables: tuple[Table, ...]
    expected_key_edges: tuple[tuple[str, str, str, str], ...]

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    @property
    def n_columns(self) -> int:
        return sum(len(t.column_names) for t in self.tables)


def make_wide_lake(
    n_tables: int,
    n_rows: int = 48,
    fanout: int = 8,
    match_rate: float = 0.9,
    n_shared_categories: int = 3,
    seed: int = 0,
) -> WideLake:
    """Generate a *wide* lake: many small tables, sparse true joins.

    The scale regime of sketch-index benchmarking is orthogonal to the
    signal-planting regime of :func:`make_classification` — what matters
    here is the *shape* of the matching problem: ``n_tables`` tables
    forming a ``fanout``-ary join tree, where satellite ``i`` joins its
    parent ``(i-1) // fanout`` through a key column ``k{i:04d}`` that
    exists on both sides (full domain on the parent, a ``match_rate``
    row-subsample on the child).  Key domains are disjoint permuted
    integer ranges, key names are unique single tokens, and per-table
    feature columns ``x{i:04d}`` hold continuous noise — so the number
    of truly joinable column pairs grows *linearly* in ``n_tables``
    while the full quadratic scan grows, well, quadratically.  A
    constant number of identically-named small-domain ``segment``
    columns is sprinkled on the first few satellites as spurious-edge
    bait (the paper's data-lake noise regime, held at O(1) so it does
    not disturb the asymptotics).
    """
    if n_tables < 2:
        raise DatasetError(f"n_tables must be >= 2, got {n_tables}")
    if n_rows < 8:
        raise DatasetError(f"n_rows must be >= 8, got {n_rows}")
    if fanout < 1:
        raise DatasetError(f"fanout must be >= 1, got {fanout}")
    if not 0.0 < match_rate <= 1.0:
        raise DatasetError(
            f"match_rate must be in (0, 1], got {match_rate}"
        )
    if n_shared_categories < 2:
        raise DatasetError(
            f"n_shared_categories must be >= 2, got {n_shared_categories}"
        )

    rng = np.random.default_rng(seed)
    names = [f"t{i:04d}" for i in range(n_tables)]
    columns_of: list[dict[str, np.ndarray]] = [{} for _ in range(n_tables)]
    row_counts = [n_rows] + [0] * (n_tables - 1)

    columns_of[0]["base_id"] = np.arange(n_rows, dtype=np.int64)
    columns_of[0]["label"] = rng.integers(0, 2, size=n_rows).astype(np.int64)
    columns_of[0]["x0000"] = rng.normal(0.0, 1.0, n_rows)

    expected: list[tuple[str, str, str, str]] = []
    for i in range(1, n_tables):
        parent = (i - 1) // fanout
        key = f"k{i:04d}"
        # Disjoint per-satellite integer domains: the only cross-table
        # value overlap in the lake is the planted parent/child pair
        # (plus the O(1) segment columns below).
        domain = i * 100_000 + rng.permutation(row_counts[parent]).astype(
            np.int64
        )
        columns_of[parent][key] = domain
        m = max(2, int(round(row_counts[parent] * match_rate)))
        columns_of[i][key] = rng.permutation(domain)[:m]
        columns_of[i][f"x{i:04d}"] = rng.normal(0.0, 1.0, m)
        row_counts[i] = m
        expected.append((names[parent], key, names[i], key))

    # Spurious-edge bait: identically-named tiny-domain category columns
    # on a constant number of satellites (identical names alone clear the
    # paper's 0.55 threshold under COMA's 60/40 weighting).
    for i in range(1, min(4, n_tables)):
        columns_of[i]["segment"] = rng.integers(
            0, n_shared_categories + i - 1, size=row_counts[i]
        ).astype(np.int64)

    tables = tuple(
        Table(columns_of[i], name=names[i]) for i in range(n_tables)
    )
    return WideLake(tables=tables, expected_key_edges=tuple(expected))
