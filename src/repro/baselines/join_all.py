"""JoinAll and JoinAll+F baselines (paper Section VII-B).

JoinAll left-joins every reachable table onto the base table.  When joins
are KFK and 1:1 there is a single possible result; otherwise the join
*order* matters and the number of distinct orderings explodes factorially
(Equation 3) — :func:`repro.graph.join_all_path_count` computes that
number, and :func:`run_join_all` refuses to run past a feasibility cap the
same way the paper's baseline timed out on the *school* dataset.

We execute one canonical ordering (BFS discovery order), which is how the
baseline is realised in practice for the feasible cases.  JoinAll+F runs a
filter feature selection (top-κ Spearman) over the single wide table
before training — cheap selection, expensive join.
"""

from __future__ import annotations

import time

from ..dataframe import Table
from ..engine import (
    DEFAULT_ERROR_BUDGET,
    DEFAULT_MAX_RETRIES,
    FaultInjector,
    FaultManager,
    JoinEngine,
)
from ..errors import JoinError
from ..graph import DatasetRelationGraph, bfs_levels, join_all_path_count
from ..ml import evaluate_accuracy
from ..obs import Tracer
from ..selection import SelectionCounters, select_k_best_named
from .common import BaselineResult, baseline_manifest, join_neighbor

__all__ = ["run_join_all", "join_all_table", "FEASIBILITY_CAP"]

#: Orderings beyond this are treated as "did not finish" (school's 15!).
FEASIBILITY_CAP = 10_000_000


def join_all_table(
    drg: DatasetRelationGraph,
    base_name: str,
    seed: int = 0,
    engine: JoinEngine | None = None,
    faults: FaultManager | None = None,
) -> tuple[Table, int]:
    """Join every reachable table in BFS order; returns (wide, n_joined)."""
    if engine is None:
        engine = JoinEngine(drg, seed=seed)
    base = drg.table(base_name)
    levels = bfs_levels(drg.graph, base_name)
    order = sorted(
        (name for name in levels if name != base_name),
        key=lambda n: (levels[n], n),
    )
    current = base
    joined = 0
    parents: dict[str, str] = {base_name: base_name}
    for name in order:
        # Join through any already-joined neighbour on a shallower level.
        sources = [
            n
            for n in drg.neighbors(name)
            if levels.get(n, 10**9) < levels[name] and n in parents
        ]
        result = None
        for source in sources:
            result = join_neighbor(
                current, drg, source, name, base_name, seed,
                engine=engine, faults=faults,
            )
            if result is not None:
                break
        if result is None:
            continue
        current, __ = result
        parents[name] = sources[0]
        joined += 1
    return current, joined


def run_join_all(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    model_name: str = "lightgbm",
    with_filter: bool = False,
    kappa: int = 15,
    seed: int = 0,
    feasibility_cap: int = FEASIBILITY_CAP,
    failure_policy: str = "skip_and_record",
    error_budget: int = DEFAULT_ERROR_BUDGET,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_injector: FaultInjector | None = None,
    enable_tracing: bool = True,
) -> BaselineResult:
    """JoinAll (``with_filter=False``) or JoinAll+F (``True``).

    Raises :class:`JoinError` when Equation (3) puts the number of
    orderings past ``feasibility_cap`` — the "did not finish within the
    time constraint" outcome of the paper.  Hop failures are handled per
    ``failure_policy`` and accounted on the result's ``failure_report``.
    """
    method = "JoinAll+F" if with_filter else "JoinAll"
    orderings = join_all_path_count(drg.graph, base_name)
    if orderings > feasibility_cap:
        raise JoinError(
            f"JoinAll is infeasible on {base_name!r}: {orderings} possible "
            f"join orderings exceed the cap of {feasibility_cap}"
        )
    tracer = Tracer(enabled=enable_tracing)
    started = time.perf_counter()
    engine = JoinEngine(
        drg, seed=seed, fault_injector=fault_injector, tracer=tracer
    )
    faults = FaultManager(
        policy=failure_policy,
        error_budget=error_budget,
        max_retries=max_retries,
        stage="join_all",
    )
    fs_seconds = 0.0
    counters = SelectionCounters()
    with tracer.span("join_all", base=base_name, model=model_name) as root:
        wide, joined = join_all_table(
            drg, base_name, seed, engine=engine, faults=faults
        )
        feature_names = [n for n in wide.column_names if n != label_column]
        if with_filter:
            fs_started = time.perf_counter()
            with tracer.span("selection", features=len(feature_names)):
                label = wide.column(label_column).to_float()
                matrix = wide.numeric_matrix(feature_names)
                kept, __ = select_k_best_named(
                    matrix,
                    feature_names,
                    label,
                    k=kappa,
                    metric="spearman",
                    seed=seed,
                    use_kernels=True,
                    counters=counters,
                )
            fs_seconds = (
                tracer.total_seconds("selection")
                if tracer.enabled
                else time.perf_counter() - fs_started
            )
            if kept:
                feature_names = kept
        with tracer.span("evaluate", model=model_name):
            acc = evaluate_accuracy(
                wide, label_column, model_name,
                feature_names=feature_names, seed=seed,
            )
    elapsed = root.seconds if tracer.enabled else time.perf_counter() - started
    manifest = baseline_manifest(
        "join_all",
        tracer,
        total_seconds=elapsed,
        fs_seconds=fs_seconds,
        dataset=drg,
        seed=seed,
        engine_stats=engine.snapshot(),
        selection_stats=counters.snapshot() if with_filter else None,
        failure_report=faults.report(),
        counters={"join_all.tables_joined": joined},
    )
    return BaselineResult(
        method=method,
        dataset=drg.table(base_name).name,
        model_name=model_name,
        accuracy=acc,
        feature_selection_seconds=fs_seconds,
        total_seconds=elapsed,
        n_joined_tables=joined,
        n_features_used=len(feature_names),
        engine_stats=engine.snapshot(),
        selection_stats=counters.snapshot() if with_filter else None,
        failure_report=faults.report(),
        run_manifest=manifest,
    )
