"""Baseline augmentation systems: BASE, ARDA, MAB, JoinAll(+F).

Reimplemented from their published descriptions (the AutoFeat authors did
the same for ARDA, whose source is unavailable).  All baselines and
AutoFeat itself share the :class:`BaselineResult` record so the benchmark
harness can compare them uniformly.
"""

from .arda import rifs_select, run_arda
from .autofeat_adapter import run_autofeat
from .base import run_base
from .common import BaselineResult, join_neighbor
from .join_all import FEASIBILITY_CAP, join_all_table, run_join_all
from .mab import run_mab

__all__ = [
    "BaselineResult",
    "join_neighbor",
    "run_base",
    "run_arda",
    "rifs_select",
    "run_mab",
    "run_join_all",
    "join_all_table",
    "FEASIBILITY_CAP",
    "run_autofeat",
]
