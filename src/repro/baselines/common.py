"""Shared result type and join helpers for the baseline systems."""

from __future__ import annotations

from dataclasses import dataclass

from ..dataframe import Table, left_join
from ..graph import DatasetRelationGraph

__all__ = ["BaselineResult", "join_neighbor"]


@dataclass(frozen=True)
class BaselineResult:
    """Comparable outcome record for every augmentation approach.

    The benchmark harness renders Figures 4-7 from exactly these fields:
    accuracy, feature-selection time vs total time, and the number of
    datasets the method joined to reach its answer.
    """

    method: str
    dataset: str
    model_name: str
    accuracy: float
    feature_selection_seconds: float
    total_seconds: float
    n_joined_tables: int
    n_features_used: int

    def row(self) -> dict:
        """Flat dict for report tables."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "model": self.model_name,
            "accuracy": round(self.accuracy, 4),
            "fs_seconds": round(self.feature_selection_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "joined_tables": self.n_joined_tables,
            "features": self.n_features_used,
        }


def join_neighbor(
    current: Table,
    drg: DatasetRelationGraph,
    source: str,
    target: str,
    base_name: str,
    seed: int = 0,
) -> tuple[Table, list[str]] | None:
    """Join ``target`` onto the running table via the best join option.

    Returns ``(joined, contributed_columns)`` or None when no join option
    exists or the join column is missing from the running table.
    """
    from ..core.materialize import apply_hop

    options = drg.best_join_options(source, target)
    if not options:
        return None
    try:
        return apply_hop(current, drg, options[0], base_name, seed)
    except Exception:
        return None
