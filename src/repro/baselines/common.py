"""Shared result type and join helpers for the baseline systems."""

from __future__ import annotations

from dataclasses import dataclass

from ..dataframe import Table
from ..engine import ExecutionStats, FailureReport, FaultManager, JoinEngine
from ..errors import JoinError
from ..graph import DatasetRelationGraph
from ..obs import MetricsRegistry, RunManifest, Tracer, build_manifest, flat_node
from ..selection.stats import SelectionStats

__all__ = ["BaselineResult", "baseline_manifest", "join_neighbor"]


@dataclass(frozen=True)
class BaselineResult:
    """Comparable outcome record for every augmentation approach.

    The benchmark harness renders Figures 4-7 from exactly these fields:
    accuracy, feature-selection time vs total time, and the number of
    datasets the method joined to reach its answer.
    """

    method: str
    dataset: str
    model_name: str
    accuracy: float
    feature_selection_seconds: float
    total_seconds: float
    n_joined_tables: int
    n_features_used: int
    #: Join-execution counters of the run (every baseline executes through
    #: the shared :class:`repro.engine.JoinEngine`); None for BASE-style
    #: methods that never join.
    engine_stats: ExecutionStats | None = None
    #: Feature-scoring counters for methods that use the shared selection
    #: layer (AutoFeat, JoinAll+F); None for model-in-the-loop selectors
    #: (ARDA's RIFS, MAB) that never touch it.
    selection_stats: SelectionStats | None = None
    #: Per-run failure accounting under the method's failure policy; None
    #: for BASE-style methods that never join.
    failure_report: FailureReport | None = None
    #: Reproducibility record of the run (timing tree, metrics, config,
    #: dataset fingerprint); every baseline attaches one.
    run_manifest: RunManifest | None = None

    def row(self) -> dict:
        """Flat dict for report tables."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "model": self.model_name,
            "accuracy": round(self.accuracy, 4),
            "fs_seconds": round(self.feature_selection_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
            "joined_tables": self.n_joined_tables,
            "features": self.n_features_used,
        }


def baseline_manifest(
    stage: str,
    tracer: Tracer,
    total_seconds: float,
    fs_seconds: float = 0.0,
    dataset=None,
    seed: int = 0,
    config=None,
    engine_stats: ExecutionStats | None = None,
    selection_stats: SelectionStats | None = None,
    failure_report: FailureReport | None = None,
    counters: dict[str, int] | None = None,
) -> RunManifest:
    """Assemble one baseline run's :class:`repro.obs.RunManifest`.

    Traced runs contribute their span tree; untraced runs get a
    synthesised two-node tree (whole run + selection share) so stage
    timings are never missing from benchmark figures.
    """
    registry = MetricsRegistry()
    if engine_stats is not None:
        engine_stats.publish(registry)
    if selection_stats is not None:
        selection_stats.publish(registry)
    if failure_report is not None:
        failure_report.publish(registry)
    for name, value in (counters or {}).items():
        registry.counter(name).inc(value)
    timing = None
    if not tracer.enabled:
        children = [flat_node("selection", fs_seconds)] if fs_seconds else []
        timing = flat_node(stage, total_seconds, children=children, traced=False)
    return build_manifest(
        stage,
        tracer=tracer,
        registry=registry,
        config=config,
        dataset=dataset,
        seed=seed,
        wall_seconds=total_seconds,
        timing=timing,
    )


def join_neighbor(
    current: Table,
    drg: DatasetRelationGraph,
    source: str,
    target: str,
    base_name: str,
    seed: int = 0,
    engine: JoinEngine | None = None,
    faults: FaultManager | None = None,
) -> tuple[Table, list[str]] | None:
    """Join ``target`` onto the running table via the best join option.

    Returns ``(joined, contributed_columns)`` or None when no join option
    exists or the hop failed.  Pass the caller's :class:`JoinEngine` so
    repeated visits to the same target table reuse its build-side index; a
    throwaway engine is used otherwise.  Pass the caller's
    :class:`FaultManager` to run the hop under its failure policy (failed
    hops are then recorded, and ``fail_fast`` propagates instead of
    returning None); without one, infeasible joins are silently skipped.
    """
    options = drg.best_join_options(source, target)
    if not options:
        return None
    if engine is None:
        engine = JoinEngine(drg, seed=seed, enable_cache=False)

    def hop() -> tuple[Table, list[str]]:
        return engine.apply_hop(current, options[0], base_name)

    if faults is None:
        try:
            return hop()
        except JoinError:
            return None
    return faults.execute(hop, base=base_name, edge=options[0])
