"""BASE — the unaugmented base table (paper Section VII-B).

The floor every augmentation method is measured against: train the target
model on the base table's own features only.
"""

from __future__ import annotations

import time

from ..dataframe import Table
from ..ml import evaluate_accuracy
from ..obs import Tracer
from .common import BaselineResult, baseline_manifest

__all__ = ["run_base"]


def run_base(
    base_table: Table,
    label_column: str,
    model_name: str = "lightgbm",
    seed: int = 0,
    enable_tracing: bool = True,
) -> BaselineResult:
    """Evaluate the base table as-is (no augmentation, no selection)."""
    tracer = Tracer(enabled=enable_tracing)
    started = time.perf_counter()
    with tracer.span("base", dataset=base_table.name, model=model_name) as root:
        with tracer.span("evaluate", model=model_name):
            acc = evaluate_accuracy(base_table, label_column, model_name, seed=seed)
    elapsed = root.seconds if tracer.enabled else time.perf_counter() - started
    manifest = baseline_manifest(
        "base",
        tracer,
        total_seconds=elapsed,
        dataset=[base_table],
        seed=seed,
    )
    return BaselineResult(
        method="BASE",
        dataset=base_table.name,
        model_name=model_name,
        accuracy=acc,
        feature_selection_seconds=0.0,
        total_seconds=elapsed,
        n_joined_tables=0,
        n_features_used=base_table.n_cols - 1,
        run_manifest=manifest,
    )
