"""Adapter exposing AutoFeat through the common baseline interface.

Lets the benchmark harness treat AutoFeat and the baselines uniformly:
every method is a function ``(drg, base, label, model, seed) ->
BaselineResult``.
"""

from __future__ import annotations

from ..core import AutoFeat, AutoFeatConfig
from ..engine import FaultInjector
from ..graph import DatasetRelationGraph
from .common import BaselineResult

__all__ = ["run_autofeat"]


def run_autofeat(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    model_name: str = "lightgbm",
    config: AutoFeatConfig | None = None,
    seed: int = 0,
    fault_injector: FaultInjector | None = None,
) -> BaselineResult:
    """Run the full AutoFeat pipeline and normalise its result record.

    The failure policy lives on ``config`` (``failure_policy`` /
    ``error_budget`` / ``max_retries``); the combined discovery+training
    failure accounting lands on the result's ``failure_report``.
    """
    config = (config or AutoFeatConfig()).with_overrides(seed=seed)
    result = AutoFeat(drg, config, fault_injector=fault_injector).augment(
        base_name, label_column, model_name
    )
    best = result.best
    return BaselineResult(
        method="AutoFeat",
        dataset=base_name,
        model_name=model_name,
        accuracy=result.accuracy,
        feature_selection_seconds=result.discovery.feature_selection_seconds,
        total_seconds=result.total_seconds,
        n_joined_tables=result.n_joined_tables,
        n_features_used=best.n_features_used if best else 0,
        engine_stats=result.combined_engine_stats,
        selection_stats=result.discovery.selection_stats,
        failure_report=result.combined_failure_report,
        run_manifest=result.run_manifest,
    )
