"""MAB — multi-armed-bandit feature augmentation (Liu et al.).

Each candidate table reachable from the current augmented table is an arm;
pulling an arm joins the table, retrains the model and collects the
accuracy delta as reward.  Arms are chosen by UCB1 over a fixed pull
budget, and joins that improved accuracy are kept.

Two published limitations are reproduced deliberately because the paper's
comparison depends on them:

* **same-name join columns only** — MAB connects tables through equally
  named columns (PK-FK with identical names), so it cannot follow the
  renamed/spurious edges a discovery algorithm emits;
* **model in the loop** — every pull trains the target model, which is
  where MAB's runtime goes (Figures 4 and 6).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.navigation import ucb_score
from ..engine import (
    DEFAULT_ERROR_BUDGET,
    DEFAULT_MAX_RETRIES,
    FaultInjector,
    FaultManager,
    JoinEngine,
)
from ..graph import DatasetRelationGraph
from ..ml import evaluate_accuracy
from ..obs import Tracer
from .common import BaselineResult, baseline_manifest

__all__ = ["run_mab"]


@dataclass
class _Arm:
    """One candidate (source table, target table) join action."""

    source: str
    target: str
    pulls: int = 0
    total_reward: float = 0.0

    def ucb(self, total_pulls: int, exploration: float) -> float:
        # Shared UCB1 with the navigation frontier: unpulled arms score
        # +inf (cold-start optimism) and the bonus uses log(total+1), so
        # it is strictly positive from the first pull — the previous
        # log(max(total, 1)) form zeroed the bonus while total_pulls <= 1
        # and collapsed early tie-breaking onto one-sample means.
        return ucb_score(self.pulls, self.total_reward, total_pulls, exploration)


def _same_name_options(drg: DatasetRelationGraph, source: str, target: str):
    """Join options restricted to identically-named columns.

    MAB inspects the raw edge set (it has no similarity-pruning stage of
    its own): any equally-named column pair is a candidate, which in a
    noisy lake lets it join on spurious shared categoricals.
    """
    return [
        e
        for e in drg.join_options(source, target)
        if e.source_column == e.target_column
    ]


def run_mab(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    model_name: str = "lightgbm",
    budget: int = 12,
    exploration: float = 0.5,
    seed: int = 0,
    failure_policy: str = "skip_and_record",
    error_budget: int = DEFAULT_ERROR_BUDGET,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_injector: FaultInjector | None = None,
    enable_tracing: bool = True,
) -> BaselineResult:
    """UCB1 bandit augmentation with a pull budget.

    Failed pulls are handled per ``failure_policy`` (a failing join
    penalises and retires the arm, exactly as an unrewarding pull did
    before) and accounted on the result's ``failure_report``.
    """
    tracer = Tracer(enabled=enable_tracing)
    started = time.perf_counter()
    engine = JoinEngine(
        drg, seed=seed, fault_injector=fault_injector, tracer=tracer
    )
    faults = FaultManager(
        policy=failure_policy,
        error_budget=error_budget,
        max_retries=max_retries,
        stage="mab",
    )
    base = drg.table(base_name)
    joined: list[str] = []

    def candidate_arms() -> list[_Arm]:
        sources = [base_name] + joined
        arms = []
        for source in sources:
            for target in drg.neighbors(source):
                if target == base_name or target in joined:
                    continue
                if _same_name_options(drg, source, target):
                    arms.append(_Arm(source=source, target=target))
        return arms

    with tracer.span("mab", base=base_name, model=model_name) as root:
        current = base
        with tracer.span("evaluate", model=model_name):
            current_acc = evaluate_accuracy(
                current, label_column, model_name, seed=seed
            )

        arms = candidate_arms()
        arm_index = {(a.source, a.target): a for a in arms}
        fs_seconds = 0.0
        total_pulls = 0

        while total_pulls < budget and arm_index:
            # Deterministic tie order: among equal UCB scores (all arms
            # are +inf before their first pull) the earliest-inserted arm
            # wins, independent of float noise or dict rehashing.
            arm = max(
                enumerate(arm_index.values()),
                key=lambda pair: (pair[1].ucb(total_pulls, exploration), -pair[0]),
            )[1]
            total_pulls += 1
            arm.pulls += 1
            options = _same_name_options(drg, arm.source, arm.target)
            pull_started = time.perf_counter()
            with tracer.span(
                "pull", source=arm.source, target=arm.target
            ) as pull_span:
                result = None
                if options:
                    result = faults.execute(
                        lambda: engine.apply_hop(current, options[0], base_name),
                        base=base_name,
                        edge=options[0],
                    )
                if result is None:
                    tracer.event("arm_retired", target=arm.target)
                    # The span is still open here, so its duration is not
                    # yet stamped — the wall-clock delta is the accounting
                    # source for failed pulls under both modes.
                    fs_seconds += time.perf_counter() - pull_started
                    arm.total_reward -= 0.01
                    del arm_index[(arm.source, arm.target)]
                    continue
                candidate_table, __ = result
                with tracer.span("evaluate", model=model_name):
                    acc = evaluate_accuracy(
                        candidate_table, label_column, model_name, seed=seed
                    )
            fs_seconds += (
                pull_span.seconds
                if tracer.enabled
                else time.perf_counter() - pull_started
            )
            reward = acc - current_acc
            arm.total_reward += reward
            if reward > 0.0:
                current = candidate_table
                current_acc = acc
                joined.append(arm.target)
                del arm_index[(arm.source, arm.target)]
                for fresh in candidate_arms():
                    arm_index.setdefault((fresh.source, fresh.target), fresh)
            elif arm.pulls >= 2:
                # Two unrewarding pulls: retire the arm.
                del arm_index[(arm.source, arm.target)]

    elapsed = root.seconds if tracer.enabled else time.perf_counter() - started
    manifest = baseline_manifest(
        "mab",
        tracer,
        total_seconds=elapsed,
        fs_seconds=fs_seconds,
        dataset=drg,
        seed=seed,
        engine_stats=engine.snapshot(),
        failure_report=faults.report(),
        counters={
            "mab.pulls": total_pulls,
            "mab.tables_joined": len(joined),
        },
    )
    return BaselineResult(
        method="MAB",
        dataset=base.name,
        model_name=model_name,
        accuracy=current_acc,
        feature_selection_seconds=fs_seconds,
        total_seconds=elapsed,
        n_joined_tables=len(joined),
        n_features_used=current.n_cols - 1,
        engine_stats=engine.snapshot(),
        failure_report=faults.report(),
        run_manifest=manifest,
    )
