"""ARDA — Automatic Relational Data Augmentation (Chepurko et al., 2020).

Reimplemented from the paper's description, as the AutoFeat authors also
had to do.  ARDA's shape:

1. **Single-hop star join**: every table directly joinable with the base
   table is left-joined onto it (ARDA only supports star schemata — this
   is the limitation AutoFeat's transitive traversal removes).
2. **RIFS — random-injection feature selection**: random noise features
   are injected into the wide table; a tree ensemble is fitted and
   features are kept only if their importance beats the injected noise.
   Several survival thresholds are tried and each candidate subset is
   *evaluated by training the model* — the model-in-the-loop step that
   makes ARDA slow relative to AutoFeat's heuristic ranking.
"""

from __future__ import annotations

import time

import numpy as np

from ..dataframe import Table
from ..engine import (
    DEFAULT_ERROR_BUDGET,
    DEFAULT_MAX_RETRIES,
    FaultInjector,
    FaultManager,
    JoinEngine,
)
from ..graph import DatasetRelationGraph
from ..ml import RandomForestClassifier, TabularEncoder, encode_labels, evaluate_accuracy
from ..obs import Tracer
from .common import BaselineResult, baseline_manifest, join_neighbor

__all__ = ["rifs_select", "run_arda"]

_NOISE_FRACTION = 0.2
_RIFS_ROUNDS = 3
_SURVIVAL_THRESHOLDS = (0.3, 0.5, 0.7)


def rifs_select(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: list[str],
    n_rounds: int = _RIFS_ROUNDS,
    noise_fraction: float = _NOISE_FRACTION,
    seed: int = 0,
) -> dict[float, list[str]]:
    """Random-injection feature selection.

    In each round, ``noise_fraction * d`` random features are appended and
    a random forest is fitted; a real feature "survives" the round when its
    importance exceeds the best injected-noise importance.  Returns, for
    each survival threshold, the features that survived at least that
    fraction of rounds.
    """
    X = np.asarray(X, dtype=np.float64)
    n, d = X.shape
    rng = np.random.default_rng(seed)
    n_noise = max(1, int(noise_fraction * d))
    survivals = np.zeros(d, dtype=np.float64)
    for _ in range(n_rounds):
        noise = rng.normal(0.0, 1.0, size=(n, n_noise))
        augmented = np.hstack([X, noise])
        forest = RandomForestClassifier(
            n_estimators=15, max_depth=8, seed=int(rng.integers(2**31 - 1))
        )
        forest.fit(augmented, y)
        importances = forest.feature_importances_
        noise_ceiling = importances[d:].max() if n_noise else 0.0
        survivals += (importances[:d] > noise_ceiling).astype(np.float64)
    survivals /= n_rounds
    return {
        threshold: [feature_names[j] for j in range(d) if survivals[j] >= threshold]
        for threshold in _SURVIVAL_THRESHOLDS
    }


def run_arda(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    model_name: str = "lightgbm",
    seed: int = 0,
    failure_policy: str = "skip_and_record",
    error_budget: int = DEFAULT_ERROR_BUDGET,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_injector: FaultInjector | None = None,
    enable_tracing: bool = True,
) -> BaselineResult:
    """Full ARDA pipeline: star join, RIFS, model-based threshold pick.

    Star-join hop failures are handled per ``failure_policy`` and
    accounted on the result's ``failure_report``.
    """
    tracer = Tracer(enabled=enable_tracing)
    started = time.perf_counter()
    engine = JoinEngine(
        drg, seed=seed, fault_injector=fault_injector, tracer=tracer
    )
    faults = FaultManager(
        policy=failure_policy,
        error_budget=error_budget,
        max_retries=max_retries,
        stage="arda",
    )
    base = drg.table(base_name)
    with tracer.span("arda", base=base_name, model=model_name) as root:
        current = base
        joined_tables = 0
        for neighbor in drg.neighbors(base_name):
            result = join_neighbor(
                current, drg, base_name, neighbor, base_name, seed,
                engine=engine, faults=faults,
            )
            if result is None:
                continue
            current, __ = result
            joined_tables += 1

        feature_names = [n for n in current.column_names if n != label_column]
        encoder = TabularEncoder()
        X = encoder.fit_transform(current, feature_names)
        y, __ = encode_labels(
            np.asarray(current.column(label_column).to_list(), dtype=object)
        )

        fs_started = time.perf_counter()
        with tracer.span("selection", features=len(feature_names)):
            candidates = rifs_select(X, y, feature_names, seed=seed)
            # Model-in-the-loop evaluation of each survival threshold.
            best_features = feature_names
            best_acc = -1.0
            for threshold in sorted(candidates):
                subset = candidates[threshold]
                if not subset:
                    continue
                with tracer.span(
                    "evaluate", threshold=threshold, features=len(subset)
                ):
                    acc = evaluate_accuracy(
                        current, label_column, model_name,
                        feature_names=subset, seed=seed,
                    )
                if acc > best_acc:
                    best_acc, best_features = acc, subset
        fs_seconds = (
            tracer.total_seconds("selection")
            if tracer.enabled
            else time.perf_counter() - fs_started
        )

        if best_acc < 0.0:
            with tracer.span("evaluate", features=len(best_features)):
                best_acc = evaluate_accuracy(
                    current, label_column, model_name,
                    feature_names=best_features, seed=seed,
                )
    elapsed = root.seconds if tracer.enabled else time.perf_counter() - started
    manifest = baseline_manifest(
        "arda",
        tracer,
        total_seconds=elapsed,
        fs_seconds=fs_seconds,
        dataset=drg,
        seed=seed,
        engine_stats=engine.snapshot(),
        failure_report=faults.report(),
        counters={"arda.tables_joined": joined_tables},
    )
    return BaselineResult(
        method="ARDA",
        dataset=base.name,
        model_name=model_name,
        accuracy=best_acc,
        feature_selection_seconds=fs_seconds,
        total_seconds=elapsed,
        n_joined_tables=joined_tables,
        n_features_used=len(best_features),
        engine_stats=engine.snapshot(),
        failure_report=faults.report(),
        run_manifest=manifest,
    )
