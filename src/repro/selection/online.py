"""Online streaming feature selectors (paper Section V-A's literature).

AutoFeat's pipeline is a batch-per-join instance of *streaming feature
selection*.  This module implements two classic fully-online selectors
from that literature — features offered strictly one at a time, accept or
discard immediately, no revisiting:

* **alpha-investing** (Zhou et al.): maintain a wealth budget of
  significance level; each accepted feature earns wealth back, each test
  spends it.  Significance is the p-value of the candidate's partial
  correlation with the label given the already-selected features.
* **fast-OSFS-style** (Wu et al.): accept when relevant (marginally
  dependent on the label) and not rendered conditionally independent of
  the label by any single already-selected feature.

Both expose the same ``offer(name, values) -> bool`` protocol, so they can
be compared head-to-head with AutoFeat's two-stage batch pipeline (the
"more complex feature selection strategies" the paper leaves as future
work).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..errors import SelectionError
from ..obs.tracer import NULL_TRACER, Tracer
from .entropy import conditional_mutual_information, discretize, mutual_information

__all__ = ["AlphaInvestingSelector", "FastOSFSSelector", "partial_correlation_pvalue"]


def _residualise(target: np.ndarray, basis: np.ndarray | None) -> np.ndarray:
    """Residual of ``target`` after least-squares projection onto ``basis``."""
    if basis is None or basis.size == 0:
        return target - target.mean()
    design = np.column_stack([np.ones(len(target)), basis])
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    return target - design @ coef


def partial_correlation_pvalue(
    candidate: np.ndarray,
    label: np.ndarray,
    selected: np.ndarray | None,
) -> float:
    """Two-sided p-value of corr(candidate, label | selected).

    Both variables are residualised against the selected features, then a
    Pearson t-test is applied to the residual correlation.  Degenerate
    inputs (constant residuals, tiny n) return p = 1.0 (never significant).
    """
    candidate = np.asarray(candidate, dtype=np.float64)
    label = np.asarray(label, dtype=np.float64)
    if candidate.shape != label.shape:
        raise SelectionError("candidate and label lengths differ")
    keep = np.isfinite(candidate) & np.isfinite(label)
    candidate, label = candidate[keep], label[keep]
    basis = selected[keep] if selected is not None else None
    n = len(candidate)
    n_controls = 0 if basis is None or basis.size == 0 else basis.shape[1]
    dof = n - 2 - n_controls
    if dof < 1:
        return 1.0
    res_x = _residualise(candidate, basis)
    res_y = _residualise(label, basis)
    sx, sy = res_x.std(), res_y.std()
    if sx == 0.0 or sy == 0.0:
        return 1.0
    r = float(np.clip(np.mean(res_x * res_y) / (sx * sy), -0.9999999, 0.9999999))
    t = r * np.sqrt(dof / (1.0 - r * r))
    return float(2.0 * stats.t.sf(abs(t), dof))


class AlphaInvestingSelector:
    """Alpha-investing: a wealth-managed stream of significance tests.

    At the i-th offered feature, the test level is αᵢ = wealth / (2i);
    acceptance pays back ``alpha_delta`` of wealth, rejection costs αᵢ.
    The scheme controls the false-discovery rate over an *unbounded*
    stream — exactly the regime of an ever-growing join frontier.
    """

    def __init__(
        self,
        initial_wealth: float = 0.5,
        alpha_delta: float = 0.5,
        tracer: Tracer | None = None,
    ):
        if initial_wealth <= 0:
            raise SelectionError("initial_wealth must be positive")
        self.wealth = initial_wealth
        self.alpha_delta = alpha_delta
        self.tracer = tracer or NULL_TRACER
        self._label: np.ndarray | None = None
        self._selected: list[np.ndarray] = []
        self._names: list[str] = []
        self._offers = 0

    def start(self, label: np.ndarray) -> "AlphaInvestingSelector":
        """Bind the selector to a label vector; resets all state."""
        self._label = np.asarray(label, dtype=np.float64)
        self._selected = []
        self._names = []
        self._offers = 0
        return self

    @property
    def selected_names(self) -> list[str]:
        return list(self._names)

    def _selected_matrix(self) -> np.ndarray | None:
        if not self._selected:
            return None
        return np.column_stack(self._selected)

    def offer(self, name: str, values: np.ndarray) -> bool:
        """Test one streamed feature; returns True when accepted."""
        if self._label is None:
            raise SelectionError("call start(label) before offering features")
        with self.tracer.span("offer", feature=name) as span:
            self._offers += 1
            alpha_i = self.wealth / (2.0 * self._offers)
            if alpha_i <= 0.0:
                return False
            p = partial_correlation_pvalue(
                values, self._label, self._selected_matrix()
            )
            if p < alpha_i:
                self.wealth += self.alpha_delta - alpha_i
                self._selected.append(np.asarray(values, dtype=np.float64))
                self._names.append(name)
                span.event("accepted", p=round(p, 6))
                return True
            self.wealth -= alpha_i
            return False


class FastOSFSSelector:
    """Fast-OSFS-style online selection with single-feature CI checks.

    A streamed feature is accepted when it is marginally relevant
    (MI with the label above ``relevance_threshold``) and no single
    already-selected feature makes it conditionally independent of the
    label (conditional MI below ``ci_threshold``).  Checking conditioning
    sets of size one is the "fast" variant's approximation.
    """

    def __init__(
        self,
        relevance_threshold: float = 0.01,
        ci_threshold: float = 0.005,
        tracer: Tracer | None = None,
    ):
        self.relevance_threshold = relevance_threshold
        self.ci_threshold = ci_threshold
        self.tracer = tracer or NULL_TRACER
        self._label_codes: np.ndarray | None = None
        self._selected_codes: list[np.ndarray] = []
        self._names: list[str] = []

    def start(self, label: np.ndarray) -> "FastOSFSSelector":
        """Bind the selector to a label vector; resets all state."""
        self._label_codes = discretize(np.asarray(label, dtype=np.float64))
        self._selected_codes = []
        self._names = []
        return self

    @property
    def selected_names(self) -> list[str]:
        return list(self._names)

    def offer(self, name: str, values: np.ndarray) -> bool:
        """Test one streamed feature; returns True when accepted."""
        if self._label_codes is None:
            raise SelectionError("call start(label) before offering features")
        with self.tracer.span("offer", feature=name) as span:
            codes = discretize(np.asarray(values, dtype=np.float64))
            if (
                mutual_information(codes, self._label_codes)
                < self.relevance_threshold
            ):
                return False
            for selected in self._selected_codes:
                cmi = conditional_mutual_information(
                    codes, self._label_codes, selected
                )
                if cmi < self.ci_threshold:
                    # Some selected feature subsumes the candidate.
                    return False
            self._selected_codes.append(codes)
            self._names.append(name)
            span.event("accepted")
            return True
