"""Relevance metrics (paper Section V-C).

Five scorers of how strongly a single feature associates with the label:

* **information gain** (IG) — mutual information with the label,
* **symmetrical uncertainty** (SU) — normalised IG,
* **Pearson** — absolute linear correlation,
* **Spearman** — absolute rank correlation (AutoFeat's choice),
* **Relief** — nearest-neighbour margin scoring.

Every scorer maps ``(feature, label) -> float`` where larger is more
relevant; Pearson/Spearman return absolute values so sign does not matter.
NaN entries are excluded pairwise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import SelectionError
from .entropy import discretize, mutual_information, symmetrical_uncertainty

__all__ = [
    "information_gain",
    "su_relevance",
    "pearson_relevance",
    "spearman_relevance",
    "relief_scores",
    "relevance_scores",
    "RELEVANCE_METRICS",
]


def _paired(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise SelectionError(f"length mismatch: {x.shape} vs {y.shape}")
    keep = np.isfinite(x) & np.isfinite(y)
    return x[keep], y[keep]


def information_gain(feature: np.ndarray, label: np.ndarray) -> float:
    """I(X;Y) between a (binned) feature and the label."""
    return mutual_information(discretize(feature), discretize(label))


def su_relevance(feature: np.ndarray, label: np.ndarray) -> float:
    """Symmetrical uncertainty SU(X, Y) in [0, 1]."""
    return symmetrical_uncertainty(discretize(feature), discretize(label))


def pearson_relevance(feature: np.ndarray, label: np.ndarray) -> float:
    """|Pearson r| between feature and label; 0 for constant inputs."""
    x, y = _paired(feature, label)
    if x.size < 2:
        return 0.0
    sx, sy = np.std(x), np.std(y)
    # Guard against effectively-constant vectors whose std is pure
    # floating-point residue (e.g. a large value repeated n times): the
    # threshold is relative to the data's own magnitude, so legitimately
    # tiny-valued columns are still correlated normally.
    tiny = float(np.finfo(np.float64).tiny)
    if sx <= 1e-12 * max(float(np.abs(x).max()), tiny) or sy <= 1e-12 * max(
        float(np.abs(y).max()), tiny
    ):
        return 0.0
    r = np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy)
    return float(abs(np.clip(r, -1.0, 1.0)))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks in [1, N] (midranks for ties), fully vectorised."""
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    if values.size == 0:
        return np.empty(0, dtype=np.float64)
    new_group = np.r_[True, sorted_vals[1:] != sorted_vals[:-1]]
    group_id = np.cumsum(new_group) - 1
    counts = np.bincount(group_id)
    ends = np.cumsum(counts).astype(np.float64)
    midranks = ends - (counts - 1) / 2.0
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = midranks[group_id]
    return ranks


def spearman_relevance(feature: np.ndarray, label: np.ndarray) -> float:
    """|Spearman ρ|: Pearson correlation of the midranks.

    AutoFeat's relevance metric of choice — monotone-association aware and
    cheap (paper Section V-C recommends it over IG/SU/Pearson/Relief).
    """
    x, y = _paired(feature, label)
    if x.size < 2:
        return 0.0
    return pearson_relevance(_rankdata(x), _rankdata(y))


def relief_scores(
    features: np.ndarray,
    label: np.ndarray,
    n_samples: int = 100,
    seed: int = 0,
) -> np.ndarray:
    """Relief feature weights for a whole feature matrix.

    For each sampled instance, find its nearest *hit* (same class) and
    nearest *miss* (other class) under L1 distance on min-max-scaled
    features; reward features that differ across classes and agree within
    a class.  Scores are shifted-clipped to be non-negative so they compose
    with the top-κ selection used by the rest of the pipeline.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(label, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("relief expects a 2-D feature matrix")
    if X.shape[0] != y.shape[0]:
        raise SelectionError("feature matrix and label length mismatch")
    n, d = X.shape
    if n < 2 or d == 0:
        return np.zeros(d, dtype=np.float64)

    col_min = np.nanmin(X, axis=0)
    col_range = np.nanmax(X, axis=0) - col_min
    col_range[col_range == 0.0] = 1.0
    Xs = (X - col_min) / col_range
    Xs = np.nan_to_num(Xs, nan=0.5)

    rng = np.random.default_rng(seed)
    picks = rng.choice(n, size=min(n_samples, n), replace=False)
    weights = np.zeros(d, dtype=np.float64)
    for i in picks:
        diffs = np.abs(Xs - Xs[i])
        dist = diffs.sum(axis=1)
        dist[i] = np.inf
        same = y == y[i]
        same[i] = False
        other = ~same
        other[i] = False
        if same.any():
            hit = np.argmin(np.where(same, dist, np.inf))
            weights -= diffs[hit] / len(picks)
        if other.any():
            miss = np.argmin(np.where(other, dist, np.inf))
            weights += diffs[miss] / len(picks)
    return np.clip(weights, 0.0, None)


RELEVANCE_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "information_gain": information_gain,
    "symmetrical_uncertainty": su_relevance,
    "pearson": pearson_relevance,
    "spearman": spearman_relevance,
}


def relevance_scores(
    features: np.ndarray,
    label: np.ndarray,
    metric: str = "spearman",
    seed: int = 0,
) -> np.ndarray:
    """Score every column of ``features`` against ``label``.

    ``metric`` is one of :data:`RELEVANCE_METRICS` plus ``"relief"`` (which
    scores all columns jointly).  Returns one non-negative score per column.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("relevance_scores expects a 2-D feature matrix")
    if metric == "relief":
        return relief_scores(X, label, seed=seed)
    if metric not in RELEVANCE_METRICS:
        raise SelectionError(
            f"unknown relevance metric {metric!r}; expected one of "
            f"{sorted(RELEVANCE_METRICS) + ['relief']}"
        )
    if metric == "spearman":
        # Rank the label once per call instead of once per feature: when a
        # column has no NaN (and the label is finite) its pairwise-complete
        # mask keeps every row, so the label ranking is column-independent.
        y = np.asarray(label, dtype=np.float64)
        y_finite = np.isfinite(y)
        label_ranks = _rankdata(y) if bool(y_finite.all()) else None
        out = np.empty(X.shape[1], dtype=np.float64)
        for j in range(X.shape[1]):
            x = X[:, j]
            keep = np.isfinite(x) & y_finite
            if label_ranks is not None and bool(keep.all()):
                out[j] = pearson_relevance(_rankdata(x), label_ranks)
                continue
            kept = x[keep]
            if kept.size < 2:
                out[j] = 0.0
                continue
            out[j] = pearson_relevance(_rankdata(kept), _rankdata(y[keep]))
        return out
    scorer = RELEVANCE_METRICS[metric]
    return np.asarray(
        [scorer(X[:, j], label) for j in range(X.shape[1])], dtype=np.float64
    )
