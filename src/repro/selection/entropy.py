"""Shannon information estimators on discretised variables.

All relevance/redundancy metrics in the paper bottom out in four
estimators: entropy H(X), mutual information I(X;Y), conditional mutual
information I(X;Y|Z) and symmetrical uncertainty SU(X,Y).  We estimate them
with plug-in (maximum-likelihood) estimates over discretised variables:
continuous features are equal-width binned, already-discrete features keep
their codes.  NaN entries are excluded pairwise, matching the behaviour of
selection libraries that impute or drop before scoring.
"""

from __future__ import annotations

import numpy as np

from ..errors import SelectionError

__all__ = [
    "discretize",
    "entropy",
    "joint_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "symmetrical_uncertainty",
]

DEFAULT_BINS = 10
_DISCRETE_UNIQUE_LIMIT = 32


def discretize(
    values: np.ndarray,
    n_bins: int = DEFAULT_BINS,
) -> np.ndarray:
    """Map a numeric vector to non-negative integer codes (-1 for NaN).

    Vectors with at most ``_DISCRETE_UNIQUE_LIMIT`` distinct finite values
    are treated as already discrete and densely re-coded; anything wider is
    equal-width binned into ``n_bins`` buckets.  The -1 code marks missing
    entries and is ignored by every estimator in this module.
    """
    if n_bins < 2:
        raise SelectionError(f"n_bins must be >= 2, got {n_bins}")
    x = np.asarray(values, dtype=np.float64)
    codes = np.full(x.shape, -1, dtype=np.int64)
    finite = np.isfinite(x)
    if not finite.any():
        return codes
    present = x[finite]
    uniques = np.unique(present)
    if len(uniques) <= _DISCRETE_UNIQUE_LIMIT:
        codes[finite] = np.searchsorted(uniques, present)
        return codes
    lo, hi = float(present.min()), float(present.max())
    if hi == lo:
        codes[finite] = 0
        return codes
    scaled = (present - lo) / (hi - lo)
    binned = np.minimum((scaled * n_bins).astype(np.int64), n_bins - 1)
    codes[finite] = binned
    return codes


def _probabilities(codes: np.ndarray) -> np.ndarray:
    valid = codes[codes >= 0]
    if valid.size == 0:
        return np.empty(0, dtype=np.float64)
    counts = np.bincount(valid)
    counts = counts[counts > 0]
    return counts / valid.size


def entropy(codes: np.ndarray) -> float:
    """Plug-in Shannon entropy H(X) in nats over non-missing codes."""
    p = _probabilities(np.asarray(codes, dtype=np.int64))
    if p.size == 0:
        return 0.0
    return float(-np.sum(p * np.log(p)))


def _pair_codes(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape != y.shape:
        raise SelectionError(
            f"code vectors have different lengths: {x.shape} vs {y.shape}"
        )
    keep = (x >= 0) & (y >= 0)
    return x[keep], y[keep]


def joint_entropy(x_codes: np.ndarray, y_codes: np.ndarray) -> float:
    """Plug-in joint entropy H(X, Y) over pairwise-complete observations."""
    x, y = _pair_codes(x_codes, y_codes)
    if x.size == 0:
        return 0.0
    width = int(y.max()) + 1 if y.size else 1
    joint = x * width + y
    return entropy(joint)


def mutual_information(x_codes: np.ndarray, y_codes: np.ndarray) -> float:
    """I(X;Y) = H(X) + H(Y) - H(X,Y), clipped at zero.

    Estimated over pairwise-complete observations so a few missing entries
    do not zero out the score.
    """
    x, y = _pair_codes(x_codes, y_codes)
    if x.size == 0:
        return 0.0
    mi = entropy(x) + entropy(y) - joint_entropy(x, y)
    return max(0.0, float(mi))


def conditional_mutual_information(
    x_codes: np.ndarray,
    y_codes: np.ndarray,
    z_codes: np.ndarray,
) -> float:
    """I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z), clipped at zero.

    This is the conditional information-gain term of Equation (1); CIFE,
    JMI and CMIM need it while MIFS/MRMR save its cost by setting λ=0 —
    the asymmetry behind the 3x runtime gap in Figure 3b.
    """
    x = np.asarray(x_codes, dtype=np.int64)
    y = np.asarray(y_codes, dtype=np.int64)
    z = np.asarray(z_codes, dtype=np.int64)
    if not (x.shape == y.shape == z.shape):
        raise SelectionError("code vectors have different lengths")
    keep = (x >= 0) & (y >= 0) & (z >= 0)
    x, y, z = x[keep], y[keep], z[keep]
    if x.size == 0:
        return 0.0
    wy = int(y.max()) + 1 if y.size else 1
    wz = int(z.max()) + 1 if z.size else 1
    xz = x * wz + z
    yz = y * wz + z
    xyz = (x * wy + y) * wz + z
    cmi = entropy(xz) + entropy(yz) - entropy(xyz) - entropy(z)
    return max(0.0, float(cmi))


def symmetrical_uncertainty(x_codes: np.ndarray, y_codes: np.ndarray) -> float:
    """SU(X,Y) = 2·I(X;Y) / (H(X) + H(Y)) ∈ [0, 1].

    Normalises information gain to compensate for its bias towards
    many-valued features (paper Section V-C).  Returns 0 when either
    marginal entropy is zero (a constant variable carries no information).
    """
    x, y = _pair_codes(x_codes, y_codes)
    if x.size == 0:
        return 0.0
    hx, hy = entropy(x), entropy(y)
    if hx + hy == 0.0:
        return 0.0
    mi = hx + hy - joint_entropy(x, y)
    return float(np.clip(2.0 * mi / (hx + hy), 0.0, 1.0))
