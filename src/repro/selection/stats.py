"""Scoring statistics for the selection-kernel layer.

Two flavours of the same record, mirroring :mod:`repro.engine.stats`:
:class:`SelectionCounters` is the mutable block a running
:class:`repro.core.StreamingFeatureSelector` (and the kernels in
:mod:`repro.selection.kernels`) increment, and :class:`SelectionStats` is
the frozen snapshot threaded into ``DiscoveryResult.selection_stats`` so
callers can observe how much scoring work a run performed — and how much
the persistent code cache saved.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry

__all__ = ["SelectionCounters", "SelectionStats"]

#: Counter fields of the stats record, in canonical reporting order.
_COUNTER_FIELDS = (
    "batches_scored",
    "features_ranked",
    "codes_cached",
    "codes_reused",
    "scalar_fallbacks",
)


@dataclass(frozen=True)
class SelectionStats:
    """Immutable snapshot of one run's feature-scoring counters.

    Attributes
    ----------
    batches_scored:
        Feature batches pushed through the two-stage selector (one per
        surviving join hop).
    features_ranked:
        Candidate columns scored by the relevance stage across all batches.
    codes_cached:
        Discretised code vectors stored in the persistent code cache (the
        label plus every accepted feature).
    codes_reused:
        Cached code vectors served to the redundancy stage instead of being
        re-discretised.  Without the cache this is the O(|S|·n) re-binning
        the legacy path performs on every batch.
    scalar_fallbacks:
        Pair scorings that fell off every vectorised/masked fast path onto
        the per-pair scalar pairwise-complete estimators (e.g. redundancy
        pairs where both code vectors contain missing entries).
    """

    batches_scored: int = 0
    features_ranked: int = 0
    codes_cached: int = 0
    codes_reused: int = 0
    scalar_fallbacks: int = 0

    @property
    def code_reuse_rate(self) -> float:
        """Reused codes per cache access (0.0 when nothing was reusable)."""
        total = self.codes_cached + self.codes_reused
        return self.codes_reused / total if total else 0.0

    def merged(self, other: "SelectionStats") -> "SelectionStats":
        """Counter-wise sum — e.g. stats of several discovery runs."""
        return SelectionStats(
            batches_scored=self.batches_scored + other.batches_scored,
            features_ranked=self.features_ranked + other.features_ranked,
            codes_cached=self.codes_cached + other.codes_cached,
            codes_reused=self.codes_reused + other.codes_reused,
            scalar_fallbacks=self.scalar_fallbacks + other.scalar_fallbacks,
        )

    def publish(
        self, registry: MetricsRegistry, prefix: str = "selection"
    ) -> MetricsRegistry:
        """Publish the counters (and the reuse-rate gauge) into ``registry``."""
        for name in _COUNTER_FIELDS:
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.gauge(f"{prefix}.code_reuse_rate").set(round(self.code_reuse_rate, 4))
        return registry

    def as_dict(self) -> dict:
        """Flat dict for reports and the selection-kernel benchmark JSON.

        Round-trips through a :class:`repro.obs.MetricsRegistry`, like
        :meth:`repro.engine.ExecutionStats.as_dict`.
        """
        registry = self.publish(MetricsRegistry())
        return {
            name: registry.value(f"selection.{name}") for name in _COUNTER_FIELDS
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SelectionStats":
        """Inverse of :meth:`as_dict` (derived fields are recomputed)."""
        return cls(**{name: int(data.get(name, 0)) for name in _COUNTER_FIELDS})

    def describe(self) -> str:
        """One-line human-readable rendering for summaries."""
        return (
            f"{self.batches_scored} batches, "
            f"{self.features_ranked} features ranked, "
            f"{self.codes_cached} codes cached / {self.codes_reused} reused, "
            f"{self.scalar_fallbacks} scalar fallbacks"
        )


@dataclass
class SelectionCounters:
    """Mutable counters incremented by a running selector.

    Field meanings match :class:`SelectionStats`; call :meth:`snapshot` to
    freeze the current values into a result-friendly record.
    """

    batches_scored: int = 0
    features_ranked: int = 0
    codes_cached: int = 0
    codes_reused: int = 0
    scalar_fallbacks: int = 0

    def snapshot(self) -> SelectionStats:
        """Freeze the current counter values."""
        return SelectionStats(
            batches_scored=self.batches_scored,
            features_ranked=self.features_ranked,
            codes_cached=self.codes_cached,
            codes_reused=self.codes_reused,
            scalar_fallbacks=self.scalar_fallbacks,
        )
