"""Redundancy metrics from the conditional-likelihood-maximisation family.

Equation (1) of the paper (after Li et al., "Feature Selection: A Data
Perspective") scores a candidate feature X_k against the already-selected
set S as

    J(X_k) = I(X_k; Y) - β · Σ_{X_j∈S} I(X_j; X_k)
                       + λ · Σ_{X_j∈S} I(X_j; X_k | Y)

Five instantiations are implemented (paper Section V-D):

==========  =========  =========  =======================================
method      β          λ          note
==========  =========  =========  =======================================
MIFS        0.5        0          Battiti's mutual-information selector
MRMR        1/|S|      0          AutoFeat's choice
CIFE        1          1          conditional infomax
JMI         1/|S|      1/|S|      joint mutual information
CMIM        —          —          max-form, Equation (2)
==========  =========  =========  =======================================

All scorers share pre-discretised codes, so calling several of them on the
same data (the ablation study) does not re-bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import SelectionError
from .entropy import (
    conditional_mutual_information,
    discretize,
    mutual_information,
)

__all__ = [
    "RedundancyResult",
    "redundancy_score",
    "redundancy_scores",
    "greedy_select",
    "linear_coefficients",
    "REDUNDANCY_METHODS",
    "MIFS_BETA",
]

MIFS_BETA = 0.5


def linear_coefficients(method: str, n_selected: int) -> tuple[float, float] | None:
    """(β, λ) of Equation (1) for the linear criteria; None for max-form.

    Single source of truth shared by the scalar scorers below and the
    batched kernels in :mod:`repro.selection.kernels`, so both paths weight
    the redundancy/conditional sums identically.
    """
    if method == "mifs":
        return MIFS_BETA, 0.0
    if method == "mrmr":
        return (1.0 / n_selected if n_selected else 0.0), 0.0
    if method == "cife":
        return 1.0, 1.0
    if method == "jmi":
        w = 1.0 / n_selected if n_selected else 0.0
        return w, w
    return None


@dataclass(frozen=True)
class RedundancyResult:
    """Outcome of scoring one candidate feature against the selected set."""

    score: float
    relevance_term: float
    redundancy_term: float
    conditional_term: float


def _codes_matrix(features: np.ndarray) -> list[np.ndarray]:
    X = np.asarray(features, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    return [discretize(X[:, j]) for j in range(X.shape[1])]


def _linear_combination(
    candidate: np.ndarray,
    selected: list[np.ndarray],
    label: np.ndarray,
    beta: float,
    lam: float,
) -> RedundancyResult:
    relevance = mutual_information(candidate, label)
    redundancy = 0.0
    conditional = 0.0
    for sel in selected:
        redundancy += mutual_information(sel, candidate)
        if lam != 0.0:
            conditional += conditional_mutual_information(sel, candidate, label)
    score = relevance - beta * redundancy + lam * conditional
    return RedundancyResult(
        score=float(score),
        relevance_term=float(relevance),
        redundancy_term=float(redundancy),
        conditional_term=float(conditional),
    )


def _mifs(candidate, selected, label) -> RedundancyResult:
    beta, lam = linear_coefficients("mifs", len(selected))
    return _linear_combination(candidate, selected, label, beta=beta, lam=lam)


def _mrmr(candidate, selected, label) -> RedundancyResult:
    beta, lam = linear_coefficients("mrmr", len(selected))
    return _linear_combination(candidate, selected, label, beta=beta, lam=lam)


def _cife(candidate, selected, label) -> RedundancyResult:
    beta, lam = linear_coefficients("cife", len(selected))
    return _linear_combination(candidate, selected, label, beta=beta, lam=lam)


def _jmi(candidate, selected, label) -> RedundancyResult:
    beta, lam = linear_coefficients("jmi", len(selected))
    return _linear_combination(candidate, selected, label, beta=beta, lam=lam)


def _cmim(candidate, selected, label) -> RedundancyResult:
    relevance = mutual_information(candidate, label)
    worst = 0.0
    for sel in selected:
        penalty = mutual_information(sel, candidate)
        penalty -= conditional_mutual_information(sel, candidate, label)
        worst = max(worst, penalty)
    return RedundancyResult(
        score=float(relevance - worst),
        relevance_term=float(relevance),
        redundancy_term=float(worst),
        conditional_term=0.0,
    )


REDUNDANCY_METHODS: dict[
    str, Callable[[np.ndarray, list[np.ndarray], np.ndarray], RedundancyResult]
] = {
    "mifs": _mifs,
    "mrmr": _mrmr,
    "cife": _cife,
    "jmi": _jmi,
    "cmim": _cmim,
}


def redundancy_score(
    candidate: np.ndarray,
    selected_features: np.ndarray | None,
    label: np.ndarray,
    method: str = "mrmr",
) -> RedundancyResult:
    """Score one candidate feature vector against the selected feature set.

    ``selected_features`` is an (n, m) matrix of the already-accepted
    features (or None/empty when nothing has been selected yet, in which
    case the score reduces to the relevance term).
    """
    if method not in REDUNDANCY_METHODS:
        raise SelectionError(
            f"unknown redundancy method {method!r}; "
            f"expected one of {sorted(REDUNDANCY_METHODS)}"
        )
    cand_codes = discretize(np.asarray(candidate, dtype=np.float64))
    label_codes = discretize(np.asarray(label, dtype=np.float64))
    if selected_features is None or np.size(selected_features) == 0:
        selected_codes: list[np.ndarray] = []
    else:
        selected_codes = _codes_matrix(selected_features)
    return REDUNDANCY_METHODS[method](cand_codes, selected_codes, label_codes)


def greedy_select(
    features: np.ndarray,
    label: np.ndarray,
    k: int,
    method: str = "mrmr",
) -> list[int]:
    """Greedy forward selection of ``k`` features under criterion J.

    The classic wrapper around Equation (1)/(2): at each step the candidate
    with the highest J against the currently-selected set is added.  This
    is the standalone redundancy-metric evaluation protocol of the paper's
    Figure 3b.

    The per-candidate Σ I(X_j;X_k) / Σ I(X_j;X_k|Y) sums (and the running
    max for CMIM) are accumulated incrementally: each greedy step adds the
    one MI term contributed by the feature just selected instead of
    re-summing over the whole selected set, turning the inner loop from
    O(d·|S|) MI evaluations per step into O(d).  Terms are added in
    selection order, so the floating-point sums — and hence the selected
    indices — are bit-identical to the naive rescoring loop.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("greedy_select expects a 2-D feature matrix")
    if k < 1:
        raise SelectionError(f"k must be >= 1, got {k}")
    if method not in REDUNDANCY_METHODS:
        raise SelectionError(
            f"unknown redundancy method {method!r}; "
            f"expected one of {sorted(REDUNDANCY_METHODS)}"
        )
    label_codes = discretize(np.asarray(label, dtype=np.float64))
    d = X.shape[1]
    candidate_codes = [discretize(X[:, j]) for j in range(d)]
    relevance = [mutual_information(c, label_codes) for c in candidate_codes]
    max_form = linear_coefficients(method, 0) is None
    track_conditional = not max_form and linear_coefficients(method, 1)[1] != 0.0
    red_sum = [0.0] * d
    cond_sum = [0.0] * d
    worst = [0.0] * d
    selected: list[int] = []
    in_selected = [False] * d
    while len(selected) < min(k, d):
        if max_form:
            beta = lam = 0.0
        else:
            beta, lam = linear_coefficients(method, len(selected))
        best_j, best_score = -1, -np.inf
        for j in range(d):
            if in_selected[j]:
                continue
            if max_form:
                score = float(relevance[j] - worst[j])
            else:
                score = float(
                    relevance[j] - beta * red_sum[j] + lam * cond_sum[j]
                )
            if score > best_score:
                best_j, best_score = j, score
        if best_j < 0:
            break
        selected.append(best_j)
        in_selected[best_j] = True
        new_codes = candidate_codes[best_j]
        for j in range(d):
            if in_selected[j]:
                continue
            mi = mutual_information(new_codes, candidate_codes[j])
            if max_form:
                penalty = mi - conditional_mutual_information(
                    new_codes, candidate_codes[j], label_codes
                )
                worst[j] = max(worst[j], penalty)
            else:
                red_sum[j] += mi
                if track_conditional:
                    cond_sum[j] += conditional_mutual_information(
                        new_codes, candidate_codes[j], label_codes
                    )
    return selected


def redundancy_scores(
    candidates: np.ndarray,
    selected_features: np.ndarray | None,
    label: np.ndarray,
    method: str = "mrmr",
) -> np.ndarray:
    """Score every column of ``candidates``; shares discretisation work."""
    X = np.asarray(candidates, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("redundancy_scores expects a 2-D candidate matrix")
    if method not in REDUNDANCY_METHODS:
        raise SelectionError(
            f"unknown redundancy method {method!r}; "
            f"expected one of {sorted(REDUNDANCY_METHODS)}"
        )
    label_codes = discretize(np.asarray(label, dtype=np.float64))
    if selected_features is None or np.size(selected_features) == 0:
        selected_codes: list[np.ndarray] = []
    else:
        selected_codes = _codes_matrix(selected_features)
    scorer = REDUNDANCY_METHODS[method]
    out = np.empty(X.shape[1], dtype=np.float64)
    for j in range(X.shape[1]):
        cand_codes = discretize(X[:, j])
        out[j] = scorer(cand_codes, selected_codes, label_codes).score
    return out
