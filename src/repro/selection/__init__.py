"""Feature-selection metrics: relevance, redundancy and top-κ selection.

Implements the full metric menu from paper Section V so the Figure 3
comparison (which drove AutoFeat's Spearman + MRMR design choice) can be
reproduced, not just the winning configuration.
"""

from .online import (
    AlphaInvestingSelector,
    FastOSFSSelector,
    partial_correlation_pvalue,
)
from .kernels import (
    SelectionCodeCache,
    batch_redundancy_scores,
    batch_relevance_scores,
    batch_spearman_scores,
    rank_matrix,
)
from .stats import SelectionCounters, SelectionStats
from .entropy import (
    conditional_mutual_information,
    discretize,
    entropy,
    joint_entropy,
    mutual_information,
    symmetrical_uncertainty,
)
from .redundancy import (
    REDUNDANCY_METHODS,
    greedy_select,
    linear_coefficients,
    RedundancyResult,
    redundancy_score,
    redundancy_scores,
)
from .relevance import (
    RELEVANCE_METRICS,
    information_gain,
    pearson_relevance,
    relevance_scores,
    relief_scores,
    spearman_relevance,
    su_relevance,
)
from .select_k_best import SelectionOutcome, select_k_best, select_k_best_named

__all__ = [
    "discretize",
    "entropy",
    "joint_entropy",
    "mutual_information",
    "conditional_mutual_information",
    "symmetrical_uncertainty",
    "information_gain",
    "su_relevance",
    "pearson_relevance",
    "spearman_relevance",
    "relief_scores",
    "relevance_scores",
    "RELEVANCE_METRICS",
    "RedundancyResult",
    "redundancy_score",
    "redundancy_scores",
    "greedy_select",
    "linear_coefficients",
    "REDUNDANCY_METHODS",
    "rank_matrix",
    "batch_spearman_scores",
    "batch_relevance_scores",
    "batch_redundancy_scores",
    "SelectionCodeCache",
    "SelectionCounters",
    "SelectionStats",
    "SelectionOutcome",
    "select_k_best",
    "select_k_best_named",
    "AlphaInvestingSelector",
    "FastOSFSSelector",
    "partial_correlation_pvalue",
]
