"""Vectorised selection kernels with cross-batch code caching.

The paper's own profiling (Figures 3a/3b) shows relevance/redundancy
scoring dominates AutoFeat's online runtime, yet the scalar path re-ranks
the label per feature and re-discretises the whole selected set on every
BFS hop.  This module is the scoring analogue of the join engine's
build/probe split (:mod:`repro.engine`):

* :func:`batch_spearman_scores` ranks a whole feature matrix with one
  argsort and computes every correlation against a once-ranked label via
  column-wise reductions — bit-identical to the scalar
  :func:`repro.selection.relevance.relevance_scores` path (NaN-bearing
  columns fall back to it, counted as ``scalar_fallbacks``);
* :class:`SelectionCodeCache` persists the discretised codes (and the
  marginal / label-joint entropy terms) of the label and every accepted
  feature, so redundancy scoring stops re-binning the selected set on
  every batch;
* :func:`batch_redundancy_scores` bins the candidate matrix once and
  reuses the cached contingency terms across all five redundancy criteria
  (MIFS, MRMR, CIFE, JMI, CMIM), falling back to the pairwise-complete
  scalar estimators only for code vectors that actually contain missing
  entries.

Bit-identity is load-bearing: every fast path performs the same numpy
operations on the same (column-contiguous) buffers as the scalar path, so
``AutoFeatConfig.enable_selection_kernels`` is an exact A/B switch —
``benchmarks/bench_selection_kernels.py`` asserts ranking parity the same
way the engine-cache bench does for the hop cache.
"""

from __future__ import annotations

import numpy as np

from ..errors import SelectionError
from .entropy import (
    conditional_mutual_information,
    discretize,
    entropy,
    mutual_information,
)
from .redundancy import REDUNDANCY_METHODS, linear_coefficients
from .relevance import RELEVANCE_METRICS, _rankdata, relevance_scores
from .stats import SelectionCounters

__all__ = [
    "rank_matrix",
    "batch_spearman_scores",
    "batch_relevance_scores",
    "SelectionCodeCache",
    "batch_redundancy_scores",
]

_TINY = float(np.finfo(np.float64).tiny)


def _column_entropies(M: np.ndarray) -> np.ndarray:
    """Plug-in entropy of every column of a non-negative integer matrix.

    One flat bincount over offset codes replaces the per-column
    :func:`repro.selection.entropy.entropy` calls; each column's positive
    counts come out in the same ascending-bin order, so the per-column
    ``-Σ p·log p`` reduction sees the identical float vector and the result
    is bit-identical to the scalar estimator.
    """
    n, m = M.shape
    if m == 0:
        return np.empty(0, dtype=np.float64)
    out = np.empty(m, dtype=np.float64)
    if n == 0:
        out.fill(0.0)
        return out
    width = int(M.max()) + 1
    offsets = np.arange(m, dtype=np.int64) * width
    flat = (M + offsets[np.newaxis, :]).ravel(order="F")
    counts = np.bincount(flat, minlength=m * width).reshape(m, width)
    for i in range(m):
        c = counts[i]
        c = c[c > 0]
        p = c / n
        out[i] = float(-np.sum(p * np.log(p)))
    return out


def rank_matrix(X: np.ndarray) -> np.ndarray:
    """Column-wise average ranks (midranks for ties) of an all-finite matrix.

    One stable argsort over the whole matrix plus a flattened bincount
    replace the per-column :func:`repro.selection.relevance._rankdata`
    calls; the midrank arithmetic is integer-exact, so the result is
    bit-identical to ranking each column separately.  Returned
    Fortran-ordered so per-column reductions run over contiguous memory.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("rank_matrix expects a 2-D matrix")
    n, d = X.shape
    ranks = np.empty((n, d), dtype=np.float64, order="F")
    if n == 0 or d == 0:
        return ranks
    order = np.argsort(X, axis=0, kind="stable")
    sorted_vals = np.take_along_axis(X, order, axis=0)
    new_group = np.empty((n, d), dtype=bool)
    new_group[0, :] = True
    new_group[1:, :] = sorted_vals[1:] != sorted_vals[:-1]
    group_id = np.cumsum(new_group, axis=0) - 1
    # Per-column bincount via one flat bincount over offset group ids.
    offsets = np.arange(d, dtype=np.int64) * n
    flat = (group_id + offsets[np.newaxis, :]).ravel(order="F")
    counts = np.bincount(flat, minlength=n * d).reshape(d, n)
    ends = np.cumsum(counts, axis=1).astype(np.float64)
    midranks = ends - (counts - 1) / 2.0
    per_position = midranks[np.arange(d)[np.newaxis, :], group_id]
    np.put_along_axis(ranks, order, per_position, axis=0)
    return ranks


def _spearman_block(X: np.ndarray, label_ranks: np.ndarray) -> np.ndarray:
    """|Spearman ρ| of every all-finite column against a pre-ranked label.

    The correlations are column-contiguous reductions over the F-ordered
    rank matrix, so their floating-point accumulation order matches the
    per-column scalar :func:`repro.selection.relevance.pearson_relevance`
    exactly.
    """
    sy = np.std(label_ranks)
    my = np.mean(label_ranks)
    ay = max(float(np.abs(label_ranks).max()), _TINY)
    ranks = rank_matrix(X)
    sx = np.std(ranks, axis=0)
    mx = np.mean(ranks, axis=0)
    ax = np.maximum(np.abs(ranks).max(axis=0), _TINY)
    degenerate = (sx <= 1e-12 * ax) | (sy <= 1e-12 * ay)
    centered = np.asfortranarray((ranks - mx) * (label_ranks - my)[:, np.newaxis])
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.mean(centered, axis=0) / (sx * sy)
    scores = np.abs(np.clip(r, -1.0, 1.0))
    scores[degenerate] = 0.0
    return scores


def batch_spearman_scores(
    features: np.ndarray,
    label: np.ndarray,
    counters: SelectionCounters | None = None,
) -> np.ndarray:
    """|Spearman ρ| of every column against the label, vectorised.

    All-finite columns (against an all-finite label) share one label
    ranking and one matrix-wide column ranking.  NaN-bearing columns are
    grouped by their pairwise-complete row mask — on joined tables every
    column of a batch misses the *same* rows (the ones the join did not
    match), so whole batches share one mask — and each group runs the same
    block computation on its compacted rows.  Either way the result is
    bit-identical to the scalar pairwise-complete path.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("batch_spearman_scores expects a 2-D matrix")
    y = np.asarray(label, dtype=np.float64)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise SelectionError(
            f"label shape {y.shape} does not match matrix {X.shape}"
        )
    n, d = X.shape
    out = np.zeros(d, dtype=np.float64)
    if d == 0 or n < 2:
        # Fewer than two rows can never yield a defined correlation; the
        # scalar path scores every such column 0.0.
        return out
    y_finite = np.isfinite(y)
    fast = (
        np.isfinite(X).all(axis=0)
        if bool(y_finite.all())
        else np.zeros(d, dtype=bool)
    )
    fast_idx = np.flatnonzero(fast)
    if fast_idx.size:
        out[fast_idx] = _spearman_block(X[:, fast_idx], _rankdata(y))
    slow_idx = np.flatnonzero(~fast)
    if slow_idx.size:
        # Group by the raw bytes of each column's pairwise-complete mask
        # (np.unique over boolean columns routes through numpy's structured
        # void dtype and costs more than the ranking it saves).
        masks = np.asfortranarray(np.isfinite(X[:, slow_idx]) & y_finite[:, np.newaxis])
        groups: dict[bytes, list[int]] = {}
        for k in range(slow_idx.size):
            groups.setdefault(masks[:, k].tobytes(), []).append(k)
        for members in groups.values():
            mask = masks[:, members[0]]
            if int(mask.sum()) < 2:
                continue  # scalar path scores such columns 0.0
            cols = slow_idx[members]
            out[cols] = _spearman_block(X[np.ix_(mask, cols)], _rankdata(y[mask]))
    return out


def batch_relevance_scores(
    features: np.ndarray,
    label: np.ndarray,
    metric: str = "spearman",
    seed: int = 0,
    counters: SelectionCounters | None = None,
) -> np.ndarray:
    """Kernel-accelerated drop-in for :func:`relevance_scores`.

    Spearman — AutoFeat's published metric — routes through the vectorised
    kernel; every other metric delegates to the scalar implementation, so
    callers can switch unconditionally.
    """
    X = np.asarray(features, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("batch_relevance_scores expects a 2-D matrix")
    if metric != "relief" and metric not in RELEVANCE_METRICS:
        raise SelectionError(
            f"unknown relevance metric {metric!r}; expected one of "
            f"{sorted(RELEVANCE_METRICS) + ['relief']}"
        )
    if counters is not None:
        counters.features_ranked += X.shape[1]
    if metric == "spearman":
        return batch_spearman_scores(X, label, counters=counters)
    return relevance_scores(X, label, metric=metric, seed=seed)


class SelectionCodeCache:
    """Persistent discretised-code cache for a run's selected feature set.

    Stores, for the label and every accepted feature, the integer codes
    plus the entropy terms that are independent of the candidate being
    scored: H(X_j), and H(X_j, Y) for the conditional criteria.  The legacy
    path recomputes all of this — O(|S|·n) re-binning plus a full
    ``column_stack`` copy — on every batch of every hop.
    """

    def __init__(
        self,
        label: np.ndarray,
        counters: SelectionCounters | None = None,
    ):
        self._counters = counters
        label = np.asarray(label, dtype=np.float64)
        self.label_codes = discretize(label)
        self.label_has_missing = bool((self.label_codes < 0).any())
        self.label_width = (
            int(self.label_codes.max()) + 1 if self.label_codes.size else 1
        )
        self.label_entropy = entropy(self.label_codes)
        self._codes: list[np.ndarray] = []
        self._entropies: list[float] = []
        self._label_joint_entropies: list[float] = []
        self._has_missing: list[bool] = []
        # For features with missing entries: their own validity mask, the
        # compacted codes and the entropy over them.  These let the scorer
        # treat "one side complete, other side missing" pairs on a masked
        # fast path (the pairwise-complete mask is then just the missing
        # side's own mask) instead of falling all the way back to scalar.
        self._valid_masks: list[np.ndarray | None] = []
        self._valid_codes: list[np.ndarray | None] = []
        self._valid_entropies: list[float] = []
        # Positions of the complete (no missing) features, plus their codes
        # stacked into one F-ordered matrix so the scorer can compute all
        # their joint entropies against a candidate in one flat bincount.
        self._complete_positions: list[int] = []
        self._complete_matrix: np.ndarray | None = None
        if counters is not None:
            counters.codes_cached += 1  # the label's codes

    @property
    def n_selected(self) -> int:
        return len(self._codes)

    def complete_matrix(self) -> np.ndarray:
        """(n, m) F-ordered stack of the complete features' codes."""
        if self._complete_matrix is None:
            n = self.label_codes.shape[0]
            if self._complete_positions:
                self._complete_matrix = np.asfortranarray(
                    np.column_stack(
                        [self._codes[i] for i in self._complete_positions]
                    )
                )
            else:
                self._complete_matrix = np.empty((n, 0), dtype=np.int64)
        return self._complete_matrix

    @property
    def selected_codes(self) -> list[np.ndarray]:
        """The cached code vectors (insertion order, not copied)."""
        return self._codes

    def add(self, column: np.ndarray) -> None:
        """Discretise and cache one newly-accepted feature column."""
        codes = discretize(np.asarray(column, dtype=np.float64))
        missing = bool((codes < 0).any())
        self._codes.append(codes)
        self._has_missing.append(missing)
        self._entropies.append(entropy(codes))
        if missing:
            mask = codes >= 0
            valid = codes[mask]
            self._valid_masks.append(mask)
            self._valid_codes.append(valid)
            self._valid_entropies.append(entropy(valid))
        else:
            self._valid_masks.append(None)
            self._valid_codes.append(None)
            self._valid_entropies.append(0.0)
            self._complete_positions.append(len(self._codes) - 1)
            self._complete_matrix = None  # rebuilt lazily on next use
        if missing or self.label_has_missing:
            # Pairwise-complete terms depend on the candidate's mask; the
            # scalar fallback recomputes them, so cache a placeholder.
            self._label_joint_entropies.append(0.0)
        else:
            self._label_joint_entropies.append(
                entropy(codes * self.label_width + self.label_codes)
            )
        if self._counters is not None:
            self._counters.codes_cached += 1


def batch_redundancy_scores(
    candidates: np.ndarray,
    cache: SelectionCodeCache,
    method: str = "mrmr",
    counters: SelectionCounters | None = None,
) -> np.ndarray:
    """Score every candidate column against the cached selected set.

    Drop-in for :func:`repro.selection.redundancy.redundancy_scores` with
    the selected set's codes served from ``cache``.  Each candidate is
    binned once; its marginal entropy H(X_k) and label-joint entropy
    H(X_k, Y) are computed once and reused across every pairwise term, and
    the cached H(X_j) / H(X_j, Y) terms are shared across the whole batch.
    Pairs whose codes contain missing entries fall back to the scalar
    pairwise-complete estimators (``counters.scalar_fallbacks``).
    """
    X = np.asarray(candidates, dtype=np.float64)
    if X.ndim != 2:
        raise SelectionError("batch_redundancy_scores expects a 2-D matrix")
    if method not in REDUNDANCY_METHODS:
        raise SelectionError(
            f"unknown redundancy method {method!r}; "
            f"expected one of {sorted(REDUNDANCY_METHODS)}"
        )
    label_codes = cache.label_codes
    if X.shape[0] != label_codes.shape[0]:
        raise SelectionError(
            f"candidate matrix has {X.shape[0]} rows, label has "
            f"{label_codes.shape[0]}"
        )
    n_selected = cache.n_selected
    if counters is not None:
        counters.codes_reused += n_selected
    coeffs = linear_coefficients(method, n_selected)
    max_form = coeffs is None and method == "cmim"
    if coeffs is None and not max_form:
        # Unknown-form criterion: score through the registered scalar
        # scorer, still saving the per-batch re-discretisation.
        scorer = REDUNDANCY_METHODS[method]
        return np.asarray(
            [
                scorer(discretize(X[:, j]), cache.selected_codes, label_codes).score
                for j in range(X.shape[1])
            ],
            dtype=np.float64,
        )
    beta, lam = (0.0, 0.0) if max_form else coeffs
    label_fast = not cache.label_has_missing and label_codes.size > 0
    wz = cache.label_width
    h_label = cache.label_entropy

    out = np.empty(X.shape[1], dtype=np.float64)
    for j in range(X.shape[1]):
        cand = discretize(X[:, j])
        cand_missing = bool((cand < 0).any())
        cand_fast = not cand_missing and cand.size > 0
        h_cand = entropy(cand) if cand_fast else 0.0
        wc = int(cand.max()) + 1 if cand.size else 1
        # Masked variants for a candidate with missing entries: against any
        # *complete* vector the pairwise-complete mask is just the
        # candidate's own validity mask, so the candidate-side terms are
        # computed once here and shared across the label and the whole
        # selected set.
        cand_mask = None
        cand_valid = None
        h_cand_valid = 0.0
        wc_valid = 1
        if cand_missing:
            cand_mask = cand >= 0
            cand_valid = cand[cand_mask]
            if cand_valid.size:
                h_cand_valid = entropy(cand_valid)
                wc_valid = int(cand_valid.max()) + 1
        cand_label_joint = None
        if label_fast and cand_fast:
            cand_label_joint = entropy(cand * wz + label_codes)
            relevance = max(0.0, float(h_cand + h_label - cand_label_joint))
        elif label_fast and cand_missing and cand_valid.size:
            label_m = label_codes[cand_mask]
            relevance = max(
                0.0,
                float(
                    h_cand_valid
                    + entropy(label_m)
                    - entropy(cand_valid * (int(label_m.max()) + 1) + label_m)
                ),
            )
        else:
            if counters is not None:
                counters.scalar_fallbacks += 1
            relevance = mutual_information(cand, label_codes)

        # The complete selected features share one joint-entropy batch: the
        # joint codes against the candidate are built as one broadcast and
        # binned with one flat bincount (per-pair float expressions — and
        # hence results — are unchanged).  Missing-code features keep the
        # per-pair masked / scalar paths.
        needs_conditional = max_form or lam != 0.0
        complete = cache._complete_positions
        mi_by_pos: dict[int, float] = {}
        cmi_by_pos: dict[int, float] = {}
        if complete:
            if cand_fast:
                joint = cache.complete_matrix() * wc + cand[:, np.newaxis]
                h_joint = _column_entropies(joint)
                for t, i in enumerate(complete):
                    mi_by_pos[i] = max(
                        0.0, float(cache._entropies[i] + h_cand - h_joint[t])
                    )
                if needs_conditional and label_fast:
                    h_joint3 = _column_entropies(
                        joint * wz + label_codes[:, np.newaxis]
                    )
                    for t, i in enumerate(complete):
                        cmi_by_pos[i] = max(
                            0.0,
                            float(
                                cache._label_joint_entropies[i]
                                + cand_label_joint
                                - h_joint3[t]
                                - h_label
                            ),
                        )
            elif cand_missing and cand_valid.size:
                sub = cache.complete_matrix()[cand_mask]
                h_sub = _column_entropies(sub)
                h_joint = _column_entropies(
                    sub * wc_valid + cand_valid[:, np.newaxis]
                )
                for t, i in enumerate(complete):
                    mi_by_pos[i] = max(
                        0.0, float(h_sub[t] + h_cand_valid - h_joint[t])
                    )
            elif cand_missing:
                for i in complete:
                    mi_by_pos[i] = 0.0

        redundancy = 0.0
        conditional = 0.0
        worst = 0.0
        for i in range(n_selected):
            sel_missing = cache._has_missing[i]
            if i in mi_by_pos:
                mi = mi_by_pos[i]
            elif cand_fast and sel_missing:
                sel_valid = cache._valid_codes[i]
                if sel_valid.size:
                    cand_m = cand[cache._valid_masks[i]]
                    mi = max(
                        0.0,
                        float(
                            cache._valid_entropies[i]
                            + entropy(cand_m)
                            - entropy(
                                sel_valid * (int(cand_m.max()) + 1) + cand_m
                            )
                        ),
                    )
                else:
                    mi = 0.0
            else:
                if counters is not None:
                    counters.scalar_fallbacks += 1
                mi = mutual_information(cache._codes[i], cand)
            cmi = 0.0
            if needs_conditional:
                if i in cmi_by_pos:
                    cmi = cmi_by_pos[i]
                else:
                    if counters is not None:
                        counters.scalar_fallbacks += 1
                    cmi = conditional_mutual_information(
                        cache._codes[i], cand, label_codes
                    )
            if max_form:
                worst = max(worst, mi - cmi)
            else:
                redundancy += mi
                if lam != 0.0:
                    conditional += cmi
        if max_form:
            out[j] = float(relevance - worst)
        else:
            out[j] = float(relevance - beta * redundancy + lam * conditional)
    return out
