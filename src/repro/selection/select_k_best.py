"""Top-κ feature selection ("select κ best", paper Section VI).

Sorts features by a relevance score and keeps the κ best with strictly
positive scores.  Used by AutoFeat's relevance analysis step and by the
JoinAll+F filter baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SelectionError
from .relevance import relevance_scores
from .stats import SelectionCounters

__all__ = ["SelectionOutcome", "select_k_best", "select_k_best_named"]


@dataclass(frozen=True)
class SelectionOutcome:
    """Indices (or names), in descending score order, plus their scores."""

    indices: tuple[int, ...]
    scores: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.indices)


def select_k_best(
    features: np.ndarray,
    label: np.ndarray,
    k: int,
    metric: str = "spearman",
    min_score: float = 0.0,
    seed: int = 0,
    use_kernels: bool = False,
    counters: SelectionCounters | None = None,
) -> SelectionOutcome:
    """Keep the ``k`` highest-scoring feature columns.

    Features scoring at or below ``min_score`` are excluded even when fewer
    than ``k`` features pass — an empty outcome means "everything here is
    irrelevant", which Algorithm 1 treats as a signal (but not a pruning
    decision, since irrelevant intermediates may still carry the path).
    Ties are broken by column index for determinism.

    ``use_kernels`` routes scoring through the vectorised kernels of
    :mod:`repro.selection.kernels` (bit-identical scores, so the outcome is
    unchanged); ``counters`` collects scoring statistics either way.
    """
    if k <= 0:
        raise SelectionError(f"k must be positive, got {k}")
    if use_kernels:
        from .kernels import batch_relevance_scores

        scores = batch_relevance_scores(
            features, label, metric=metric, seed=seed, counters=counters
        )
    else:
        if counters is not None:
            counters.features_ranked += int(np.asarray(features).shape[1])
        scores = relevance_scores(features, label, metric=metric, seed=seed)
    order = np.argsort(-scores, kind="stable")
    kept = [int(j) for j in order[:k] if scores[j] > min_score]
    return SelectionOutcome(
        indices=tuple(kept),
        scores=tuple(float(scores[j]) for j in kept),
    )


def select_k_best_named(
    features: np.ndarray,
    feature_names: list[str],
    label: np.ndarray,
    k: int,
    metric: str = "spearman",
    min_score: float = 0.0,
    seed: int = 0,
    use_kernels: bool = False,
    counters: SelectionCounters | None = None,
) -> tuple[list[str], list[float]]:
    """Name-oriented wrapper over :func:`select_k_best`."""
    if np.asarray(features).shape[1] != len(feature_names):
        raise SelectionError(
            f"{np.asarray(features).shape[1]} feature columns but "
            f"{len(feature_names)} names"
        )
    outcome = select_k_best(
        features,
        label,
        k,
        metric=metric,
        min_score=min_score,
        seed=seed,
        use_kernels=use_kernels,
        counters=counters,
    )
    names = [feature_names[j] for j in outcome.indices]
    return names, list(outcome.scores)
