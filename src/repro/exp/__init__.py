"""Experiment orchestration: declarative trial matrices, resumable
execution, an append-only results store and per-PR regression gating.

The data flow (DESIGN.md §15)::

    spec file (JSON/TOML)          experiments/smoke.json
        │  ExperimentSpec.from_file — schema + semantic validation
        ▼
    TrialSpec matrix               datasets × configs × seeds (× models)
        │  run_experiment — process pool, faults policies, resume
        ▼
    ResultsStore                   benchmarks/results/store/index.jsonl
        │  detect_regressions / render_*_report
        ▼
    text/HTML trends + gate        python -m repro.exp report / diff

``python -m repro.exp`` is the command-line face (``run`` / ``resume`` /
``report`` / ``diff``); ``scripts/exp_smoke.sh`` wires the checked-in
``experiments/smoke.json`` matrix into every PR's ``scripts/check.sh``.
"""

from .errors import SpecError, StoreError, TrialFailed
from .report import (
    Regression,
    detect_regressions,
    render_html_report,
    render_text_report,
    trial_history,
    write_html_report,
)
from .runner import ExperimentRunResult, new_run_id, run_experiment
from .spec import (
    SPEC_SCHEMA,
    ConfigVariant,
    ExperimentSpec,
    RegressionPolicy,
    TrialSpec,
    validate_spec,
)
from .store import DEFAULT_STORE_ROOT, ResultsStore, TrialRecord

__all__ = [
    "SPEC_SCHEMA",
    "ConfigVariant",
    "DEFAULT_STORE_ROOT",
    "ExperimentRunResult",
    "ExperimentSpec",
    "Regression",
    "RegressionPolicy",
    "ResultsStore",
    "SpecError",
    "StoreError",
    "TrialFailed",
    "TrialRecord",
    "TrialSpec",
    "detect_regressions",
    "new_run_id",
    "render_html_report",
    "render_text_report",
    "run_experiment",
    "trial_history",
    "validate_spec",
    "write_html_report",
]
