"""Declarative experiment specs: datasets × configs × seeds trial matrices.

An :class:`ExperimentSpec` is loaded from a JSON or TOML file, validated
against :data:`SPEC_SCHEMA` (the same mini JSON-schema validator the run
manifests use) plus semantic checks (known datasets, methods, settings
and ``AutoFeatConfig`` overrides), and expanded into a deterministic list
of :class:`TrialSpec` entries.

Every trial carries a **fingerprint** — a SHA-256 digest of exactly the
inputs that determine its result (dataset, setting, method, model,
config overrides, seed).  The fingerprint is what makes sweeps resumable
(:mod:`repro.exp.runner` skips trials whose fingerprint is already
complete in the store) and what lets the regression detector line up the
same trial across runs and git revisions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core import AutoFeatConfig
from ..engine.faults import DEFAULT_ERROR_BUDGET, DEFAULT_MAX_RETRIES, FAILURE_POLICIES
from ..errors import ConfigError
from ..obs.schema import validate
from .errors import SpecError

__all__ = [
    "SPEC_SCHEMA",
    "SETTINGS",
    "ConfigVariant",
    "RegressionPolicy",
    "TrialSpec",
    "ExperimentSpec",
    "validate_spec",
]

SETTINGS = ("benchmark", "datalake")

#: Structural schema of a spec file (semantic checks are separate).
SPEC_SCHEMA = {
    "type": "object",
    "required": ["name", "datasets", "configs", "seeds"],
    "properties": {
        "name": {"type": "string"},
        "description": {"type": "string"},
        "datasets": {"type": "array", "items": {"type": "string"}},
        "setting": {"type": "string"},
        "models": {"type": "array", "items": {"type": "string"}},
        "methods": {"type": "array", "items": {"type": "string"}},
        "configs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name"],
                "properties": {
                    "name": {"type": "string"},
                    "overrides": {"type": "object"},
                },
            },
        },
        "seeds": {"type": "array", "items": {"type": "integer"}},
        "timeout_seconds": {"type": "number", "minimum": 0},
        "failure_policy": {"type": "string"},
        "error_budget": {"type": "integer", "minimum": 0},
        "max_retries": {"type": "integer", "minimum": 0},
        "workers": {"type": "integer", "minimum": 0},
        "regression": {
            "type": "object",
            "properties": {
                "baseline_runs": {"type": "integer", "minimum": 1},
                "slowdown_ratio": {"type": "number", "minimum": 1},
                "min_stage_delta_seconds": {"type": "number", "minimum": 0},
                "accuracy_drop": {"type": "number", "minimum": 0},
            },
        },
    },
}


def _canonical(data) -> str:
    """Canonical JSON rendering used for all fingerprints."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _digest(data) -> str:
    return hashlib.sha256(_canonical(data).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ConfigVariant:
    """One named column of the config axis: a label plus overrides."""

    name: str
    overrides: dict = field(default_factory=dict)

    @property
    def config_hash(self) -> str:
        """Digest of the overrides alone (the store's config-axis key)."""
        return _digest(self.overrides)


@dataclass(frozen=True)
class RegressionPolicy:
    """Noise thresholds for the regression detector (DESIGN.md §15).

    A stage counts as regressed only when it is *both* relatively slower
    (``slowdown_ratio`` × the baseline mean) and absolutely slower
    (``min_stage_delta_seconds`` over it) — the absolute floor is what
    keeps microsecond-scale stages from tripping the gate on scheduler
    noise.  Accuracy is compared on absolute delta alone because
    same-seed runs are deterministic.
    """

    baseline_runs: int = 3
    slowdown_ratio: float = 1.5
    min_stage_delta_seconds: float = 0.25
    accuracy_drop: float = 0.02

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionPolicy":
        return cls(
            baseline_runs=int(data.get("baseline_runs", 3)),
            slowdown_ratio=float(data.get("slowdown_ratio", 1.5)),
            min_stage_delta_seconds=float(
                data.get("min_stage_delta_seconds", 0.25)
            ),
            accuracy_drop=float(data.get("accuracy_drop", 0.02)),
        )

    def as_dict(self) -> dict:
        return {
            "baseline_runs": self.baseline_runs,
            "slowdown_ratio": self.slowdown_ratio,
            "min_stage_delta_seconds": self.min_stage_delta_seconds,
            "accuracy_drop": self.accuracy_drop,
        }


@dataclass(frozen=True)
class TrialSpec:
    """One cell of the trial matrix — the unit the runner executes.

    The fingerprint deliberately excludes the experiment name and the
    config variant's *label*: two specs describing the same computation
    share trial identity, and renaming a config column does not orphan
    its history.
    """

    experiment: str
    dataset: str
    setting: str
    method: str
    model: str
    config_name: str
    overrides: dict
    seed: int

    @property
    def fingerprint(self) -> str:
        return _digest(
            {
                "dataset": self.dataset,
                "setting": self.setting,
                "method": self.method,
                "model": self.model,
                "overrides": self.overrides,
                "seed": self.seed,
            }
        )

    @property
    def config_hash(self) -> str:
        return _digest(self.overrides)

    @property
    def label(self) -> str:
        """Stable human-readable identity for progress lines and reports."""
        return (
            f"{self.dataset}/{self.setting}/{self.method}/{self.model}/"
            f"{self.config_name}/seed{self.seed}"
        )

    def build_config(self, **extra) -> AutoFeatConfig:
        """The trial's :class:`AutoFeatConfig` (overrides + seed + extras).

        ``extra`` fields win over the spec's overrides; the runner uses
        this for execution-environment perturbations (slowdown injection)
        that must *not* enter the fingerprint.
        """
        merged = {**self.overrides, "seed": self.seed, **extra}
        return AutoFeatConfig(**merged)

    def as_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "setting": self.setting,
            "method": self.method,
            "model": self.model,
            "config_name": self.config_name,
            "overrides": dict(self.overrides),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        return cls(
            experiment=data["experiment"],
            dataset=data["dataset"],
            setting=data["setting"],
            method=data["method"],
            model=data["model"],
            config_name=data["config_name"],
            overrides=dict(data.get("overrides", {})),
            seed=int(data["seed"]),
        )


def _known_datasets() -> tuple[str, ...]:
    from ..datasets import dataset_names

    return tuple(dataset_names())


def _known_methods() -> tuple[str, ...]:
    from ..bench.harness import ALL_METHODS

    return ALL_METHODS


def _known_models() -> tuple[str, ...]:
    from ..ml import MODEL_REGISTRY

    return tuple(MODEL_REGISTRY)


def validate_spec(data: dict) -> list[str]:
    """All problems with a spec dict (empty list = loadable).

    Structural validation against :data:`SPEC_SCHEMA` first; when that
    passes, semantic checks: known dataset/model/method/setting names,
    the failure policy, unique config names, and every config's overrides
    actually constructing an :class:`AutoFeatConfig`.
    """
    errors = validate(data, SPEC_SCHEMA, path="spec")
    if errors:
        return errors
    known = _known_datasets()
    for name in data["datasets"]:
        if name not in known:
            errors.append(f"spec.datasets: unknown dataset {name!r}")
    setting = data.get("setting", "benchmark")
    if setting not in SETTINGS:
        errors.append(
            f"spec.setting: {setting!r} not one of {list(SETTINGS)}"
        )
    methods = tuple(data.get("methods", ("AutoFeat",)))
    for method in methods:
        if method not in _known_methods():
            errors.append(f"spec.methods: unknown method {method!r}")
    models = tuple(data.get("models", ("lightgbm",)))
    for model in models:
        if model not in _known_models():
            errors.append(f"spec.models: unknown model {model!r}")
    if not data["datasets"]:
        errors.append("spec.datasets: must name at least one dataset")
    if not data["configs"]:
        errors.append("spec.configs: must name at least one config variant")
    if not data["seeds"]:
        errors.append("spec.seeds: must name at least one seed")
    policy = data.get("failure_policy", "skip_and_record")
    if policy not in FAILURE_POLICIES:
        errors.append(
            f"spec.failure_policy: {policy!r} not one of {list(FAILURE_POLICIES)}"
        )
    seen: set[str] = set()
    for i, variant in enumerate(data["configs"]):
        name = variant["name"]
        if name in seen:
            errors.append(f"spec.configs[{i}]: duplicate config name {name!r}")
        seen.add(name)
        overrides = variant.get("overrides", {})
        if "seed" in overrides:
            errors.append(
                f"spec.configs[{i}].overrides: 'seed' belongs on the "
                f"seeds axis, not in a config variant"
            )
            continue
        try:
            AutoFeatConfig(**overrides)
        except ConfigError as exc:
            errors.append(f"spec.configs[{i}].overrides: {exc}")
        except TypeError as exc:
            errors.append(
                f"spec.configs[{i}].overrides: unknown AutoFeatConfig "
                f"field ({exc})"
            )
    return errors


@dataclass(frozen=True)
class ExperimentSpec:
    """A validated trial matrix plus its execution and gating policy."""

    name: str
    datasets: tuple[str, ...]
    configs: tuple[ConfigVariant, ...]
    seeds: tuple[int, ...]
    setting: str = "benchmark"
    models: tuple[str, ...] = ("lightgbm",)
    methods: tuple[str, ...] = ("AutoFeat",)
    description: str = ""
    timeout_seconds: float = 300.0
    failure_policy: str = "skip_and_record"
    error_budget: int = DEFAULT_ERROR_BUDGET
    max_retries: int = DEFAULT_MAX_RETRIES
    workers: int = 0
    regression: RegressionPolicy = field(default_factory=RegressionPolicy)

    def trials(self) -> tuple[TrialSpec, ...]:
        """The full matrix in deterministic expansion order.

        Order is dataset → config → method → model → seed; resume
        semantics and the ``--max-trials`` kill point both rely on this
        order being stable across invocations.
        """
        out = []
        for dataset in self.datasets:
            for variant in self.configs:
                for method in self.methods:
                    for model in self.models:
                        for seed in self.seeds:
                            out.append(
                                TrialSpec(
                                    experiment=self.name,
                                    dataset=dataset,
                                    setting=self.setting,
                                    method=method,
                                    model=model,
                                    config_name=variant.name,
                                    overrides=dict(variant.overrides),
                                    seed=seed,
                                )
                            )
        return tuple(out)

    @property
    def n_trials(self) -> int:
        return (
            len(self.datasets)
            * len(self.configs)
            * len(self.methods)
            * len(self.models)
            * len(self.seeds)
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        errors = validate_spec(data)
        if errors:
            raise SpecError(
                "invalid experiment spec:\n  " + "\n  ".join(errors)
            )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            datasets=tuple(data["datasets"]),
            setting=data.get("setting", "benchmark"),
            models=tuple(data.get("models", ("lightgbm",))),
            methods=tuple(data.get("methods", ("AutoFeat",))),
            configs=tuple(
                ConfigVariant(v["name"], dict(v.get("overrides", {})))
                for v in data["configs"]
            ),
            seeds=tuple(int(s) for s in data["seeds"]),
            timeout_seconds=float(data.get("timeout_seconds", 300.0)),
            failure_policy=data.get("failure_policy", "skip_and_record"),
            error_budget=int(data.get("error_budget", DEFAULT_ERROR_BUDGET)),
            max_retries=int(data.get("max_retries", DEFAULT_MAX_RETRIES)),
            workers=int(data.get("workers", 0)),
            regression=RegressionPolicy.from_dict(data.get("regression", {})),
        )

    @classmethod
    def from_file(cls, path) -> "ExperimentSpec":
        """Load a JSON (``.json``) or TOML (``.toml``) spec file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
        if path.suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"{path} is not valid TOML: {exc}") from exc
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError(f"{path}: spec must be a JSON/TOML object")
        return cls.from_dict(data)
