"""Append-only results store for experiment trials.

Layout under the store root (``benchmarks/results/store/`` by default)::

    index.jsonl                       # one JSON line per completed trial
    trials/<fingerprint>/<run_id>.manifest.json   # the trial's RunManifest

The **index** is the source of truth: every line is a serialised
:class:`TrialRecord` (trial identity + status + headline numbers + stage
timings), appended as each trial finishes so a killed sweep keeps every
trial it completed.  Records are never rewritten — a re-run of the same
fingerprint appends a new record under a new ``run_id``, which is exactly
the per-trial history the regression detector walks.

Manifests are stored whole but out of line (one file per trial × run) so
the index stays cheap to scan; :meth:`ResultsStore.load_manifest` brings
one back on demand.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..bench.manifests import manifest_problems
from .errors import StoreError

__all__ = ["TrialRecord", "ResultsStore", "DEFAULT_STORE_ROOT"]

#: Store location used by the CLI when ``--store`` is not given.
DEFAULT_STORE_ROOT = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "results" / "store"
)

#: Statuses a stored trial can carry.
TRIAL_STATUSES = ("ok", "failed", "timeout", "infeasible")


@dataclass(frozen=True)
class TrialRecord:
    """One index line: a trial's identity, outcome and headline numbers."""

    fingerprint: str
    run_id: str
    experiment: str
    dataset: str
    setting: str
    method: str
    model: str
    config_name: str
    config_hash: str
    seed: int
    status: str
    git_rev: str = ""
    created_at: str = ""
    created_unix: float = 0.0
    wall_seconds: float = 0.0
    accuracy: float | None = None
    stage_seconds: dict = field(default_factory=dict)
    error_kind: str = ""
    error: str = ""
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "run_id": self.run_id,
            "experiment": self.experiment,
            "dataset": self.dataset,
            "setting": self.setting,
            "method": self.method,
            "model": self.model,
            "config_name": self.config_name,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "status": self.status,
            "git_rev": self.git_rev,
            "created_at": self.created_at,
            "created_unix": self.created_unix,
            "wall_seconds": self.wall_seconds,
            "accuracy": self.accuracy,
            "stage_seconds": dict(self.stage_seconds),
            "error_kind": self.error_kind,
            "error": self.error,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialRecord":
        return cls(
            fingerprint=data["fingerprint"],
            run_id=data["run_id"],
            experiment=data["experiment"],
            dataset=data["dataset"],
            setting=data.get("setting", "benchmark"),
            method=data.get("method", "AutoFeat"),
            model=data.get("model", ""),
            config_name=data.get("config_name", ""),
            config_hash=data.get("config_hash", ""),
            seed=int(data.get("seed", 0)),
            status=data.get("status", "failed"),
            git_rev=data.get("git_rev", ""),
            created_at=data.get("created_at", ""),
            created_unix=float(data.get("created_unix", 0.0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            accuracy=data.get("accuracy"),
            stage_seconds=dict(data.get("stage_seconds", {})),
            error_kind=data.get("error_kind", ""),
            error=data.get("error", ""),
            retries=int(data.get("retries", 0)),
        )


class ResultsStore:
    """Append-only trial store with a query API over the index.

    The store tolerates a torn final line (a run killed mid-append):
    unparseable lines are skipped on read and counted on
    :attr:`corrupt_lines`, never propagated.
    """

    def __init__(self, root: Path | str = DEFAULT_STORE_ROOT):
        self.root = Path(root)
        self.index_path = self.root / "index.jsonl"
        self.trials_dir = self.root / "trials"
        self.corrupt_lines = 0

    # -- writing ------------------------------------------------------------

    def append(self, record: TrialRecord, manifest: dict | None = None) -> TrialRecord:
        """Persist one finished trial: manifest file first, index line last.

        The index line is the commit point — a crash between the two
        leaves an orphan manifest file, never a dangling index entry.
        ``ok`` records must carry a publishable manifest; failure records
        carry none.
        """
        if record.status not in TRIAL_STATUSES:
            raise StoreError(
                f"unknown trial status {record.status!r}; "
                f"expected one of {list(TRIAL_STATUSES)}"
            )
        if record.status == "ok":
            problems = manifest_problems(manifest)
            if problems:
                raise StoreError(
                    f"refusing to store trial {record.fingerprint} "
                    f"({record.run_id}): {'; '.join(problems)}"
                )
        self.root.mkdir(parents=True, exist_ok=True)
        if manifest is not None:
            trial_dir = self.trials_dir / record.fingerprint
            trial_dir.mkdir(parents=True, exist_ok=True)
            manifest_path = trial_dir / f"{record.run_id}.manifest.json"
            manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
        line = json.dumps(record.as_dict(), sort_keys=True)
        with open(self.index_path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record

    # -- reading ------------------------------------------------------------

    def records(self) -> list[TrialRecord]:
        """Every index record in append order (corrupt lines skipped)."""
        self.corrupt_lines = 0
        if not self.index_path.is_file():
            return []
        out = []
        for line in self.index_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(TrialRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
        return out

    def query(
        self,
        *,
        experiment: str | None = None,
        dataset: str | None = None,
        config_hash: str | None = None,
        config_name: str | None = None,
        fingerprint: str | None = None,
        run_id: str | None = None,
        git_rev: str | None = None,
        method: str | None = None,
        model: str | None = None,
        seed: int | None = None,
        status: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TrialRecord]:
        """Index records matching every given filter, in append order.

        ``since`` / ``until`` bound ``created_unix`` (inclusive), covering
        the "what regressed this week" time-range queries.
        """
        out = []
        for record in self.records():
            if experiment is not None and record.experiment != experiment:
                continue
            if dataset is not None and record.dataset != dataset:
                continue
            if config_hash is not None and record.config_hash != config_hash:
                continue
            if config_name is not None and record.config_name != config_name:
                continue
            if fingerprint is not None and record.fingerprint != fingerprint:
                continue
            if run_id is not None and record.run_id != run_id:
                continue
            if git_rev is not None and record.git_rev != git_rev:
                continue
            if method is not None and record.method != method:
                continue
            if model is not None and record.model != model:
                continue
            if seed is not None and record.seed != seed:
                continue
            if status is not None and record.status != status:
                continue
            if since is not None and record.created_unix < since:
                continue
            if until is not None and record.created_unix > until:
                continue
            out.append(record)
        return out

    def completed_fingerprints(self, experiment: str | None = None) -> set[str]:
        """Fingerprints with at least one ``ok`` record — the resume set."""
        return {
            r.fingerprint
            for r in self.query(experiment=experiment, status="ok")
        }

    def run_ids(self, experiment: str | None = None) -> list[str]:
        """Distinct run ids in first-appearance order (oldest first)."""
        seen: list[str] = []
        for record in self.query(experiment=experiment):
            if record.run_id not in seen:
                seen.append(record.run_id)
        return seen

    def latest_run_id(self, experiment: str | None = None) -> str | None:
        ids = self.run_ids(experiment)
        return ids[-1] if ids else None

    def load_manifest(self, record: TrialRecord) -> dict | None:
        """The stored RunManifest dict of one record (None when absent)."""
        path = (
            self.trials_dir
            / record.fingerprint
            / f"{record.run_id}.manifest.json"
        )
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def describe(self) -> str:
        records = self.records()
        ok = sum(1 for r in records if r.ok)
        return (
            f"store at {self.root}: {len(records)} records "
            f"({ok} ok, {len(records) - ok} failed/timeout) across "
            f"{len(self.run_ids())} runs"
        )
