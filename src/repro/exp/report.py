"""Trend reports and per-PR regression gating over the results store.

Two consumers share this module:

* ``python -m repro.exp report`` renders the per-trial history (text or
  standalone HTML) — one table per trial fingerprint with the stage
  timings and accuracy of its last N runs, so a slow drift is visible
  before it trips the gate;
* ``python -m repro.exp diff`` runs :func:`detect_regressions` — it lines
  the target run's trials up against the same fingerprints in the
  previous runs and flags what got slower, less accurate, or newly
  broken — and exits non-zero, which is what ``scripts/check.sh`` gates
  each PR on.

Detection thresholds come from the spec's
:class:`~repro.exp.spec.RegressionPolicy`: a stage regresses only when it
exceeds the baseline mean both relatively (``slowdown_ratio``) and
absolutely (``min_stage_delta_seconds``), so microsecond stages cannot
trip the gate on scheduler noise; accuracy uses an absolute delta because
same-seed runs are deterministic.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path

from ..bench.reporting import format_table
from .spec import RegressionPolicy
from .store import ResultsStore, TrialRecord

__all__ = [
    "Regression",
    "detect_regressions",
    "trial_history",
    "render_text_report",
    "render_html_report",
    "write_html_report",
]

#: Stage columns shown in trend tables (others still gate, just unlisted).
HEADLINE_STAGES = ("discover", "selection", "train", "evaluate")


@dataclass(frozen=True)
class Regression:
    """One detected regression of a trial versus its baseline runs."""

    fingerprint: str
    label: str
    kind: str  # "stage_slowdown" | "accuracy_drop" | "new_failure"
    stage: str
    baseline: float
    current: float
    n_baselines: int
    run_id: str

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    def describe(self) -> str:
        if self.kind == "stage_slowdown":
            return (
                f"{self.label}: stage '{self.stage}' {self.baseline:.3f}s -> "
                f"{self.current:.3f}s ({self.ratio:.2f}x over {self.n_baselines} "
                f"baseline run(s))"
            )
        if self.kind == "accuracy_drop":
            return (
                f"{self.label}: accuracy {self.baseline:.4f} -> "
                f"{self.current:.4f} over {self.n_baselines} baseline run(s)"
            )
        return (
            f"{self.label}: newly {self.stage or 'failing'} (was ok in "
            f"{self.n_baselines} baseline run(s))"
        )

    def row(self) -> dict:
        return {
            "trial": self.label,
            "kind": self.kind,
            "stage": self.stage,
            "baseline": round(self.baseline, 4),
            "current": round(self.current, 4),
            "ratio": round(self.ratio, 3) if self.baseline > 0 else None,
            "baselines": self.n_baselines,
        }


def trial_history(
    store: ResultsStore, experiment: str
) -> dict[str, list[TrialRecord]]:
    """Per-fingerprint record history in append (oldest-first) order."""
    histories: dict[str, list[TrialRecord]] = {}
    for record in store.query(experiment=experiment):
        histories.setdefault(record.fingerprint, []).append(record)
    return histories


def _baselines_before(
    history: list[TrialRecord], run_id: str, limit: int
) -> list[TrialRecord]:
    """The last ``limit`` ok records of earlier runs than ``run_id``.

    "Earlier" is store-append order, which is run start order for the
    sequential per-PR usage this gates.
    """
    earlier: list[TrialRecord] = []
    for record in history:
        if record.run_id == run_id:
            break
        if record.ok:
            earlier.append(record)
    return earlier[-limit:]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def detect_regressions(
    store: ResultsStore,
    experiment: str,
    *,
    run_id: str | None = None,
    policy: RegressionPolicy | None = None,
) -> list[Regression]:
    """Regressions of ``run_id`` (default: the latest run) vs its baselines.

    Trials with no earlier ok record are skipped — the first run of a new
    matrix establishes baselines instead of gating against nothing.
    """
    policy = policy or RegressionPolicy()
    run_id = run_id or store.latest_run_id(experiment)
    if run_id is None:
        return []
    findings: list[Regression] = []
    for fingerprint, history in sorted(trial_history(store, experiment).items()):
        current = [r for r in history if r.run_id == run_id]
        if not current:
            continue
        record = current[-1]
        label = (
            f"{record.dataset}/{record.config_name}/{record.model}/"
            f"seed{record.seed}"
        )
        baselines = _baselines_before(history, run_id, policy.baseline_runs)
        if not baselines:
            continue
        if not record.ok:
            findings.append(
                Regression(
                    fingerprint=fingerprint,
                    label=label,
                    kind="new_failure",
                    stage=record.status,
                    baseline=0.0,
                    current=0.0,
                    n_baselines=len(baselines),
                    run_id=run_id,
                )
            )
            continue
        for stage, seconds in sorted(record.stage_seconds.items()):
            history_values = [
                b.stage_seconds[stage]
                for b in baselines
                if stage in b.stage_seconds
            ]
            if not history_values:
                continue
            base = _mean(history_values)
            if (
                seconds > base * policy.slowdown_ratio
                and seconds - base > policy.min_stage_delta_seconds
            ):
                findings.append(
                    Regression(
                        fingerprint=fingerprint,
                        label=label,
                        kind="stage_slowdown",
                        stage=stage,
                        baseline=base,
                        current=seconds,
                        n_baselines=len(history_values),
                        run_id=run_id,
                    )
                )
        accuracies = [b.accuracy for b in baselines if b.accuracy is not None]
        if accuracies and record.accuracy is not None:
            base_acc = _mean(accuracies)
            if base_acc - record.accuracy > policy.accuracy_drop:
                findings.append(
                    Regression(
                        fingerprint=fingerprint,
                        label=label,
                        kind="accuracy_drop",
                        stage="",
                        baseline=base_acc,
                        current=record.accuracy,
                        n_baselines=len(accuracies),
                        run_id=run_id,
                    )
                )
    return findings


# -- rendering ---------------------------------------------------------------


def _history_rows(history: list[TrialRecord], last_runs: int) -> list[dict]:
    rows = []
    for record in history[-last_runs:]:
        row = {
            "run": record.run_id,
            "rev": record.git_rev[:8],
            "status": record.status,
            "accuracy": record.accuracy,
            "wall_s": round(record.wall_seconds, 3),
        }
        for stage in HEADLINE_STAGES:
            if stage in record.stage_seconds:
                row[stage] = round(record.stage_seconds[stage], 3)
        rows.append(row)
    return rows


def render_text_report(
    store: ResultsStore,
    experiment: str,
    *,
    last_runs: int = 8,
    policy: RegressionPolicy | None = None,
) -> str:
    """Per-trial trend tables plus the latest run's regression verdict."""
    histories = trial_history(store, experiment)
    if not histories:
        return f"experiment {experiment!r}: no stored trials"
    sections = [store.describe(), ""]
    for fingerprint, history in sorted(
        histories.items(), key=lambda kv: kv[1][0].dataset
    ):
        head = history[0]
        title = (
            f"{head.dataset}/{head.setting}/{head.method}/{head.model}/"
            f"{head.config_name}/seed{head.seed}  [{fingerprint}]"
        )
        sections.append(format_table(_history_rows(history, last_runs), title=title))
        sections.append("")
    findings = detect_regressions(store, experiment, policy=policy)
    if findings:
        sections.append(
            format_table(
                [f.row() for f in findings],
                title=f"REGRESSIONS in run {findings[0].run_id}",
            )
        )
    else:
        sections.append(
            f"no regressions in latest run ({store.latest_run_id(experiment)})"
        )
    return "\n".join(sections)


_HTML_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem;
       color: #1a1a1a; background: #fbfbfb; }
h1 { font-size: 1.3rem; }  h2 { font-size: 1.0rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }
th { background: #eee; }  td.l, th.l { text-align: left; }
tr.regression td { background: #ffe3e3; }
.ok { color: #0a7d32; } .bad { color: #b3261e; font-weight: bold; }
"""


def _html_table(rows: list[dict], highlight=None) -> str:
    if not rows:
        return "<p>(no rows)</p>"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    out = ["<table><tr>"]
    for col in columns:
        out.append(f'<th class="l">{html.escape(str(col))}</th>')
    out.append("</tr>")
    for row in rows:
        cls = ' class="regression"' if highlight and highlight(row) else ""
        out.append(f"<tr{cls}>")
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                value = f"{value:.4f}"
            out.append(f"<td>{html.escape(str(value))}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def render_html_report(
    store: ResultsStore,
    experiment: str,
    *,
    last_runs: int = 8,
    policy: RegressionPolicy | None = None,
) -> str:
    """Standalone HTML trend report (no external assets or scripts)."""
    histories = trial_history(store, experiment)
    findings = detect_regressions(store, experiment, policy=policy)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>experiment {html.escape(experiment)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Experiment <code>{html.escape(experiment)}</code></h1>",
        f"<p>{html.escape(store.describe())}</p>",
    ]
    if findings:
        parts.append(
            f'<p class="bad">{len(findings)} regression(s) in run '
            f"{html.escape(findings[0].run_id)}</p>"
        )
        parts.append(_html_table([f.row() for f in findings], highlight=lambda r: True))
    else:
        latest = store.latest_run_id(experiment) or "-"
        parts.append(
            f'<p class="ok">no regressions in latest run '
            f"({html.escape(latest)})</p>"
        )
    regressed = {(f.fingerprint, f.run_id) for f in findings}
    for fingerprint, history in sorted(
        histories.items(), key=lambda kv: kv[1][0].dataset
    ):
        head = history[0]
        parts.append(
            f"<h2>{html.escape(head.dataset)}/{html.escape(head.setting)}/"
            f"{html.escape(head.method)}/{html.escape(head.model)}/"
            f"{html.escape(head.config_name)}/seed{head.seed} "
            f"<code>[{html.escape(fingerprint)}]</code></h2>"
        )
        rows = _history_rows(history, last_runs)
        runs_regressed = {
            run for fp, run in regressed if fp == fingerprint
        }
        parts.append(
            _html_table(rows, highlight=lambda r: r.get("run") in runs_regressed)
        )
    parts.append("</body></html>")
    return "".join(parts)


def write_html_report(path, store: ResultsStore, experiment: str, **kwargs) -> Path:
    path = Path(path)
    path.write_text(render_html_report(store, experiment, **kwargs))
    return path
