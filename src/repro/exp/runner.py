"""Resumable trial-matrix execution over a process pool.

The runner walks an :class:`~repro.exp.spec.ExperimentSpec`'s trial list
in its deterministic expansion order, executes each trial in a worker
process (or inline with ``workers=0``), and appends a
:class:`~repro.exp.store.TrialRecord` to the store **as each trial
finishes** — so a sweep killed at any point keeps everything it
completed, and ``resume`` re-executes only the fingerprints without a
completed record.

Failure isolation reuses the :mod:`repro.engine.faults` policies: one
crashed or timed-out trial is recorded on the run's
:class:`~repro.engine.FailureReport` under ``skip_and_record`` (the
default), retried under ``retry``, and raised as
:class:`~repro.exp.errors.TrialFailed` under ``fail_fast``.  The per-run
error budget bounds degradation exactly as it does for join hops.

Per-trial wall-clock timeouts are enforced by the parent against worker
futures, so they hold even when a trial wedges somewhere no cooperative
check runs.  A timed-out worker cannot be interrupted mid-task (it
occupies its slot until the trial returns, and is abandoned at shutdown);
the *run* keeps going on the remaining workers either way.  Inline
execution (``workers=0``) has no preemption, so there timeouts are
detected post-hoc and recorded, which keeps resume/report semantics
identical across backends.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..engine.faults import FailureReport, FaultManager
from ..obs.manifest import git_revision
from .errors import TrialFailed
from .spec import ExperimentSpec, TrialSpec
from .store import ResultsStore, TrialRecord

__all__ = ["ExperimentRunResult", "run_experiment", "new_run_id"]

#: Statuses that make a fingerprint "complete" for resume purposes —
#: infeasible is deterministic (e.g. JoinAll ordering explosion), so
#: re-running it would burn the same wall-clock for the same answer.
RESUME_COMPLETE_STATUSES = ("ok", "infeasible")


def new_run_id(prefix: str = "run") -> str:
    """A unique id for one runner invocation (sortable by start time)."""
    return f"{prefix}-{time.strftime('%Y%m%d-%H%M%S')}-{uuid.uuid4().hex[:6]}"


def _execute_trial(payload: dict) -> dict:
    """Worker entry point: run one trial, return a serialisable outcome.

    Never raises — exceptions become a ``status="failed"`` payload so the
    parent can apply the failure policy uniformly for inline and pooled
    execution.
    """
    try:
        trial = TrialSpec.from_dict(payload["trial"])
        inject = float(payload.get("inject_hop_latency", 0.0))

        from ..bench.harness import BenchProfile, build_setting, run_method
        from ..bench.manifests import manifest_problems
        from ..datasets import build_dataset

        config = trial.build_config(
            **(
                {"hop_latency_seconds": inject}
                if inject > 0
                else {}
            )
        )
        profile = BenchProfile(
            datasets=(trial.dataset,),
            models=(trial.model,),
            methods=(trial.method,),
            seed=trial.seed,
            config=config,
        )
        started = time.perf_counter()
        bundle = build_dataset(trial.dataset)
        drg = build_setting(bundle, trial.setting)
        result = run_method(trial.method, drg, bundle, trial.model, profile)
        wall = time.perf_counter() - started
        if result is None:
            return {"status": "infeasible", "wall_seconds": wall}
        report = getattr(result, "failure_report", None)
        if report is not None and not report.ok:
            return {
                "status": "failed",
                "error_kind": "DegradedRun",
                "error": f"trial degraded: {report.describe()}",
                "wall_seconds": wall,
            }
        manifest = result.run_manifest
        problems = manifest_problems(manifest)
        if problems:
            return {
                "status": "failed",
                "error_kind": "InvalidManifest",
                "error": "; ".join(problems),
                "wall_seconds": wall,
            }
        return {
            "status": "ok",
            "wall_seconds": wall,
            "accuracy": result.accuracy,
            "row": result.row(),
            "manifest": manifest.as_dict(),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in manifest.stage_seconds().items()
            },
        }
    except Exception as exc:  # noqa: BLE001 — policy is applied by the parent
        return {
            "status": "failed",
            "error_kind": type(exc).__name__,
            "error": str(exc),
            "wall_seconds": 0.0,
        }


@dataclass(frozen=True)
class ExperimentRunResult:
    """Outcome of one ``run_experiment`` invocation."""

    run_id: str
    experiment: str
    n_planned: int
    n_skipped_resume: int
    n_executed: int
    n_ok: int
    n_infeasible: int
    n_failed: int
    n_timeout: int
    wall_seconds: float
    failure_report: FailureReport = field(default_factory=FailureReport)
    records: tuple[TrialRecord, ...] = ()

    @property
    def ok(self) -> bool:
        return self.n_failed == 0 and self.n_timeout == 0

    def summary(self) -> str:
        return (
            f"run {self.run_id} [{self.experiment}]: "
            f"planned={self.n_planned} skipped(resume)={self.n_skipped_resume} "
            f"executed={self.n_executed} ok={self.n_ok} "
            f"infeasible={self.n_infeasible} failed={self.n_failed} "
            f"timeout={self.n_timeout} in {self.wall_seconds:.1f}s"
        )


def _record_from(
    trial: TrialSpec,
    run_id: str,
    git_rev: str,
    payload: dict,
    retries: int,
) -> TrialRecord:
    return TrialRecord(
        fingerprint=trial.fingerprint,
        run_id=run_id,
        experiment=trial.experiment,
        dataset=trial.dataset,
        setting=trial.setting,
        method=trial.method,
        model=trial.model,
        config_name=trial.config_name,
        config_hash=trial.config_hash,
        seed=trial.seed,
        status=payload["status"],
        git_rev=git_rev,
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        created_unix=time.time(),
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
        accuracy=payload.get("accuracy"),
        stage_seconds=dict(payload.get("stage_seconds", {})),
        error_kind=payload.get("error_kind", ""),
        error=payload.get("error", ""),
        retries=retries,
    )


class _TrialState:
    """Mutable bookkeeping for one pending trial (attempts used so far)."""

    __slots__ = ("trial", "attempts")

    def __init__(self, trial: TrialSpec):
        self.trial = trial
        self.attempts = 0


def run_experiment(
    spec: ExperimentSpec,
    store: ResultsStore,
    *,
    resume: bool = False,
    run_id: str | None = None,
    workers: int | None = None,
    max_trials: int | None = None,
    timeout_seconds: float | None = None,
    inject_hop_latency: float = 0.0,
    progress=None,
) -> ExperimentRunResult:
    """Execute (part of) a spec's trial matrix against a store.

    Parameters
    ----------
    resume:
        Skip every trial whose fingerprint already has a completed
        (``ok`` / ``infeasible``) record for this experiment.
    workers:
        Worker processes; ``0``/``None`` falls back to ``spec.workers``,
        and ``0`` means inline single-process execution.
    max_trials:
        Stop after executing this many trials — the deterministic stand-in
        for a mid-sweep kill that tests and ``scripts/exp_smoke.sh`` use.
    timeout_seconds:
        Per-trial wall-clock budget (``None`` = the spec's).
    inject_hop_latency:
        Extra per-hop engine latency (seconds) added to every trial's
        config *without* entering its fingerprint — an execution-
        environment perturbation for exercising the regression gate.
    progress:
        Optional callable receiving one line per trial outcome.
    """
    run_id = run_id or new_run_id()
    workers = spec.workers if workers is None else workers
    timeout = spec.timeout_seconds if timeout_seconds is None else timeout_seconds
    git_rev = git_revision()
    say = progress or (lambda line: None)

    trials = spec.trials()
    done: set[str] = set()
    if resume:
        done = {
            r.fingerprint
            for r in store.query(experiment=spec.name)
            if r.status in RESUME_COMPLETE_STATUSES
        }
    pending = [t for t in trials if t.fingerprint not in done]
    n_skipped = len(trials) - len(pending)
    if max_trials is not None:
        pending = pending[:max_trials]

    manager = FaultManager(
        policy=spec.failure_policy,
        error_budget=spec.error_budget,
        max_retries=spec.max_retries,
        stage="experiment",
    )
    max_attempts = 1 + (spec.max_retries if spec.failure_policy == "retry" else 0)

    records: list[TrialRecord] = []
    counts = {"ok": 0, "infeasible": 0, "failed": 0, "timeout": 0}
    started = time.perf_counter()

    def payload_for(state: _TrialState) -> dict:
        return {
            "trial": state.trial.as_dict(),
            "inject_hop_latency": inject_hop_latency,
        }

    def settle(state: _TrialState, payload: dict) -> bool:
        """Apply the failure policy to one outcome; True = retry the trial."""
        status = payload["status"]
        if status in ("ok", "infeasible"):
            record = _record_from(
                state.trial, run_id, git_rev, payload, retries=state.attempts - 1
            )
            store.append(record, payload.get("manifest"))
            records.append(record)
            counts[status] += 1
            say(f"  {status:<10} {state.trial.label} ({record.wall_seconds:.2f}s)")
            return False
        failure = TrialFailed(
            f"trial {state.trial.label} {status}: "
            f"{payload.get('error_kind', '')} {payload.get('error', '')}".strip()
        )
        if spec.failure_policy == "fail_fast":
            raise failure
        if state.attempts < max_attempts:
            return True
        record = _record_from(
            state.trial, run_id, git_rev, payload, retries=state.attempts - 1
        )
        store.append(record, None)
        records.append(record)
        counts[status] += 1
        say(f"  {status:<10} {state.trial.label}: {payload.get('error', '')}")
        # Recorded failures count against the run's error budget exactly
        # like join-hop failures do (raises ErrorBudgetExceeded past it).
        manager.record(failure, base=state.trial.dataset, path=state.trial.label)
        return False

    say(
        f"run {run_id} [{spec.name}]: {len(pending)} of {len(trials)} trials "
        f"to execute ({n_skipped} already complete)"
        + (f", workers={workers}" if workers else ", inline")
    )

    if workers and workers > 0:
        _run_pooled(pending, payload_for, settle, workers, timeout)
    else:
        for trial in pending:
            state = _TrialState(trial)
            while True:
                state.attempts += 1
                payload = _execute_trial(payload_for(state))
                if (
                    payload["status"] == "ok"
                    and timeout
                    and payload["wall_seconds"] > timeout
                ):
                    # Inline execution cannot preempt; detect post-hoc so
                    # the record matches what the pool would have done.
                    payload = {
                        "status": "timeout",
                        "error_kind": "TrialTimeout",
                        "error": (
                            f"trial exceeded {timeout:.1f}s "
                            f"(took {payload['wall_seconds']:.1f}s)"
                        ),
                        "wall_seconds": payload["wall_seconds"],
                    }
                if not settle(state, payload):
                    break

    return ExperimentRunResult(
        run_id=run_id,
        experiment=spec.name,
        n_planned=len(trials),
        n_skipped_resume=n_skipped,
        n_executed=sum(counts.values()),
        n_ok=counts["ok"],
        n_infeasible=counts["infeasible"],
        n_failed=counts["failed"],
        n_timeout=counts["timeout"],
        wall_seconds=time.perf_counter() - started,
        failure_report=manager.report(),
        records=tuple(records),
    )


def _run_pooled(pending, payload_for, settle, workers: int, timeout: float | None):
    """Pool scheduler: bounded in-flight set with per-future deadlines.

    At most ``workers`` futures are in flight, so every submitted trial
    starts immediately and its deadline can be measured from submission.
    Timed-out futures are abandoned (their worker finishes the trial and
    the result is dropped); retries re-enter the queue.
    """
    queue = [_TrialState(t) for t in pending]
    pool = ProcessPoolExecutor(max_workers=workers)
    in_flight: dict = {}  # future -> (state, deadline)
    try:
        while queue or in_flight:
            while queue and len(in_flight) < workers:
                state = queue.pop(0)
                state.attempts += 1
                future = pool.submit(_execute_trial, payload_for(state))
                deadline = time.monotonic() + timeout if timeout else None
                in_flight[future] = (state, deadline)
            finished, _ = wait(
                in_flight, timeout=0.05, return_when=FIRST_COMPLETED
            )
            for future in finished:
                state, _ = in_flight.pop(future)
                if settle(state, future.result()):
                    queue.append(state)
            now = time.monotonic()
            for future in list(in_flight):
                state, deadline = in_flight[future]
                if deadline is not None and now > deadline and not future.done():
                    future.cancel()
                    in_flight.pop(future)
                    payload = {
                        "status": "timeout",
                        "error_kind": "TrialTimeout",
                        "error": f"trial exceeded {timeout:.1f}s",
                        "wall_seconds": float(timeout),
                    }
                    if settle(state, payload):
                        queue.append(state)
    finally:
        # Don't block the run on abandoned (timed-out) workers; they exit
        # once their current trial returns.  (No `with` block: the context
        # manager's shutdown(wait=True) would join them.)
        pool.shutdown(wait=False, cancel_futures=True)
