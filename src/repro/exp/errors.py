"""Typed errors of the experiment-orchestration subsystem."""

from __future__ import annotations

from ..errors import ReproError

__all__ = ["SpecError", "StoreError", "TrialFailed"]


class SpecError(ReproError):
    """An experiment spec file is unreadable, malformed or invalid."""


class StoreError(ReproError):
    """The results store is unreadable or rejected a record."""


class TrialFailed(ReproError):
    """One trial crashed, timed out or produced an unpublishable result.

    Raised to the caller only under the ``fail_fast`` policy; the other
    policies record it on the run's :class:`~repro.engine.FailureReport`
    and keep the sweep going.
    """
