"""Experiment orchestration CLI: ``python -m repro.exp <command>``.

::

    python -m repro.exp run experiments/smoke.json --workers 2
    python -m repro.exp resume experiments/smoke.json
    python -m repro.exp report experiments/smoke.json --html report.html
    python -m repro.exp diff experiments/smoke.json --gate

``run`` executes the spec's full matrix; ``resume`` skips every trial
already complete in the store (the post-kill workflow); ``report``
renders per-trial timing/accuracy trends; ``diff`` compares the latest
(or ``--run-id``) run against its baselines and exits 1 on regressions —
the per-PR gate ``scripts/check.sh`` runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import SpecError, TrialFailed
from .report import detect_regressions, render_text_report, write_html_report
from .runner import run_experiment
from .spec import ExperimentSpec
from .store import DEFAULT_STORE_ROOT, ResultsStore


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="experiment spec file (.json or .toml)")
    parser.add_argument(
        "--store",
        default=str(DEFAULT_STORE_ROOT),
        help="results store directory (default: benchmarks/results/store)",
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, help="worker processes (0 = inline)")
    parser.add_argument("--run-id", default=None, help="explicit run id (default: timestamped)")
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="stop after this many trials (simulates a mid-sweep kill)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-trial timeout seconds (default: the spec's)",
    )
    parser.add_argument(
        "--inject-hop-latency",
        type=float,
        default=0.0,
        help="add per-hop engine latency (s) without changing trial "
        "fingerprints — for exercising the regression gate",
    )
    parser.add_argument(
        "--expect-executed",
        type=int,
        default=None,
        help="fail unless exactly this many trials executed (CI assertion)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Declare, run, resume and gate experiment trial matrices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute the spec's full trial matrix")
    _add_common(run)
    _add_run_flags(run)

    resume = sub.add_parser(
        "resume", help="execute only the trials without a completed record"
    )
    _add_common(resume)
    _add_run_flags(resume)

    report = sub.add_parser("report", help="render per-trial trend report")
    _add_common(report)
    report.add_argument("--last", type=int, default=8, help="runs shown per trial")
    report.add_argument("--html", default=None, help="also write a standalone HTML report here")

    diff = sub.add_parser(
        "diff", help="compare a run against its baselines; exit 1 on regressions"
    )
    _add_common(diff)
    diff.add_argument("--run-id", default=None, help="run to gate (default: latest)")
    diff.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when regressions are detected",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = ExperimentSpec.from_file(args.spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = ResultsStore(Path(args.store))

    if args.command in ("run", "resume"):
        try:
            result = run_experiment(
                spec,
                store,
                resume=args.command == "resume",
                run_id=args.run_id,
                workers=args.workers,
                max_trials=args.max_trials,
                timeout_seconds=args.timeout,
                inject_hop_latency=args.inject_hop_latency,
                progress=print,
            )
        except TrialFailed as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(result.summary())
        if not result.failure_report.ok:
            print(f"failures: {result.failure_report.describe()}")
        if (
            args.expect_executed is not None
            and result.n_executed != args.expect_executed
        ):
            print(
                f"error: expected exactly {args.expect_executed} executed "
                f"trials, got {result.n_executed}",
                file=sys.stderr,
            )
            return 1
        return 0 if result.ok else 1

    if args.command == "report":
        if args.html:
            path = write_html_report(
                args.html, store, spec.name, last_runs=args.last, policy=spec.regression
            )
        try:
            print(
                render_text_report(
                    store, spec.name, last_runs=args.last, policy=spec.regression
                )
            )
            if args.html:
                print(f"html report -> {path}")
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; not an error for a CLI.
            pass
        return 0

    # diff
    findings = detect_regressions(
        store, spec.name, run_id=args.run_id, policy=spec.regression
    )
    run_id = args.run_id or store.latest_run_id(spec.name)
    if not findings:
        print(f"diff: no regressions in run {run_id} [{spec.name}]")
        return 0
    print(f"diff: {len(findings)} regression(s) in run {run_id} [{spec.name}]:")
    for finding in findings:
        print(f"  {finding.describe()}")
    return 1 if args.gate else 0


if __name__ == "__main__":
    sys.exit(main())
