"""Experiment runner shared by all figure/table benchmarks.

A :class:`BenchProfile` fixes the experiment scale (datasets, models, MAB
budget); ``quick`` is sized for CI-style runs, ``full`` for the complete
Table II matrix.  :func:`compare_methods` produces one Figure 4/6-style
result row per (dataset, method, model).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..baselines import (
    BaselineResult,
    run_arda,
    run_autofeat,
    run_base,
    run_join_all,
    run_mab,
)
from ..core import AutoFeatConfig
from ..datasets import LakeBundle, benchmark_drg, build_dataset, datalake_drg, dataset_names
from ..errors import JoinError
from ..graph import DatasetRelationGraph
from .manifests import require_valid_manifest

__all__ = ["BenchProfile", "compare_methods", "build_setting", "ALL_METHODS"]

ALL_METHODS = ("BASE", "ARDA", "MAB", "JoinAll", "JoinAll+F", "AutoFeat")


@dataclass(frozen=True)
class BenchProfile:
    """Scale knobs for one benchmark invocation."""

    datasets: tuple[str, ...]
    models: tuple[str, ...] = ("lightgbm", "xgboost")
    methods: tuple[str, ...] = ALL_METHODS
    mab_budget: int = 10
    seed: int = 1
    config: AutoFeatConfig = field(default_factory=AutoFeatConfig)

    @staticmethod
    def quick() -> "BenchProfile":
        """Small profile: three datasets, two tree models."""
        return BenchProfile(datasets=("credit", "eyemove", "steel"))

    @staticmethod
    def wide() -> "BenchProfile":
        """All eight Table II datasets with the two boosted models."""
        return BenchProfile(datasets=tuple(dataset_names()))

    @staticmethod
    def full() -> "BenchProfile":
        """The whole Table II matrix with all four tree models."""
        return BenchProfile(
            datasets=tuple(dataset_names()),
            models=("lightgbm", "xgboost", "random_forest", "extra_trees"),
        )

    @staticmethod
    def from_env() -> "BenchProfile":
        """Profile selection: ``REPRO_BENCH_FULL=1`` > ``REPRO_BENCH_WIDE=1`` > quick."""
        if os.environ.get("REPRO_BENCH_FULL", "") == "1":
            return BenchProfile.full()
        if os.environ.get("REPRO_BENCH_WIDE", "") == "1":
            return BenchProfile.wide()
        return BenchProfile.quick()


def build_setting(bundle: LakeBundle, setting: str) -> DatasetRelationGraph:
    """Build the DRG for ``"benchmark"`` or ``"datalake"``."""
    if setting == "benchmark":
        return benchmark_drg(bundle)
    if setting == "datalake":
        return datalake_drg(bundle)
    raise ValueError(f"unknown setting {setting!r}")


def run_method(
    method: str,
    drg: DatasetRelationGraph,
    bundle: LakeBundle,
    model: str,
    profile: BenchProfile,
) -> BaselineResult | None:
    """Run one method; None when infeasible (JoinAll explosion)."""
    base, label = bundle.base_name, bundle.label_column
    seed = profile.seed
    if method == "BASE":
        return run_base(bundle.base_table, label, model, seed=seed)
    if method == "ARDA":
        return run_arda(drg, base, label, model, seed=seed)
    if method == "MAB":
        return run_mab(drg, base, label, model, budget=profile.mab_budget, seed=seed)
    if method == "JoinAll":
        try:
            return run_join_all(drg, base, label, model, seed=seed)
        except JoinError:
            return None
    if method == "JoinAll+F":
        try:
            return run_join_all(drg, base, label, model, with_filter=True, seed=seed)
        except JoinError:
            return None
    if method == "AutoFeat":
        return run_autofeat(drg, base, label, model, config=profile.config, seed=seed)
    raise ValueError(f"unknown method {method!r}")


def compare_methods(
    profile: BenchProfile,
    setting: str,
    methods: tuple[str, ...] | None = None,
) -> list[dict]:
    """Figure 4/6-style comparison: one row per (dataset, method, model).

    In the data-lake setting the JoinAll baselines are skipped outright
    (their ordering count explodes — the paper's figures omit them too);
    other infeasible runs are recorded with ``accuracy=None``.

    Every feasible run must carry a valid run manifest with non-negative
    per-stage timings — rows are refused otherwise — and each row's
    ``stages`` column carries the manifest's stage breakdown.
    """
    methods = methods or profile.methods
    if setting == "datalake":
        methods = tuple(m for m in methods if not m.startswith("JoinAll"))
    rows: list[dict] = []
    for dataset in profile.datasets:
        bundle = build_dataset(dataset)
        drg = build_setting(bundle, setting)
        for model in profile.models:
            for method in methods:
                result = run_method(method, drg, bundle, model, profile)
                if result is None:
                    rows.append(
                        {
                            "dataset": dataset,
                            "setting": setting,
                            "method": method,
                            "model": model,
                            "accuracy": None,
                            "fs_seconds": None,
                            "total_seconds": None,
                            "joined_tables": None,
                            "features": None,
                            "status": "infeasible",
                        }
                    )
                    continue
                report = result.failure_report
                if report is not None and not report.ok:
                    # Figures must come from complete runs: a silently
                    # degraded result (skipped paths) would corrupt the
                    # comparison rather than fail it.
                    raise AssertionError(
                        f"{method} on {dataset!r} ({model}) recorded "
                        f"failures: {report.describe()}"
                    )
                manifest = result.run_manifest
                require_valid_manifest(
                    manifest, context=f"{method} on {dataset!r} ({model})"
                )
                row = result.row()
                row["dataset"] = dataset
                row["setting"] = setting
                row["status"] = "ok"
                row["stages"] = manifest.stage_summary()
                rows.append(row)
    return rows


def average_by_method(rows: list[dict], value: str = "accuracy") -> list[dict]:
    """Aggregate comparison rows into per-method means (feasible runs)."""
    buckets: dict[str, list[float]] = {}
    for row in rows:
        if row.get(value) is None:
            continue
        buckets.setdefault(row["method"], []).append(float(row[value]))
    return [
        {"method": method, f"mean_{value}": sum(vals) / len(vals), "runs": len(vals)}
        for method, vals in buckets.items()
    ]
