"""Shared manifest/summary gates for benchmarks and experiments.

Every published number in this repo — a ``BENCH_*.json`` figure, a
``compare_methods`` row, or a trial in the experiment store — must come
from a *complete* run certified by a valid :class:`repro.obs.RunManifest`
with non-negative per-stage timings.  The checks enforcing that contract
used to be copy-pasted between ``benchmarks/_util.py`` and
``repro.bench.harness``; they live here once, consumed by both and by
:mod:`repro.exp.store`.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..obs import validate_manifest

__all__ = [
    "manifest_problems",
    "require_valid_manifest",
    "failure_reports",
    "assert_no_failures",
    "write_summary",
    "stage_seconds_of",
]


def _as_manifest_dict(manifest) -> dict:
    """Accept a :class:`RunManifest` or an already-serialised dict."""
    if hasattr(manifest, "as_dict"):
        return manifest.as_dict()
    return dict(manifest)


def _iter_tree(node: dict):
    if not node:
        return
    yield node
    for child in node.get("children", ()):
        yield from _iter_tree(child)


def stage_seconds_of(manifest) -> dict[str, float]:
    """Per-stage seconds of a manifest (object or dict form).

    Mirrors :meth:`repro.obs.RunManifest.stage_seconds` but also works on
    the plain-dict manifests the experiment store round-trips from disk.
    """
    if hasattr(manifest, "stage_seconds"):
        return manifest.stage_seconds()
    totals: dict[str, float] = {}
    for node in _iter_tree(_as_manifest_dict(manifest).get("timing", {})):
        name = node.get("name", "?")
        totals[name] = totals.get(name, 0.0) + node.get("duration_ns", 0) / 1e9
    return totals


def manifest_problems(manifest) -> list[str]:
    """Everything wrong with a run manifest (empty list = publishable).

    A missing manifest, schema violations, an empty stage breakdown and
    negative stage timings are each a reason a figure or stored trial
    must be refused: they all mean the observability layer was bypassed
    or mis-assembled.
    """
    if manifest is None:
        return [
            "run carries no run_manifest; figures must record "
            "per-stage timings"
        ]
    data = _as_manifest_dict(manifest)
    errors = validate_manifest(data)
    if errors:
        return [f"invalid run manifest: {'; '.join(errors)}"]
    stages = stage_seconds_of(data)
    if not stages:
        return ["run manifest has no stage timings"]
    negative = {name: s for name, s in stages.items() if s < 0}
    if negative:
        return [f"run manifest has negative stage timings: {negative}"]
    return []


def require_valid_manifest(manifest, context: str = "") -> None:
    """Raise :class:`AssertionError` when :func:`manifest_problems` is non-empty."""
    problems = manifest_problems(manifest)
    if problems:
        prefix = f"{context}: " if context else ""
        raise AssertionError(prefix + "; ".join(problems))


def failure_reports(result) -> list:
    """Every failure report a result carries (its own plus discovery's)."""
    reports = []
    report = getattr(result, "failure_report", None)
    if report is not None:
        reports.append(report)
    discovery = getattr(result, "discovery", None)
    if discovery is not None:
        inner = getattr(discovery, "failure_report", None)
        if inner is not None:
            reports.append(inner)
    return reports


def assert_no_failures(*results) -> None:
    """Fail loudly when a benchmark run degraded instead of completing.

    Under the default ``skip_and_record`` policy a run that hits join
    failures still returns — with paths silently missing from its numbers.
    Benchmark figures must come from complete runs, so every result's
    ``failure_report`` (and, for AutoFeat results, the discovery-phase
    report underneath) must be empty.  Results that carry a
    ``run_manifest`` must additionally carry valid, non-negative per-stage
    timings in it.
    """
    for result in results:
        if result is None:
            continue
        for report in failure_reports(result):
            if not report.ok:
                raise AssertionError(
                    f"benchmark run recorded failures: {report.describe()}"
                )
        if hasattr(result, "run_manifest"):
            require_valid_manifest(result.run_manifest, context="benchmark run")


def write_summary(path: Path, summary: dict, manifests=()) -> None:
    """Write one ``BENCH_*.json`` with the runs' manifests embedded.

    Every manifest is re-validated on the way out, so a summary file with
    missing or negative stage timings can never be produced.
    """
    manifests = [m for m in manifests if m is not None]
    for manifest in manifests:
        require_valid_manifest(manifest, context="benchmark run")
    summary = dict(summary)
    summary["run_manifests"] = [_as_manifest_dict(m) for m in manifests]
    Path(path).write_text(json.dumps(summary, indent=2) + "\n")
