"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates a single paper artefact without going through pytest::

    python -m repro.bench                # list available experiments
    python -m repro.bench table2
    python -m repro.bench fig4 --full --seed 7
    python -m repro.bench eq3 --out benchmarks/results/eq3.txt
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from .experiments import (
    fig3a_relevance_comparison,
    fig3b_redundancy_comparison,
    fig4_benchmark_setting,
    fig5_nontree_benchmark,
    fig6_datalake_setting,
    fig7_nontree_datalake,
    fig8_kappa_sensitivity,
    fig8_tau_sensitivity,
    fig9_ablation,
    headline_summary,
    joinall_explosion,
    matcher_comparison,
    streaming_selector_comparison,
    multigraph_ablation,
    table2_overview,
    traversal_ablation,
)
from .harness import BenchProfile, compare_methods
from .reporting import format_table

EXPERIMENTS = {
    "table2": ("Table II dataset overview", lambda p: table2_overview()),
    "fig3a": ("Figure 3a relevance metrics", lambda p: fig3a_relevance_comparison(seed=p.seed)),
    "fig3b": ("Figure 3b redundancy methods", lambda p: fig3b_redundancy_comparison(seed=p.seed)),
    "fig4": ("Figure 4 benchmark setting", fig4_benchmark_setting),
    "fig5": ("Figure 5 non-tree benchmark", fig5_nontree_benchmark),
    "fig6": ("Figure 6 data-lake setting", fig6_datalake_setting),
    "fig7": ("Figure 7 non-tree data lake", fig7_nontree_datalake),
    "fig8a": ("Figure 8a kappa sensitivity", lambda p: fig8_kappa_sensitivity(seed=p.seed)),
    "fig8b": ("Figure 8b-d tau sensitivity", lambda p: fig8_tau_sensitivity(seed=p.seed)),
    "fig9": ("Figure 9 ablation study", lambda p: fig9_ablation(seed=p.seed)),
    "eq3": ("Equation 3 JoinAll explosion", lambda p: joinall_explosion()),
    "traversal": ("BFS vs DFS ablation", lambda p: traversal_ablation(seed=p.seed)),
    "multigraph": ("multigraph vs simple DRG", lambda p: multigraph_ablation(seed=p.seed)),
    "matchers": ("discovery matcher comparison", lambda p: matcher_comparison(seed=p.seed)),
    "streaming": ("streaming selector comparison", lambda p: streaming_selector_comparison(seed=p.seed)),
}


def _run_headline(profile: BenchProfile) -> list[dict]:
    rows = compare_methods(profile, "benchmark")
    rows += compare_methods(profile, "datalake")
    return headline_summary(rows)


EXPERIMENTS["headline"] = ("Section VII headline summary", _run_headline)


def _list_experiments() -> str:
    rows = [
        {"id": key, "artefact": meta[0]} for key, meta in sorted(EXPERIMENTS.items())
    ]
    return format_table(rows, title="available experiments")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate one paper table/figure from the AutoFeat reproduction.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        choices=sorted(EXPERIMENTS) + ["list"],
        help="experiment id (omit or 'list' to enumerate)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full Table II matrix instead of the quick profile",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="determinism seed for the run (default: the profile's, 1)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the rendered table to this file",
    )
    args = parser.parse_args(argv)

    if args.experiment in (None, "list"):
        print(_list_experiments())
        return 0

    profile = BenchProfile.full() if args.full else BenchProfile.quick()
    if args.seed is not None:
        profile = replace(profile, seed=args.seed)
    title, runner = EXPERIMENTS[args.experiment]
    rows = runner(profile)
    text = format_table(rows, title=title)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    try:
        print(text)
        if args.out is not None:
            print(f"table -> {args.out}")
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error for a CLI.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
