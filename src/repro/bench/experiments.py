"""One function per paper table/figure (the per-experiment index of DESIGN.md).

Each function returns plain dict rows ready for
:func:`repro.bench.reporting.format_table`; the ``benchmarks/`` pytest
files are thin wrappers that time these functions and print their output.
"""

from __future__ import annotations

import time

import numpy as np

from ..core import AutoFeat, AutoFeatConfig
from ..datasets import DATASETS, LakeBundle, build_dataset
from ..graph import join_all_path_count
from ..ml import TabularEncoder, evaluate_accuracy
from ..selection import greedy_select, relevance_scores
from ..dataframe import Table
from .harness import BenchProfile, build_setting, compare_methods

__all__ = [
    "table2_overview",
    "fig3a_relevance_comparison",
    "fig3b_redundancy_comparison",
    "fig4_benchmark_setting",
    "fig5_nontree_benchmark",
    "fig6_datalake_setting",
    "fig7_nontree_datalake",
    "fig8_kappa_sensitivity",
    "fig8_tau_sensitivity",
    "fig9_ablation",
    "joinall_explosion",
    "headline_summary",
    "traversal_ablation",
    "multigraph_ablation",
    "matcher_comparison",
    "streaming_selector_comparison",
]

RELEVANCE_MENU = (
    "information_gain",
    "symmetrical_uncertainty",
    "pearson",
    "spearman",
    "relief",
)
REDUNDANCY_MENU = ("mifs", "mrmr", "cife", "jmi", "cmim")
ABLATION_MENU = (
    "spearman-mrmr",
    "spearman-jmi",
    "pearson-mrmr",
    "pearson-jmi",
    "spearman-only",
    "mrmr-only",
)


# -- Table II -------------------------------------------------------------------


def table2_overview() -> list[dict]:
    """Dataset overview: paper shape vs the generated synthetic twin."""
    rows = []
    for name, spec in DATASETS.items():
        bundle = build_dataset(name)
        rows.append(
            {
                "dataset": name,
                "paper_rows": spec.paper_rows,
                "rows": bundle.base_table.n_rows,
                "paper_joinable": spec.paper_joinable_tables,
                "joinable": bundle.n_tables - 1,
                "paper_features": spec.paper_features,
                "features": bundle.total_features,
                "paper_best_acc": spec.paper_best_accuracy,
            }
        )
    return rows


# -- Figure 3: feature-selection metric menus -----------------------------------


def _flat_as_table(name: str) -> tuple[Table, str]:
    flat = DATASETS[name].flat()
    columns = dict(flat.features)
    columns["label"] = flat.label
    return Table(columns, name=name), "label"


def fig3a_relevance_comparison(
    datasets: tuple[str, ...] = ("credit", "eyemove", "steel", "jannis", "miniboone", "school"),
    kappa: int = 15,
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """Relevance metrics: aggregated accuracy and selection runtime.

    Protocol of Section V-B: score all features against the label, keep the
    top-κ, train the model, report accuracy and the scoring time.
    """
    totals: dict[str, dict[str, list[float]]] = {
        m: {"acc": [], "secs": []} for m in RELEVANCE_MENU
    }
    for name in datasets:
        table, label_col = _flat_as_table(name)
        features = [c for c in table.column_names if c != label_col]
        X = table.numeric_matrix(features)
        y = table.column(label_col).to_float()
        for metric in RELEVANCE_MENU:
            started = time.perf_counter()
            scores = relevance_scores(X, y, metric=metric, seed=seed)
            elapsed = time.perf_counter() - started
            order = np.argsort(-scores, kind="stable")[:kappa]
            kept = [features[j] for j in order]
            acc = evaluate_accuracy(table, label_col, model, kept, seed=seed)
            totals[metric]["acc"].append(acc)
            totals[metric]["secs"].append(elapsed)
    return [
        {
            "metric": metric,
            "mean_accuracy": float(np.mean(v["acc"])),
            "mean_selection_seconds": float(np.mean(v["secs"])),
        }
        for metric, v in totals.items()
    ]


def fig3b_redundancy_comparison(
    datasets: tuple[str, ...] = ("credit", "eyemove", "steel"),
    kappa: int = 10,
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """Redundancy methods: greedy-forward selection accuracy and runtime."""
    totals: dict[str, dict[str, list[float]]] = {
        m: {"acc": [], "secs": []} for m in REDUNDANCY_MENU
    }
    for name in datasets:
        table, label_col = _flat_as_table(name)
        features = [c for c in table.column_names if c != label_col]
        X = table.numeric_matrix(features)
        y = table.column(label_col).to_float()
        for method in REDUNDANCY_MENU:
            started = time.perf_counter()
            picked = greedy_select(X, y, k=kappa, method=method)
            elapsed = time.perf_counter() - started
            kept = [features[j] for j in picked] or features[:1]
            acc = evaluate_accuracy(table, label_col, model, kept, seed=seed)
            totals[method]["acc"].append(acc)
            totals[method]["secs"].append(elapsed)
    return [
        {
            "method": method,
            "mean_accuracy": float(np.mean(v["acc"])),
            "mean_selection_seconds": float(np.mean(v["secs"])),
        }
        for method, v in totals.items()
    ]


# -- Figures 4-7: the main comparisons -------------------------------------------


def fig4_benchmark_setting(profile: BenchProfile | None = None) -> list[dict]:
    """Benchmark setting, tree models: runtime split + accuracy per method."""
    return compare_methods(profile or BenchProfile.from_env(), "benchmark")


def fig5_nontree_benchmark(profile: BenchProfile | None = None) -> list[dict]:
    """Benchmark setting with KNN and logistic-L1."""
    profile = profile or BenchProfile.from_env()
    profile = BenchProfile(
        datasets=profile.datasets,
        models=("knn", "linear_l1"),
        methods=profile.methods,
        mab_budget=profile.mab_budget,
        seed=profile.seed,
        config=profile.config,
    )
    return compare_methods(profile, "benchmark")


def fig6_datalake_setting(profile: BenchProfile | None = None) -> list[dict]:
    """Data-lake setting (COMA edges at 0.55), tree models."""
    return compare_methods(profile or BenchProfile.from_env(), "datalake")


def fig7_nontree_datalake(profile: BenchProfile | None = None) -> list[dict]:
    """Data-lake setting with KNN and logistic-L1."""
    profile = profile or BenchProfile.from_env()
    profile = BenchProfile(
        datasets=profile.datasets,
        models=("knn", "linear_l1"),
        methods=profile.methods,
        mab_budget=profile.mab_budget,
        seed=profile.seed,
        config=profile.config,
    )
    return compare_methods(profile, "datalake")


# -- Figure 8: sensitivity ---------------------------------------------------------


def _autofeat_point(
    bundle: LakeBundle, config: AutoFeatConfig, model: str = "lightgbm"
) -> tuple[float, float]:
    drg = build_setting(bundle, "benchmark")
    result = AutoFeat(drg, config).augment(
        bundle.base_name, bundle.label_column, model
    )
    return result.accuracy, result.discovery.feature_selection_seconds


def fig8_kappa_sensitivity(
    datasets: tuple[str, ...] = ("credit", "steel"),
    kappas: tuple[int, ...] = (2, 4, 6, 8, 10, 15, 20),
    seed: int = 1,
) -> list[dict]:
    """Accuracy and selection time as κ sweeps (Figure 8a)."""
    rows = []
    bundles = {name: build_dataset(name) for name in datasets}
    for kappa in kappas:
        accs, secs = [], []
        for bundle in bundles.values():
            acc, sec = _autofeat_point(
                bundle, AutoFeatConfig(kappa=kappa, seed=seed)
            )
            accs.append(acc)
            secs.append(sec)
        rows.append(
            {
                "kappa": kappa,
                "mean_accuracy": float(np.mean(accs)),
                "mean_fs_seconds": float(np.mean(secs)),
            }
        )
    return rows


def fig8_tau_sensitivity(
    datasets: tuple[str, ...] = ("credit", "steel", "school"),
    taus: tuple[float, ...] = (0.05, 0.2, 0.4, 0.6, 0.65, 0.8, 0.9, 1.0),
    seed: int = 1,
) -> list[dict]:
    """Accuracy and selection time as τ sweeps, per dataset (Figure 8b-d)."""
    rows = []
    bundles = {name: build_dataset(name) for name in datasets}
    for tau in taus:
        for name, bundle in bundles.items():
            acc, sec = _autofeat_point(bundle, AutoFeatConfig(tau=tau, seed=seed))
            rows.append(
                {
                    "tau": tau,
                    "dataset": name,
                    "accuracy": acc,
                    "fs_seconds": sec,
                }
            )
    return rows


# -- Figure 9: ablation ---------------------------------------------------------------


def fig9_ablation(
    datasets: tuple[str, ...] = ("credit", "eyemove", "steel"),
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """AutoFeat variants: {Spearman,Pearson} x {MRMR,JMI} plus single-stage."""
    rows = []
    for name in datasets:
        bundle = build_dataset(name)
        drg = build_setting(bundle, "benchmark")
        for ablation in ABLATION_MENU:
            config = AutoFeatConfig.ablation(ablation, seed=seed)
            result = AutoFeat(drg, config).augment(
                bundle.base_name, bundle.label_column, model
            )
            rows.append(
                {
                    "dataset": name,
                    "variant": ablation,
                    "accuracy": result.accuracy,
                    "fs_seconds": result.discovery.feature_selection_seconds,
                    "total_seconds": result.total_seconds,
                }
            )
    return rows


# -- Equation 3 and the headline summary ---------------------------------------------


def joinall_explosion(
    datasets: tuple[str, ...] = ("credit", "eyemove", "steel", "school"),
) -> list[dict]:
    """Number of JoinAll orderings (Eq. 3) per dataset and setting."""
    rows = []
    for name in datasets:
        bundle = build_dataset(name)
        for setting in ("benchmark", "datalake"):
            drg = build_setting(bundle, setting)
            count = join_all_path_count(drg.graph, bundle.base_name)
            rows.append(
                {
                    "dataset": name,
                    "setting": setting,
                    "joinall_orderings": count,
                    "edges": drg.n_relationships,
                }
            )
    return rows


def headline_summary(rows: list[dict]) -> list[dict]:
    """Aggregate comparison rows into the paper's headline claims.

    Produces per-method mean accuracy, mean feature-selection time and the
    speedup of AutoFeat's selection relative to each model-in-the-loop
    method — the "5x-44x faster, +16% accuracy" shape.
    """
    buckets: dict[str, dict[str, list[float]]] = {}
    for row in rows:
        if row.get("accuracy") is None:
            continue
        bucket = buckets.setdefault(row["method"], {"acc": [], "fs": []})
        bucket["acc"].append(float(row["accuracy"]))
        bucket["fs"].append(float(row["fs_seconds"]))
    autofeat_fs = np.mean(buckets["AutoFeat"]["fs"]) if "AutoFeat" in buckets else None
    autofeat_acc = (
        np.mean(buckets["AutoFeat"]["acc"]) if "AutoFeat" in buckets else None
    )
    out = []
    for method, bucket in buckets.items():
        mean_fs = float(np.mean(bucket["fs"]))
        mean_acc = float(np.mean(bucket["acc"]))
        row = {
            "method": method,
            "mean_accuracy": mean_acc,
            "mean_fs_seconds": mean_fs,
        }
        if autofeat_fs and autofeat_fs > 0:
            row["autofeat_speedup"] = mean_fs / autofeat_fs
        if autofeat_acc is not None:
            row["autofeat_acc_delta"] = autofeat_acc - mean_acc
        out.append(row)
    return out


# -- Extra ablations called out in DESIGN.md -------------------------------------------


def streaming_selector_comparison(
    datasets: tuple[str, ...] = ("credit", "eyemove"),
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """Batch two-stage pipeline vs fully-online selectors (future work).

    Streams every feature of each flat dataset (weakest first, mimicking
    the shallow-to-deep arrival order of join batches) through AutoFeat's
    Spearman+MRMR pipeline, alpha-investing, and fast-OSFS, then trains the
    model on each selector's accepted set.
    """
    from ..core import AutoFeatConfig, StreamingFeatureSelector
    from ..selection import AlphaInvestingSelector, FastOSFSSelector

    rows = []
    for name in datasets:
        flat = DATASETS[name].flat()
        table, label_col = _flat_as_table(name)
        y = table.column(label_col).to_float()
        arrival = list(flat.relevance_order)  # weakest first

        def run_two_stage():
            selector = StreamingFeatureSelector(AutoFeatConfig(seed=seed), y)
            for feature in arrival:
                selector.process_batch(
                    [feature], flat.features[feature].reshape(-1, 1)
                )
            return selector.selected_names

        def run_online(selector):
            selector.start(y)
            for feature in arrival:
                selector.offer(feature, flat.features[feature])
            return selector.selected_names

        strategies = {
            "two-stage (AutoFeat)": run_two_stage,
            "alpha-investing": lambda: run_online(AlphaInvestingSelector()),
            "fast-osfs": lambda: run_online(FastOSFSSelector()),
        }
        for strategy, runner in strategies.items():
            started = time.perf_counter()
            selected = runner()
            elapsed = time.perf_counter() - started
            kept = selected or arrival[:1]
            acc = evaluate_accuracy(table, label_col, model, kept, seed=seed)
            rows.append(
                {
                    "dataset": name,
                    "strategy": strategy,
                    "n_selected": len(selected),
                    "accuracy": acc,
                    "selection_seconds": elapsed,
                }
            )
    return rows


def matcher_comparison(
    datasets: tuple[str, ...] = ("credit", "eyemove"),
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """Swap the discovery algorithm under the DRG (paper: "DRG construction
    is independent of the dataset discovery algorithm").

    Compares COMA (composite), Lazo (MinHash-LSH containment) and the
    distribution matcher as lake builders: edge precision/recall against
    the known constraints, plus AutoFeat's downstream accuracy on each.
    """
    from ..datasets import build_dataset as _build
    from ..datasets.lake import rename_for_lake
    from ..discovery import ComaMatcher, DistributionMatcher, LazoMatcher
    from ..graph import DatasetRelationGraph

    matchers = {
        "coma": lambda: ComaMatcher(),
        "lazo": lambda: LazoMatcher(),
        "distribution": lambda: DistributionMatcher(),
    }
    rows = []
    for name in datasets:
        bundle = _build(name)
        tables = rename_for_lake(bundle)
        truth_pairs = {
            frozenset((c.table_a, c.table_b)) for c in bundle.constraints
        }
        for matcher_name, factory in matchers.items():
            drg = DatasetRelationGraph.from_discovery(
                tables, factory(), threshold=0.55
            )
            found_pairs = {
                frozenset((e.node_a, e.node_b)) for e in drg.graph.all_edges()
            }
            hits = len(found_pairs & truth_pairs)
            precision = hits / len(found_pairs) if found_pairs else 0.0
            recall = hits / len(truth_pairs) if truth_pairs else 0.0
            result = AutoFeat(drg, AutoFeatConfig(seed=seed)).augment(
                bundle.base_name, bundle.label_column, model
            )
            rows.append(
                {
                    "dataset": name,
                    "matcher": matcher_name,
                    "edges": drg.n_relationships,
                    "pair_precision": round(precision, 4),
                    "pair_recall": round(recall, 4),
                    "accuracy": result.accuracy,
                    "fs_seconds": result.discovery.feature_selection_seconds,
                }
            )
    return rows


def traversal_ablation(
    datasets: tuple[str, ...] = ("credit", "steel"),
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """BFS vs DFS traversal of the DRG (Section IV-A's design argument)."""
    rows = []
    for name in datasets:
        bundle = build_dataset(name)
        drg = build_setting(bundle, "benchmark")
        for traversal in ("bfs", "dfs"):
            config = AutoFeatConfig(traversal=traversal, seed=seed)
            result = AutoFeat(drg, config).augment(
                bundle.base_name, bundle.label_column, model
            )
            rows.append(
                {
                    "dataset": name,
                    "traversal": traversal,
                    "accuracy": result.accuracy,
                    "fs_seconds": result.discovery.feature_selection_seconds,
                }
            )
    return rows


def multigraph_ablation(
    datasets: tuple[str, ...] = ("credit", "eyemove"),
    model: str = "lightgbm",
    seed: int = 1,
) -> list[dict]:
    """Multigraph DRG vs collapsed simple graph (Table I's distinction)."""
    rows = []
    for name in datasets:
        bundle = build_dataset(name)
        drg = build_setting(bundle, "datalake")
        for variant, graph in (("multigraph", drg), ("simple", drg.with_simple_graph())):
            result = AutoFeat(graph, AutoFeatConfig(seed=seed)).augment(
                bundle.base_name, bundle.label_column, model
            )
            rows.append(
                {
                    "dataset": name,
                    "drg": variant,
                    "edges": graph.n_relationships,
                    "accuracy": result.accuracy,
                    "fs_seconds": result.discovery.feature_selection_seconds,
                }
            )
    return rows
