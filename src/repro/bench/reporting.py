"""Plain-text table/series rendering for the benchmark harness.

Every experiment prints the same rows/series the paper's figures plot, as
aligned ASCII tables — the reproduction artefact EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "print_table", "format_series", "summarise"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table.

    Rows need not be homogeneous: with ``columns=None`` the header is the
    union of every row's keys in first-seen order, missing cells render
    empty, and non-numeric cells are stringified.  An empty row list with
    explicit ``columns`` still renders the header (plus ``(no rows)``).
    """
    if not rows and columns is None:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = [str(c) for c in columns]
    body = [[_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max([len(header[i])] + [len(r[i]) for r in body])
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if not rows:
        lines.append("(no rows)")
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns, title))


def format_series(
    x_label: str,
    xs: Sequence[Any],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render parallel series (figure curves) as one table."""
    rows = []
    for i, x in enumerate(xs):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title)


def summarise(values: Sequence[float]) -> dict[str, float]:
    """Mean / min / max of a numeric sequence (empty-safe)."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
