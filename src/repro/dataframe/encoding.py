"""Dictionary encoding of join-key columns.

The join kernels in :mod:`repro.dataframe.join` historically hashed raw
Python scalars row by row: every build and every probe paid per-value
boxing (``ndarray`` element → Python object → normalise → hash).  A
:class:`KeyDictionary` interns a key column's values **once** into dense
``int32`` codes so that both halves of a hash join become vectorised
integer kernels:

* **build** — group rows by code (one stable argsort), pick the
  seed-deterministic dedup representative per *distinct* key instead of
  per row, and lay the survivors out in a dense ``code → row`` table;
* **probe** — encode the probe column against the build side's dictionary
  (``searchsorted`` over the sorted key universe) and gather through the
  code table.

Null handling uses a sentinel: masked entries encode to :data:`CODE_NULL`
(-1) and therefore never match, exactly like the scalar path's
``value is None`` checks.

Key normalisation — the rule that makes ``1``, ``1.0`` and ``np.int64(1)``
join-equal while ``"1"`` stays distinct — is centralised here in
:func:`normalize_key` (formerly the private ``_key_of`` inside
``join.py``); the scalar join path now delegates to it, so the two
implementations cannot drift.

Cross-table alignment: the two sides of a DRG edge may store their keys in
different dtypes (INT child key probing a FLOAT parent key and so on).
:meth:`KeyDictionary.encode_column` resolves this with a dtype lattice:
same-space probes run fully vectorised, numeric cross-space probes bridge
through exact float64/int64 casts (with a scalar fallback beyond the
2**53 exact-integer range), and string/numeric pairs — which can never
match under :func:`normalize_key` — short-circuit to all-unmatched.

Determinism contract: encoding is a pure function of the column's values
and mask.  The code assigned to a key is its rank in the sorted key
universe, the dedup representative is chosen by the same per-key CRC-seeded
RNG as the scalar path, and the scalar path remains available as the
parity reference (``use_dict_keys=False``) — the hypothesis suite in
``tests/engine/test_encoded_parity.py`` holds the two bit-identical.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .column import Column, DType

__all__ = ["CODE_NULL", "KeyDictionary", "normalize_key"]

#: Sentinel code for null (and, on probe encodings, unmatched) entries.
CODE_NULL = -1

#: Largest magnitude at which every integer is exactly representable as a
#: float64 — the bound for the vectorised int/float cross-space bridge.
_EXACT_FLOAT_INT = 2**53


def normalize_key(value: Any) -> Any:
    """Normalise a join-key value so that 1, 1.0 and np.int64(1) compare equal.

    numpy scalars (``np.int64``, ``np.float64``, ``np.bool_``, ``np.str_``)
    are unwrapped to the corresponding Python scalar first: they hash like
    their Python twins but ``repr`` differently, which would destabilise
    the dedup-representative digest across storage dtypes.  Integral floats
    collapse onto the integer (``1.0 → 1``); booleans are preserved as
    booleans (``True`` digests as ``'True'``, never ``'1'``); strings are
    never coerced, so ``"1"`` remains distinct from ``1``.
    """
    if value is None:
        return None
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _match_space(dtype: DType) -> str:
    """The matching space a dtype's keys live in (bools join as ints)."""
    if dtype is DType.STRING:
        return "str"
    if dtype is DType.FLOAT:
        return "float"
    return "int"


def _space_values(column: Column) -> np.ndarray:
    """A column's backing values cast into its matching space."""
    if column.dtype is DType.BOOL:
        return column.values.astype(np.int64)
    return column.values


class KeyDictionary:
    """Interned key universe of one column: sorted values + dense codes.

    Codes are ranks in the sorted distinct-key universe (``int32``), so
    ``codes[i] < codes[j]`` iff key *i* sorts before key *j*; nulls carry
    :data:`CODE_NULL`.  Instances are immutable and safe to share across
    threads (the lazily built scalar lookup is a benign idempotent race).

    Build via :meth:`from_column`, which returns ``None`` for the rare
    column shape the vectorised kernels cannot represent faithfully
    (a FLOAT column with *unmasked* NaN values: the scalar path gives each
    such row its own never-matching group, which has no dense-code
    analogue) — callers fall back to the scalar join path in that case.
    """

    __slots__ = ("codes", "_values", "_space", "_dtype", "_lookup")

    def __init__(
        self,
        codes: np.ndarray,
        values: np.ndarray,
        space: str,
        dtype: DType,
    ):
        #: Per-source-row int32 codes; CODE_NULL at masked entries.
        self.codes = codes
        self._values = values
        self._space = space
        self._dtype = dtype
        self._lookup: dict[Any, int] | None = None

    @classmethod
    def from_column(cls, column: Column) -> "KeyDictionary | None":
        """Intern ``column``'s non-null values into dense sorted codes.

        Returns ``None`` when the column cannot be dictionary-encoded
        without changing join semantics (unmasked NaN keys — see the class
        docstring); every other shape, including empty columns, encodes.
        """
        mask = column.mask
        values = _space_values(column)
        if column.dtype is DType.FLOAT and len(values):
            if bool(np.isnan(values[~mask]).any()):
                return None
        valid = ~mask
        present = values[valid]
        uniques, inverse = np.unique(present, return_inverse=True)
        codes = np.full(len(values), CODE_NULL, dtype=np.int32)
        codes[valid] = inverse.astype(np.int32)
        return cls(codes, uniques, _match_space(column.dtype), column.dtype)

    # -- introspection -------------------------------------------------------

    @property
    def n_keys(self) -> int:
        """Number of distinct non-null keys."""
        return len(self._values)

    @property
    def nbytes(self) -> int:
        """Rough resident size of the dictionary (codes + key universe)."""
        values_bytes = self._values.nbytes
        if self._values.dtype.kind == "O":
            values_bytes += sum(
                len(v) if isinstance(v, str) else 8 for v in self._values
            )
        return int(self.codes.nbytes + values_bytes)

    def key(self, code: int) -> Any:
        """The normalised Python key a code stands for.

        This is the value whose ``repr`` feeds the dedup-representative
        digest, so it must match what :func:`normalize_key` produces for
        the original column value: booleans stay booleans, integral floats
        collapse to ints, strings stay strings.
        """
        value = self._values[code]
        if self._dtype is DType.BOOL:
            return bool(value)
        return normalize_key(value.item() if isinstance(value, np.generic) else value)

    def keys(self) -> list[Any]:
        """All normalised keys in code order."""
        return [self.key(code) for code in range(self.n_keys)]

    def scalar_lookup(self) -> dict[Any, int]:
        """Lazy ``{normalised key: code}`` map for scalar/cross-space probes."""
        lookup = self._lookup
        if lookup is None:
            lookup = {self.key(code): code for code in range(self.n_keys)}
            self._lookup = lookup
        return lookup

    # -- alignment -----------------------------------------------------------

    def encode_column(self, column: Column) -> np.ndarray:
        """Encode another column's values into **this** dictionary's codes.

        The cross-table alignment step: the probe side of an edge joins on
        the build side's integer codes.  Nulls and values outside the key
        universe (including any NaN) encode to :data:`CODE_NULL`.
        """
        probe_space = _match_space(column.dtype)
        if probe_space == self._space:
            return self._encode_same_space(_space_values(column), column.mask)
        if "str" in (probe_space, self._space):
            # String keys can never equal numeric keys under
            # normalize_key, so every probe value is unmatched.
            return np.full(len(column), CODE_NULL, dtype=np.int32)
        return self._encode_cross_numeric(column, probe_space)

    def _encode_same_space(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        codes = np.full(len(values), CODE_NULL, dtype=np.int32)
        if self.n_keys == 0:
            return codes
        valid = ~mask
        present = values[valid]
        if len(present) == 0:
            return codes
        pos = np.searchsorted(self._values, present)
        pos = np.minimum(pos, self.n_keys - 1)
        matched = self._values[pos] == present
        codes[valid] = np.where(matched, pos, CODE_NULL).astype(np.int32)
        return codes

    def _encode_cross_numeric(self, column: Column, probe_space: str) -> np.ndarray:
        """Bridge an int-space probe onto a float-space dictionary or back.

        Values within the exact float64 integer range cast losslessly and
        run through the vectorised same-space kernel; the (pathological)
        remainder falls back to per-value normalised lookup so huge
        integers still match exactly.
        """
        values = _space_values(column)
        mask = column.mask
        codes = np.full(len(values), CODE_NULL, dtype=np.int32)
        valid = ~mask
        if probe_space == "int":
            # int64 probe → float64 dictionary.
            exact = valid & (np.abs(values) <= _EXACT_FLOAT_INT)
            bridged = self._encode_same_space(
                values.astype(np.float64), ~(exact)
            )
            codes[exact] = bridged[exact]
            overflow = valid & ~exact
        else:
            # float64 probe → int64 dictionary: only integral floats in
            # the exact range can match an integer key.
            finite = valid & np.isfinite(values)
            integral = np.zeros(len(values), dtype=bool)
            integral[finite] = values[finite] == np.floor(values[finite])
            exact = integral & (np.abs(np.where(integral, values, 0.0)) <= _EXACT_FLOAT_INT)
            bridged_values = np.where(exact, values, 0.0).astype(np.int64)
            bridged = self._encode_same_space(bridged_values, ~exact)
            codes[exact] = bridged[exact]
            overflow = integral & ~exact
        if overflow.any():
            lookup = self.scalar_lookup()
            for i in np.flatnonzero(overflow):
                codes[i] = lookup.get(normalize_key(column[int(i)]), CODE_NULL)
        return codes
