"""Data-quality profiling (paper Section IV-C's quality dimension).

AutoFeat prunes joins on *completeness*; this module generalises that into
the small data-quality vocabulary the cited literature (Schelter et al.,
"Automating large-scale data quality verification") checks first:
completeness, uniqueness, constancy, and type consistency — per column and
per table, plus declared-constraint verification for lakes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchemaError
from .column import Column
from .groupby import uniqueness
from .table import Table

__all__ = [
    "ColumnQuality",
    "TableQuality",
    "column_quality",
    "quality_report",
    "verify_key_constraint",
]


@dataclass(frozen=True)
class ColumnQuality:
    """Quality statistics for one column."""

    name: str
    completeness: float
    uniqueness: float
    constancy: float
    n_distinct: int

    @property
    def is_constant(self) -> bool:
        """A column whose present values are all identical."""
        return self.n_distinct <= 1

    @property
    def is_key_quality(self) -> bool:
        """Complete and unique enough to serve as a join key."""
        return self.completeness >= 0.99 and self.uniqueness >= 0.99


@dataclass(frozen=True)
class TableQuality:
    """Quality statistics for a whole table."""

    table_name: str
    n_rows: int
    columns: tuple[ColumnQuality, ...]

    @property
    def completeness(self) -> float:
        """Mean column completeness (1 - overall null ratio)."""
        if not self.columns:
            return 1.0
        return sum(c.completeness for c in self.columns) / len(self.columns)

    @property
    def constant_columns(self) -> tuple[str, ...]:
        """Columns that carry no information at all."""
        return tuple(c.name for c in self.columns if c.is_constant)

    @property
    def key_candidates(self) -> tuple[str, ...]:
        """Columns of key quality."""
        return tuple(c.name for c in self.columns if c.is_key_quality)

    def column(self, name: str) -> ColumnQuality:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"no quality record for column {name!r}")

    def rows(self) -> list[dict]:
        """Report rows for :func:`repro.bench.reporting.format_table`."""
        return [
            {
                "column": c.name,
                "completeness": round(c.completeness, 4),
                "uniqueness": round(c.uniqueness, 4),
                "constancy": round(c.constancy, 4),
                "distinct": c.n_distinct,
            }
            for c in self.columns
        ]


def column_quality(column: Column, name: str) -> ColumnQuality:
    """Quality statistics for one column."""
    counts = column.value_counts()
    n_present = len(column) - column.null_count()
    constancy = (max(counts.values()) / n_present) if counts and n_present else 0.0
    return ColumnQuality(
        name=name,
        completeness=1.0 - column.null_ratio(),
        uniqueness=uniqueness(column),
        constancy=constancy,
        n_distinct=len(counts),
    )


def quality_report(table: Table) -> TableQuality:
    """Quality statistics for every column of ``table``."""
    return TableQuality(
        table_name=table.name,
        n_rows=table.n_rows,
        columns=tuple(
            column_quality(table.column(name), name) for name in table.column_names
        ),
    )


def verify_key_constraint(
    parent: Table,
    parent_column: str,
    child: Table,
    child_column: str,
) -> dict:
    """Check a declared KFK edge against the data.

    Returns a report dict: whether the child key is unique, what fraction
    of parent values resolve in the child (referential coverage), and the
    dangling count.  A lake builder can run this over every declared
    constraint before trusting it.
    """
    child_values = {
        v for v in child.column(child_column) if v is not None
    }
    child_unique = uniqueness(child.column(child_column)) >= 0.999999
    parent_cells = [v for v in parent.column(parent_column) if v is not None]
    resolved = sum(1 for v in parent_cells if v in child_values)
    coverage = resolved / len(parent_cells) if parent_cells else 0.0
    return {
        "parent": f"{parent.name}.{parent_column}",
        "child": f"{child.name}.{child_column}",
        "child_key_unique": child_unique,
        "coverage": round(coverage, 6),
        "dangling": len(parent_cells) - resolved,
    }
