"""In-memory columnar table engine (the relational substrate).

Pandas is deliberately not a dependency; this package implements exactly the
relational-algebra surface AutoFeat relies on — typed null-aware columns,
immutable tables, left joins with cardinality control, group-by, stratified
sampling, imputation and CSV I/O.
"""

from .column import Column, DType
from .encoding import CODE_NULL, KeyDictionary, normalize_key
from .expressions import Expression, col, where
from .groupby import aggregate, distinct_count, group_indices, group_sizes, uniqueness
from .impute import (
    impute_constant,
    impute_mean,
    impute_median,
    impute_most_frequent,
    impute_table,
)
from .io import from_csv_text, read_csv, to_csv_text, write_csv
from .join import JoinIndex, dedup_by_key, inner_join, join_key_null_ratio, left_join
from .quality import (
    ColumnQuality,
    TableQuality,
    column_quality,
    quality_report,
    verify_key_constraint,
)
from .sampling import random_sample, stratified_sample, train_test_split_indices
from .schema import ColumnSchema, TableSchema, infer_role, schema_of
from .table import Table

__all__ = [
    "Column",
    "DType",
    "Table",
    "Expression",
    "col",
    "where",
    "JoinIndex",
    "KeyDictionary",
    "CODE_NULL",
    "normalize_key",
    "left_join",
    "inner_join",
    "dedup_by_key",
    "join_key_null_ratio",
    "group_indices",
    "group_sizes",
    "aggregate",
    "distinct_count",
    "uniqueness",
    "random_sample",
    "stratified_sample",
    "train_test_split_indices",
    "impute_most_frequent",
    "impute_mean",
    "impute_median",
    "impute_constant",
    "impute_table",
    "read_csv",
    "write_csv",
    "from_csv_text",
    "to_csv_text",
    "ColumnSchema",
    "TableSchema",
    "infer_role",
    "schema_of",
    "ColumnQuality",
    "TableQuality",
    "column_quality",
    "quality_report",
    "verify_key_constraint",
]
