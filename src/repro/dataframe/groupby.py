"""Grouping and aggregation over tables.

Only the small aggregate vocabulary the library needs: group sizes, per-group
means and first rows.  The join de-duplication logic lives in
:mod:`repro.dataframe.join`; this module serves profiling (value histograms
for the discovery matchers) and the dataset generators.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import SchemaError
from .column import Column, DType
from .table import Table

__all__ = ["group_indices", "group_sizes", "aggregate"]

_NUMERIC_AGGREGATES: dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "sum": lambda a: float(np.sum(a)),
    "min": lambda a: float(np.min(a)),
    "max": lambda a: float(np.max(a)),
    "std": lambda a: float(np.std(a)),
}


def group_indices(table: Table, key_column: str) -> dict[Any, np.ndarray]:
    """Map each distinct non-null key value to its row positions."""
    groups: dict[Any, list[int]] = {}
    for i, value in enumerate(table.column(key_column)):
        if value is None:
            continue
        groups.setdefault(value, []).append(i)
    return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}


def group_sizes(table: Table, key_column: str) -> dict[Any, int]:
    """Number of rows per distinct non-null key value."""
    return {k: len(v) for k, v in group_indices(table, key_column).items()}


def aggregate(
    table: Table,
    key_column: str,
    aggregations: dict[str, str],
) -> Table:
    """Group by ``key_column`` and aggregate the named columns.

    ``aggregations`` maps column name to one of ``mean``/``sum``/``min``/
    ``max``/``std``/``count``/``first``.  The result has one row per group,
    keyed by a column named after ``key_column``, with groups in sorted key
    order for determinism.
    """
    groups = group_indices(table, key_column)
    keys = sorted(groups.keys(), key=lambda k: (str(type(k)), str(k)))
    out: dict[str, list[Any]] = {key_column: list(keys)}
    for col_name, how in aggregations.items():
        source = table.column(col_name)
        results: list[Any] = []
        for key in keys:
            idx = groups[key]
            if how == "count":
                results.append(int(len(idx)))
                continue
            if how == "first":
                results.append(source[int(idx[0])])
                continue
            if how not in _NUMERIC_AGGREGATES:
                raise SchemaError(f"unknown aggregate {how!r} for column {col_name!r}")
            values = source.to_float()[idx]
            values = values[~np.isnan(values)]
            results.append(_NUMERIC_AGGREGATES[how](values) if len(values) else None)
        out_name = col_name if col_name != key_column else f"{col_name}_{how}"
        out[out_name] = results
    columns: dict[str, Column] = {}
    for name, values in out.items():
        if name == key_column:
            columns[name] = Column(values, dtype=table.column(key_column).dtype)
        else:
            columns[name] = Column(values)
    return Table(columns, name=table.name)


def distinct_count(column: Column) -> int:
    """Number of distinct non-null values in a column."""
    return len(column.unique())


def uniqueness(column: Column) -> float:
    """Distinct non-null values over non-null count (key-ness score).

    1.0 means the column is a candidate primary key; values near 0 indicate
    a heavily repeated (categorical/foreign-key-like) column.
    """
    n = len(column) - column.null_count()
    if n == 0:
        return 0.0
    return distinct_count(column) / n
