"""Null imputation strategies.

The paper handles missing values "by imputation with the most common value
corresponding to the feature" (Section V-B) and discusses mean/median/mode
imputation as alternatives to deletion (Section IV-C).  All strategies here
return new tables; the originals are untouched.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from .column import Column, DType
from .table import Table

__all__ = [
    "impute_most_frequent",
    "impute_mean",
    "impute_median",
    "impute_constant",
    "impute_table",
]


def impute_most_frequent(column: Column) -> Column:
    """Replace nulls with the column's mode.

    An entirely-null column is returned unchanged (there is nothing to
    learn a fill value from); callers that cannot tolerate residual nulls
    should follow up with :func:`impute_constant`.
    """
    if not column.has_nulls():
        return column
    fill = column.mode()
    if fill is None:
        return column
    return column.fill_nulls(fill)


def impute_mean(column: Column) -> Column:
    """Replace nulls with the mean of the present values (numeric only)."""
    if not column.dtype.is_numeric:
        raise SchemaError(f"mean imputation needs a numeric column, got {column.dtype}")
    if not column.has_nulls():
        return column
    present = column.non_null_values().astype(np.float64)
    if len(present) == 0:
        return column
    fill = float(np.mean(present))
    if column.dtype in (DType.INT, DType.BOOL):
        fill = round(fill)
    return column.fill_nulls(fill)


def impute_median(column: Column) -> Column:
    """Replace nulls with the median of the present values (numeric only)."""
    if not column.dtype.is_numeric:
        raise SchemaError(
            f"median imputation needs a numeric column, got {column.dtype}"
        )
    if not column.has_nulls():
        return column
    present = column.non_null_values().astype(np.float64)
    if len(present) == 0:
        return column
    fill = float(np.median(present))
    if column.dtype in (DType.INT, DType.BOOL):
        fill = round(fill)
    return column.fill_nulls(fill)


def impute_constant(column: Column, value: object) -> Column:
    """Replace nulls with a caller-supplied default value."""
    return column.fill_nulls(value)


_STRATEGIES = {
    "most_frequent": impute_most_frequent,
    "mean": impute_mean,
    "median": impute_median,
}


def impute_table(table: Table, strategy: str = "most_frequent") -> Table:
    """Impute every column of a table with the named strategy.

    ``mean``/``median`` silently fall back to ``most_frequent`` on string
    columns, matching the usual mixed-type preprocessing behaviour.
    """
    if strategy not in _STRATEGIES:
        raise SchemaError(
            f"unknown imputation strategy {strategy!r}; "
            f"expected one of {sorted(_STRATEGIES)}"
        )
    impute = _STRATEGIES[strategy]
    out = {}
    for name in table.column_names:
        column = table.column(name)
        if strategy != "most_frequent" and not column.dtype.is_numeric:
            out[name] = impute_most_frequent(column)
        else:
            out[name] = impute(column)
    return Table(out, name=table.name)
