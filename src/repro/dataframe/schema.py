"""Schema descriptors and semantic role inference for columns.

The discovery matchers and the DRG builder reason about columns via
lightweight :class:`ColumnSchema` descriptors rather than full columns:
name, dtype, key-ness and null statistics.  :func:`infer_role` classifies a
column as a key / foreign-key candidate vs. a plain feature, which the lake
generators and the ARDA-style splitter use to decide where join columns go.
"""

from __future__ import annotations

from dataclasses import dataclass

from .column import Column, DType
from .groupby import uniqueness
from .table import Table

__all__ = ["ColumnSchema", "TableSchema", "infer_role", "schema_of"]

KEY_ROLE = "key"
CATEGORY_ROLE = "category"
FEATURE_ROLE = "feature"


@dataclass(frozen=True)
class ColumnSchema:
    """Static description of one column."""

    name: str
    dtype: DType
    n_rows: int
    n_distinct: int
    null_ratio: float
    role: str

    @property
    def is_key_like(self) -> bool:
        """Whether the column could serve as a join key."""
        return self.role in (KEY_ROLE, CATEGORY_ROLE)


@dataclass(frozen=True)
class TableSchema:
    """Static description of a table: an ordered tuple of column schemas."""

    name: str
    columns: tuple[ColumnSchema, ...]

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(name)

    @property
    def key_candidates(self) -> list[ColumnSchema]:
        """Columns usable as join endpoints."""
        return [c for c in self.columns if c.is_key_like]


def infer_role(column: Column) -> str:
    """Classify a column as ``key``, ``category`` or ``feature``.

    Heuristics mirror common profiling practice: near-unique columns are key
    candidates; low-cardinality columns are categories (which can act as
    weak join columns — the source of spurious lake edges); everything else
    is a plain feature.
    """
    distinct_fraction = uniqueness(column)
    n_distinct = len(column.unique())
    if distinct_fraction >= 0.95 and n_distinct > 1:
        return KEY_ROLE
    if n_distinct <= max(20, int(0.05 * max(len(column), 1))) and n_distinct > 0:
        return CATEGORY_ROLE
    return FEATURE_ROLE


def schema_of(table: Table) -> TableSchema:
    """Profile every column of ``table`` into a :class:`TableSchema`."""
    columns = []
    for name in table.column_names:
        col = table.column(name)
        columns.append(
            ColumnSchema(
                name=name,
                dtype=col.dtype,
                n_rows=len(col),
                n_distinct=len(col.unique()),
                null_ratio=col.null_ratio(),
                role=infer_role(col),
            )
        )
    return TableSchema(name=table.name, columns=tuple(columns))
