"""Left joins with cardinality control, as two-phase build/probe kernels.

AutoFeat only ever performs *left* joins so that the base table keeps its
row count and label distribution (paper Section IV-B).  To guarantee this
even for 1:N and N:M joins, the right-hand side is first reduced to one
representative row per join-key value ("group by the join column and
randomly select a row", ARDA-style).  We make the random choice
deterministic: the representative is picked with a seeded RNG keyed on the
join-key value, so repeated runs — and the path ranking that depends on
them — are reproducible.

Join execution is split into two phases so the expensive half can be
reused across join paths:

* **build** — :meth:`JoinIndex.build` deduplicates the right table and
  indexes its key column once;
* **probe** — :meth:`JoinIndex.probe` maps any stream of left-hand keys
  onto build-side row indices, and :meth:`JoinIndex.left_join` gathers the
  build columns onto a probe table.

Both phases run on **dictionary-encoded keys** by default: the key column
is interned once into dense int32 codes by a
:class:`~repro.dataframe.encoding.KeyDictionary`, deduplication groups
rows with one stable argsort over the codes, and probes are a
``searchsorted`` + gather over integers instead of a Python dict of boxed
scalars.  The scalar path is kept verbatim behind ``use_dict_keys=False``
as the bit-for-bit parity reference (and as the automatic fallback for the
one column shape codes cannot represent, unmasked-NaN float keys).  Both
paths pick dedup representatives through the same CRC-seeded per-key RNG,
so their outputs are identical to the bit.

:func:`left_join` and :func:`inner_join` remain the one-shot wrappers
(build + probe in a single call); the execution engine in
:mod:`repro.engine` holds ``JoinIndex`` objects in a cache so that a table
probed by many paths is only ever built once.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

import numpy as np

from ..errors import JoinError
from .column import Column, DType
from .encoding import CODE_NULL, KeyDictionary, normalize_key
from .table import Table

__all__ = [
    "JoinIndex",
    "left_join",
    "inner_join",
    "dedup_by_key",
    "join_key_null_ratio",
]

#: Backward-compatible alias: key normalisation now lives centrally in
#: :mod:`repro.dataframe.encoding` so the encoded and scalar paths share
#: one definition (the former private ``_key_of``).
_key_of = normalize_key


def _representative_index(indices, key: Any, seed: int) -> int:
    """Deterministically pick one row index from a join-key group.

    A per-key RNG is derived from a CRC of the key and the global seed, so
    the pick is stable across runs and independent of dict iteration order
    — and of whether the group was assembled by the scalar or the encoded
    kernel.
    """
    if len(indices) == 1:
        return indices[0]
    digest = zlib.crc32(repr(key).encode("utf-8"))
    rng = np.random.default_rng((seed * 0x9E3779B1 + digest) & 0xFFFFFFFF)
    return indices[int(rng.integers(len(indices)))]


def _encoded_dedup_picks(
    codes: np.ndarray, dictionary: KeyDictionary, seed: int
) -> np.ndarray:
    """Representative row per distinct code, sorted ascending.

    The vectorised core of :func:`dedup_by_key`: one stable argsort groups
    the rows of every key (ascending row order within a group, exactly the
    order the scalar path accumulates), singleton groups resolve without
    touching Python, and only keys that actually have duplicates pay the
    per-key digest-seeded RNG pick.
    """
    valid_rows = np.flatnonzero(codes >= 0)
    if len(valid_rows) == 0:
        return valid_rows.astype(np.int64)
    group_codes = codes[valid_rows]
    order = np.argsort(group_codes, kind="stable")
    sorted_rows = valid_rows[order]
    sorted_codes = group_codes[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_codes)]))
    picks = np.empty(len(starts), dtype=np.int64)
    singleton = (ends - starts) == 1
    picks[singleton] = sorted_rows[starts[singleton]]
    for g in np.flatnonzero(~singleton):
        start, end = starts[g], ends[g]
        key = dictionary.key(int(sorted_codes[start]))
        picks[g] = _representative_index(sorted_rows[start:end], key, seed)
    picks.sort()
    return picks


def _scalar_dedup_picks(column: Column, seed: int) -> np.ndarray:
    """The per-row reference grouping (parity baseline for the encoded path)."""
    groups: dict[Any, list[int]] = {}
    for i, value in enumerate(column):
        if value is None:
            continue
        groups.setdefault(normalize_key(value), []).append(i)
    picks = sorted(
        _representative_index(indices, key, seed) for key, indices in groups.items()
    )
    return np.asarray(picks, dtype=np.int64)


def dedup_by_key(
    table: Table, key_column: str, seed: int = 0, use_dict_keys: bool = True
) -> Table:
    """Reduce ``table`` to one representative row per value of ``key_column``.

    Rows whose key is null are dropped — they can never match a left join
    probe.  The representative within each group is chosen deterministically
    (see :func:`_representative_index`).  With ``use_dict_keys`` (the
    default) grouping runs on interned int32 codes; ``False`` forces the
    scalar reference path.  Outputs are bit-identical either way.
    """
    column = table.column(key_column)
    if use_dict_keys:
        dictionary = KeyDictionary.from_column(column)
        if dictionary is not None:
            return table.take(
                _encoded_dedup_picks(dictionary.codes, dictionary, seed)
            )
    return table.take(_scalar_dedup_picks(column, seed))


class JoinIndex:
    """The build side of a hash join: a deduped table plus its key index.

    Built once per ``(table, key_column, seed)`` and probed arbitrarily
    many times — this is the unit the :class:`repro.engine.HopCache`
    memoizes across join paths.  The index is immutable after ``build``.

    Two interchangeable backings exist: the **encoded** form carries the
    key column's :class:`~repro.dataframe.encoding.KeyDictionary` plus a
    dense ``code → build row`` gather table (``dictionary`` is non-None),
    the **scalar** form a ``{normalised key: row}`` dict.  Probing an
    encoded index with a :class:`Column` is fully vectorised; scalar
    probes (arbitrary iterables, ``__contains__``) fall through to a
    lazily derived dict either way.
    """

    __slots__ = (
        "build_table",
        "key_column",
        "seed",
        "deduplicated",
        "_index",
        "dictionary",
        "_code_rows",
    )

    def __init__(
        self,
        build_table: Table,
        key_column: str,
        seed: int,
        index: dict[Any, int] | None,
        deduplicated: bool,
        dictionary: KeyDictionary | None = None,
        code_rows: np.ndarray | None = None,
    ):
        self.build_table = build_table
        self.key_column = key_column
        self.seed = seed
        self.deduplicated = deduplicated
        self._index = index
        #: The key column's interned universe (None on the scalar path).
        self.dictionary = dictionary
        #: Dense gather table mapping a dictionary code to its build row.
        self._code_rows = code_rows

    @classmethod
    def build(
        cls,
        table: Table,
        key_column: str,
        seed: int = 0,
        deduplicate: bool = True,
        use_dict_keys: bool = True,
    ) -> "JoinIndex":
        """Deduplicate ``table`` on ``key_column`` and index the survivors.

        With ``deduplicate=False`` the table is taken as-is and a duplicate
        key raises :class:`JoinError` (a left join through it would
        duplicate probe rows).  ``use_dict_keys=False`` forces the scalar
        reference kernels; results are bit-identical, only speed differs.
        """
        if key_column not in table:
            raise JoinError(
                f"right table {table.name!r} has no join column {key_column!r}"
            )
        dictionary = (
            KeyDictionary.from_column(table.column(key_column))
            if use_dict_keys
            else None
        )
        if dictionary is None:
            return cls._build_scalar(table, key_column, seed, deduplicate)
        return cls._build_encoded(table, key_column, seed, deduplicate, dictionary)

    @classmethod
    def _build_encoded(
        cls,
        table: Table,
        key_column: str,
        seed: int,
        deduplicate: bool,
        dictionary: KeyDictionary,
    ) -> "JoinIndex":
        codes = dictionary.codes
        if deduplicate:
            picks = _encoded_dedup_picks(codes, dictionary, seed)
            build = table.take(picks)
            build_codes = codes[picks]
        else:
            cls._check_unique_codes(table, key_column, codes)
            build = table
            build_codes = codes
        code_rows = np.full(dictionary.n_keys, -1, dtype=np.int64)
        keyed = np.flatnonzero(build_codes >= 0)
        code_rows[build_codes[keyed]] = keyed
        return cls(
            build,
            key_column,
            seed,
            index=None,
            deduplicated=deduplicate,
            dictionary=dictionary,
            code_rows=code_rows,
        )

    @staticmethod
    def _check_unique_codes(
        table: Table, key_column: str, codes: np.ndarray
    ) -> None:
        """Raise exactly where the scalar loop would on a repeated key.

        The scalar builder fails on the first row whose key was already
        seen; the vectorised check reproduces that row (the earliest
        second occurrence across all repeated codes) so the error message
        is byte-identical.
        """
        valid_rows = np.flatnonzero(codes >= 0)
        if len(valid_rows) < 2:
            return
        group_codes = codes[valid_rows]
        order = np.argsort(group_codes, kind="stable")
        sorted_rows = valid_rows[order]
        sorted_codes = group_codes[order]
        repeats = sorted_codes[1:] == sorted_codes[:-1]
        if not repeats.any():
            return
        offender = int(sorted_rows[1:][repeats].min())
        value = table.column(key_column)[offender]
        raise JoinError(
            f"duplicate join key {value!r} in {table.name!r} with "
            "deduplicate=False; a left join would duplicate probe rows"
        )

    @classmethod
    def _build_scalar(
        cls, table: Table, key_column: str, seed: int, deduplicate: bool
    ) -> "JoinIndex":
        """The per-row reference builder (parity baseline + NaN-key fallback)."""
        build = (
            table.take(_scalar_dedup_picks(table.column(key_column), seed))
            if deduplicate
            else table
        )
        index: dict[Any, int] = {}
        for i, value in enumerate(build.column(key_column)):
            if value is None:
                continue
            key = normalize_key(value)
            if key in index:
                raise JoinError(
                    f"duplicate join key {value!r} in {table.name!r} with "
                    "deduplicate=False; a left join would duplicate probe rows"
                )
            index[key] = i
        return cls(build, key_column, seed, index, deduplicate)

    @property
    def n_keys(self) -> int:
        """Number of distinct non-null join keys on the build side."""
        if self.dictionary is not None:
            return self.dictionary.n_keys
        return len(self._index)

    def _scalar_index(self) -> dict[Any, int]:
        """The ``{normalised key: build row}`` view, derived lazily.

        Encoded indexes only materialise this for scalar probes and
        membership tests; Column probes never touch it.  The build is
        idempotent, so the unlocked lazy init is thread-safe.
        """
        if self._index is None:
            code_rows = self._code_rows
            self._index = {
                self.dictionary.key(code): int(row)
                for code, row in enumerate(code_rows)
                if row >= 0
            }
        return self._index

    def __contains__(self, value: Any) -> bool:
        return normalize_key(value) in self._scalar_index()

    def probe(self, keys: "Column | Iterable[Any]") -> np.ndarray:
        """Map probe-side key values onto build-side row indices.

        Returns an int64 gather array aligned with ``keys``; unmatched or
        null keys map to ``-1``.  Probing an encoded index with a
        :class:`Column` runs vectorised (encode against the build
        dictionary, gather through the code table); any other input takes
        the scalar route.
        """
        if self.dictionary is not None and isinstance(keys, Column):
            codes = self.dictionary.encode_column(keys)
            if self.dictionary.n_keys == 0:
                return np.full(len(codes), -1, dtype=np.int64)
            gather = self._code_rows[np.clip(codes, 0, None)]
            return np.where(codes >= 0, gather, -1)
        index = self._scalar_index()
        return np.asarray(
            [
                -1 if value is None else index.get(normalize_key(value), -1)
                for value in keys
            ],
            dtype=np.int64,
        )

    def left_join(
        self, left: Table, left_on: str, drop_right_key: bool = False
    ) -> Table:
        """Probe with ``left`` and gather the build columns onto it.

        The left row count is preserved exactly; unmatched probe rows carry
        nulls in every build column.
        """
        if left_on not in left:
            raise JoinError(
                f"left table {left.name!r} has no join column {left_on!r}"
            )
        gather = self.probe(left.column(left_on))
        return self._attach(left, gather, drop_right_key)

    def _attach(
        self, left: Table, gather: np.ndarray, drop_right_key: bool
    ) -> Table:
        """Gather build rows onto ``left`` along a precomputed gather array."""
        build = self.build_table
        n = left.n_rows
        matched = gather >= 0
        safe_gather = np.where(matched, gather, 0)

        out: dict[str, Column] = {name: left.column(name) for name in left.column_names}
        for name in build.column_names:
            if drop_right_key and name == self.key_column:
                continue
            out_name = name
            while out_name in out:
                out_name = f"{out_name}_r"
            source = build.column(name)
            if build.n_rows == 0:
                out[out_name] = Column.nulls(n, dtype=source.dtype)
                continue
            taken = source.take(safe_gather)
            mask = taken.mask | ~matched
            if source.dtype is DType.STRING:
                values = taken.values.copy()
                values[~matched] = None
            else:
                values = taken.values.copy()
            out[out_name] = Column(values, dtype=source.dtype, mask=mask)
        return Table(out, name=left.name)


def left_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
    index: JoinIndex | None = None,
    use_dict_keys: bool = True,
) -> Table:
    """Left join preserving the left table's row count exactly.

    One-shot wrapper over :class:`JoinIndex`: build the right side, then
    probe with the left.  Pass a prebuilt ``index`` to skip the build phase
    (the ``right``/``right_on``/``seed``/``deduplicate`` arguments are then
    ignored — the index already embodies them).

    Parameters
    ----------
    left, right:
        The probe and build tables.
    left_on, right_on:
        Join column names in each table.
    seed:
        Seed for the deterministic representative-row choice in
        :func:`dedup_by_key`.
    deduplicate:
        When True (the default, and AutoFeat's behaviour) the right table is
        first reduced to one row per key so the join is at most 1:1 and the
        left row count is preserved.  When False, a duplicate key on the
        right would violate row-count preservation, so a multi-match raises
        :class:`JoinError`.
    drop_right_key:
        Drop the right join column from the output (it duplicates the left
        key on every matched row).
    use_dict_keys:
        Build and probe on dictionary-encoded int32 codes (the default) or
        force the scalar reference kernels.  Results are bit-identical.

    Returns
    -------
    Table
        All columns of ``left`` followed by the columns of ``right``
        (minus the key if ``drop_right_key``).  Right columns whose name
        collides with a left column are suffixed with ``"_r"``.
        Unmatched probe rows carry nulls in every right column.
    """
    if left_on not in left:
        raise JoinError(f"left table {left.name!r} has no join column {left_on!r}")
    if index is None:
        index = JoinIndex.build(
            right,
            right_on,
            seed=seed,
            deduplicate=deduplicate,
            use_dict_keys=use_dict_keys,
        )
    return index.left_join(left, left_on, drop_right_key=drop_right_key)


def inner_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
    index: JoinIndex | None = None,
    use_dict_keys: bool = True,
) -> Table:
    """Inner join: like :func:`left_join` but unmatched probe rows are cut.

    AutoFeat never uses this — Section IV-B argues that dropping rows
    skews the label distribution — but the engine provides it so the
    join-type ablation can *demonstrate* that skew rather than assert it.
    """
    if left_on not in left:
        raise JoinError(f"left table {left.name!r} has no join column {left_on!r}")
    if index is None:
        index = JoinIndex.build(
            right,
            right_on,
            seed=seed,
            deduplicate=deduplicate,
            use_dict_keys=use_dict_keys,
        )
    gather = index.probe(left.column(left_on))
    joined = index._attach(left, gather, drop_right_key)
    return joined.filter(gather >= 0)


def join_key_null_ratio(joined: Table, right_columns: list[str]) -> float:
    """Null ratio over the columns a join contributed.

    This is the completeness statistic fed to AutoFeat's data-quality
    pruning: a join that failed to match most probe rows leaves its entire
    right-hand side null, and should be pruned.
    """
    present = [c for c in right_columns if c in joined]
    if not present:
        raise JoinError("none of the contributed columns exist in the join result")
    return joined.null_ratio(present)
