"""Left joins with cardinality control, as two-phase build/probe kernels.

AutoFeat only ever performs *left* joins so that the base table keeps its
row count and label distribution (paper Section IV-B).  To guarantee this
even for 1:N and N:M joins, the right-hand side is first reduced to one
representative row per join-key value ("group by the join column and
randomly select a row", ARDA-style).  We make the random choice
deterministic: the representative is picked with a seeded RNG keyed on the
join-key value, so repeated runs — and the path ranking that depends on
them — are reproducible.

Join execution is split into two phases so the expensive half can be
reused across join paths:

* **build** — :meth:`JoinIndex.build` deduplicates the right table and
  hashes its key column once;
* **probe** — :meth:`JoinIndex.probe` maps any stream of left-hand keys
  onto build-side row indices, and :meth:`JoinIndex.left_join` gathers the
  build columns onto a probe table.

:func:`left_join` and :func:`inner_join` remain the one-shot wrappers
(build + probe in a single call); the execution engine in
:mod:`repro.engine` holds ``JoinIndex`` objects in a cache so that a table
probed by many paths is only ever built once.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable

import numpy as np

from ..errors import JoinError
from .column import Column, DType
from .table import Table

__all__ = [
    "JoinIndex",
    "left_join",
    "inner_join",
    "dedup_by_key",
    "join_key_null_ratio",
]


def _key_of(value: Any) -> Any:
    """Normalise a join-key value so that 1, 1.0 and np.int64(1) compare equal.

    numpy scalars (``np.int64``, ``np.float64``, ``np.bool_``, ``np.str_``)
    are unwrapped to the corresponding Python scalar first: they hash like
    their Python twins but ``repr`` differently, which would destabilise the
    :func:`_representative_index` digest across storage dtypes.
    """
    if value is None:
        return None
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _representative_index(indices: list[int], key: Any, seed: int) -> int:
    """Deterministically pick one row index from a join-key group.

    A per-key RNG is derived from a CRC of the key and the global seed, so
    the pick is stable across runs and independent of dict iteration order.
    """
    if len(indices) == 1:
        return indices[0]
    digest = zlib.crc32(repr(key).encode("utf-8"))
    rng = np.random.default_rng((seed * 0x9E3779B1 + digest) & 0xFFFFFFFF)
    return indices[int(rng.integers(len(indices)))]


def dedup_by_key(table: Table, key_column: str, seed: int = 0) -> Table:
    """Reduce ``table`` to one representative row per value of ``key_column``.

    Rows whose key is null are dropped — they can never match a left join
    probe.  The representative within each group is chosen deterministically
    (see :func:`_representative_index`).
    """
    column = table.column(key_column)
    groups: dict[Any, list[int]] = {}
    for i, value in enumerate(column):
        if value is None:
            continue
        groups.setdefault(_key_of(value), []).append(i)
    picks = sorted(
        _representative_index(indices, key, seed) for key, indices in groups.items()
    )
    return table.take(np.asarray(picks, dtype=np.int64))


class JoinIndex:
    """The build side of a hash join: a deduped table plus its key index.

    Built once per ``(table, key_column, seed)`` and probed arbitrarily
    many times — this is the unit the :class:`repro.engine.HopCache`
    memoizes across join paths.  The index is immutable after ``build``.
    """

    __slots__ = ("build_table", "key_column", "seed", "deduplicated", "_index")

    def __init__(
        self,
        build_table: Table,
        key_column: str,
        seed: int,
        index: dict[Any, int],
        deduplicated: bool,
    ):
        self.build_table = build_table
        self.key_column = key_column
        self.seed = seed
        self.deduplicated = deduplicated
        self._index = index

    @classmethod
    def build(
        cls,
        table: Table,
        key_column: str,
        seed: int = 0,
        deduplicate: bool = True,
    ) -> "JoinIndex":
        """Deduplicate ``table`` on ``key_column`` and hash the survivors.

        With ``deduplicate=False`` the table is taken as-is and a duplicate
        key raises :class:`JoinError` (a left join through it would
        duplicate probe rows).
        """
        if key_column not in table:
            raise JoinError(
                f"right table {table.name!r} has no join column {key_column!r}"
            )
        build = dedup_by_key(table, key_column, seed=seed) if deduplicate else table
        index: dict[Any, int] = {}
        for i, value in enumerate(build.column(key_column)):
            if value is None:
                continue
            key = _key_of(value)
            if key in index:
                raise JoinError(
                    f"duplicate join key {value!r} in {table.name!r} with "
                    "deduplicate=False; a left join would duplicate probe rows"
                )
            index[key] = i
        return cls(build, key_column, seed, index, deduplicate)

    @property
    def n_keys(self) -> int:
        """Number of distinct non-null join keys on the build side."""
        return len(self._index)

    def __contains__(self, value: Any) -> bool:
        return _key_of(value) in self._index

    def probe(self, keys: Iterable[Any]) -> np.ndarray:
        """Map probe-side key values onto build-side row indices.

        Returns an int64 gather array aligned with ``keys``; unmatched or
        null keys map to ``-1``.
        """
        index = self._index
        return np.asarray(
            [
                -1 if value is None else index.get(_key_of(value), -1)
                for value in keys
            ],
            dtype=np.int64,
        )

    def left_join(
        self, left: Table, left_on: str, drop_right_key: bool = False
    ) -> Table:
        """Probe with ``left`` and gather the build columns onto it.

        The left row count is preserved exactly; unmatched probe rows carry
        nulls in every build column.
        """
        if left_on not in left:
            raise JoinError(
                f"left table {left.name!r} has no join column {left_on!r}"
            )
        gather = self.probe(left.column(left_on))
        return self._attach(left, gather, drop_right_key)

    def _attach(
        self, left: Table, gather: np.ndarray, drop_right_key: bool
    ) -> Table:
        """Gather build rows onto ``left`` along a precomputed gather array."""
        build = self.build_table
        n = left.n_rows
        matched = gather >= 0
        safe_gather = np.where(matched, gather, 0)

        out: dict[str, Column] = {name: left.column(name) for name in left.column_names}
        for name in build.column_names:
            if drop_right_key and name == self.key_column:
                continue
            out_name = name
            while out_name in out:
                out_name = f"{out_name}_r"
            source = build.column(name)
            if build.n_rows == 0:
                out[out_name] = Column.nulls(n, dtype=source.dtype)
                continue
            taken = source.take(safe_gather)
            mask = taken.mask | ~matched
            if source.dtype is DType.STRING:
                values = taken.values.copy()
                values[~matched] = None
            else:
                values = taken.values.copy()
            out[out_name] = Column(values, dtype=source.dtype, mask=mask)
        return Table(out, name=left.name)


def left_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
    index: JoinIndex | None = None,
) -> Table:
    """Left join preserving the left table's row count exactly.

    One-shot wrapper over :class:`JoinIndex`: build the right side, then
    probe with the left.  Pass a prebuilt ``index`` to skip the build phase
    (the ``right``/``right_on``/``seed``/``deduplicate`` arguments are then
    ignored — the index already embodies them).

    Parameters
    ----------
    left, right:
        The probe and build tables.
    left_on, right_on:
        Join column names in each table.
    seed:
        Seed for the deterministic representative-row choice in
        :func:`dedup_by_key`.
    deduplicate:
        When True (the default, and AutoFeat's behaviour) the right table is
        first reduced to one row per key so the join is at most 1:1 and the
        left row count is preserved.  When False, a duplicate key on the
        right would violate row-count preservation, so a multi-match raises
        :class:`JoinError`.
    drop_right_key:
        Drop the right join column from the output (it duplicates the left
        key on every matched row).

    Returns
    -------
    Table
        All columns of ``left`` followed by the columns of ``right``
        (minus the key if ``drop_right_key``).  Right columns whose name
        collides with a left column are suffixed with ``"_r"``.
        Unmatched probe rows carry nulls in every right column.
    """
    if left_on not in left:
        raise JoinError(f"left table {left.name!r} has no join column {left_on!r}")
    if index is None:
        index = JoinIndex.build(right, right_on, seed=seed, deduplicate=deduplicate)
    return index.left_join(left, left_on, drop_right_key=drop_right_key)


def inner_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
    index: JoinIndex | None = None,
) -> Table:
    """Inner join: like :func:`left_join` but unmatched probe rows are cut.

    AutoFeat never uses this — Section IV-B argues that dropping rows
    skews the label distribution — but the engine provides it so the
    join-type ablation can *demonstrate* that skew rather than assert it.
    """
    if left_on not in left:
        raise JoinError(f"left table {left.name!r} has no join column {left_on!r}")
    if index is None:
        index = JoinIndex.build(right, right_on, seed=seed, deduplicate=deduplicate)
    gather = index.probe(left.column(left_on))
    joined = index._attach(left, gather, drop_right_key)
    return joined.filter(gather >= 0)


def join_key_null_ratio(joined: Table, right_columns: list[str]) -> float:
    """Null ratio over the columns a join contributed.

    This is the completeness statistic fed to AutoFeat's data-quality
    pruning: a join that failed to match most probe rows leaves its entire
    right-hand side null, and should be pruned.
    """
    present = [c for c in right_columns if c in joined]
    if not present:
        raise JoinError("none of the contributed columns exist in the join result")
    return joined.null_ratio(present)
