"""Left joins with cardinality control.

AutoFeat only ever performs *left* joins so that the base table keeps its
row count and label distribution (paper Section IV-B).  To guarantee this
even for 1:N and N:M joins, the right-hand side is first reduced to one
representative row per join-key value ("group by the join column and
randomly select a row", ARDA-style).  We make the random choice
deterministic: the representative is picked with a seeded RNG keyed on the
join-key value, so repeated runs — and the path ranking that depends on
them — are reproducible.
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

from ..errors import JoinError
from .column import Column, DType
from .table import Table

__all__ = ["left_join", "inner_join", "dedup_by_key", "join_key_null_ratio"]


def _key_of(value: Any) -> Any:
    """Normalise a join-key value so that 1 and 1.0 compare equal."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _representative_index(indices: list[int], key: Any, seed: int) -> int:
    """Deterministically pick one row index from a join-key group.

    A per-key RNG is derived from a CRC of the key and the global seed, so
    the pick is stable across runs and independent of dict iteration order.
    """
    if len(indices) == 1:
        return indices[0]
    digest = zlib.crc32(repr(key).encode("utf-8"))
    rng = np.random.default_rng((seed * 0x9E3779B1 + digest) & 0xFFFFFFFF)
    return indices[int(rng.integers(len(indices)))]


def dedup_by_key(table: Table, key_column: str, seed: int = 0) -> Table:
    """Reduce ``table`` to one representative row per value of ``key_column``.

    Rows whose key is null are dropped — they can never match a left join
    probe.  The representative within each group is chosen deterministically
    (see :func:`_representative_index`).
    """
    column = table.column(key_column)
    groups: dict[Any, list[int]] = {}
    for i, value in enumerate(column):
        if value is None:
            continue
        groups.setdefault(_key_of(value), []).append(i)
    picks = sorted(
        _representative_index(indices, key, seed) for key, indices in groups.items()
    )
    return table.take(np.asarray(picks, dtype=np.int64))


def left_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
) -> Table:
    """Left join preserving the left table's row count exactly.

    Parameters
    ----------
    left, right:
        The probe and build tables.
    left_on, right_on:
        Join column names in each table.
    seed:
        Seed for the deterministic representative-row choice in
        :func:`dedup_by_key`.
    deduplicate:
        When True (the default, and AutoFeat's behaviour) the right table is
        first reduced to one row per key so the join is at most 1:1 and the
        left row count is preserved.  When False, a duplicate key on the
        right would violate row-count preservation, so a multi-match raises
        :class:`JoinError`.
    drop_right_key:
        Drop the right join column from the output (it duplicates the left
        key on every matched row).

    Returns
    -------
    Table
        All columns of ``left`` followed by the columns of ``right``
        (minus the key if ``drop_right_key``).  Right columns whose name
        collides with a left column are suffixed with ``"_r"``.
        Unmatched probe rows carry nulls in every right column.
    """
    if left_on not in left:
        raise JoinError(f"left table {left.name!r} has no join column {left_on!r}")
    if right_on not in right:
        raise JoinError(f"right table {right.name!r} has no join column {right_on!r}")

    build = dedup_by_key(right, right_on, seed=seed) if deduplicate else right

    index: dict[Any, int] = {}
    for i, value in enumerate(build.column(right_on)):
        if value is None:
            continue
        key = _key_of(value)
        if key in index:
            raise JoinError(
                f"duplicate join key {value!r} in {right.name!r} with "
                "deduplicate=False; a left join would duplicate probe rows"
            )
        index[key] = i

    n = left.n_rows
    gather = np.full(n, -1, dtype=np.int64)
    for i, value in enumerate(left.column(left_on)):
        if value is None:
            continue
        gather[i] = index.get(_key_of(value), -1)

    matched = gather >= 0
    safe_gather = np.where(matched, gather, 0)

    out: dict[str, Column] = {name: left.column(name) for name in left.column_names}
    for name in build.column_names:
        if drop_right_key and name == right_on:
            continue
        out_name = name
        while out_name in out:
            out_name = f"{out_name}_r"
        source = build.column(name)
        if build.n_rows == 0:
            out[out_name] = Column.nulls(n, dtype=source.dtype)
            continue
        taken = source.take(safe_gather)
        mask = taken.mask | ~matched
        if source.dtype is DType.STRING:
            values = taken.values.copy()
            values[~matched] = None
        else:
            values = taken.values.copy()
        out[out_name] = Column(values, dtype=source.dtype, mask=mask)
    return Table(out, name=left.name)


def inner_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    seed: int = 0,
    deduplicate: bool = True,
    drop_right_key: bool = False,
) -> Table:
    """Inner join: like :func:`left_join` but unmatched probe rows are cut.

    AutoFeat never uses this — Section IV-B argues that dropping rows
    skews the label distribution — but the engine provides it so the
    join-type ablation can *demonstrate* that skew rather than assert it.
    """
    joined = left_join(
        left,
        right,
        left_on,
        right_on,
        seed=seed,
        deduplicate=deduplicate,
        drop_right_key=drop_right_key,
    )
    build = dedup_by_key(right, right_on, seed=seed) if deduplicate else right
    present = {
        _key_of(v) for v in build.column(right_on) if v is not None
    }
    keep = np.asarray(
        [
            value is not None and _key_of(value) in present
            for value in left.column(left_on)
        ],
        dtype=bool,
    )
    return joined.filter(keep)


def join_key_null_ratio(joined: Table, right_columns: list[str]) -> float:
    """Null ratio over the columns a join contributed.

    This is the completeness statistic fed to AutoFeat's data-quality
    pruning: a join that failed to match most probe rows leaves its entire
    right-hand side null, and should be pruned.
    """
    present = [c for c in right_columns if c in joined]
    if not present:
        raise JoinError("none of the contributed columns exist in the join result")
    return joined.null_ratio(present)
