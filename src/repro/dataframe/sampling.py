"""Row sampling, including the stratified sampling AutoFeat applies.

The paper samples the base table with *stratified* sampling before feature
selection so the class ratio in the sample matches the full table; model
training still happens on the full data (Section VI, "From Ranked Paths to
Training ML Models").
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from .table import Table

__all__ = ["random_sample", "stratified_sample", "train_test_split_indices"]


def random_sample(table: Table, n: int, seed: int = 0) -> Table:
    """Uniform sample of ``min(n, n_rows)`` rows without replacement."""
    if n < 0:
        raise SchemaError(f"sample size must be non-negative, got {n}")
    n = min(n, table.n_rows)
    rng = np.random.default_rng(seed)
    idx = rng.choice(table.n_rows, size=n, replace=False)
    return table.take(np.sort(idx))


def stratified_sample(
    table: Table,
    label_column: str,
    n: int,
    seed: int = 0,
) -> Table:
    """Sample ``n`` rows preserving the label distribution.

    Each class contributes ``round(n * class_fraction)`` rows (at least one
    row per class that exists, so rare classes are never lost).  Rows whose
    label is null are excluded from the sample.
    """
    if n <= 0:
        raise SchemaError(f"sample size must be positive, got {n}")
    if n >= table.n_rows:
        return table
    labels = table.column(label_column)
    by_class: dict[object, list[int]] = {}
    for i, value in enumerate(labels):
        if value is None:
            continue
        by_class.setdefault(value, []).append(i)
    if not by_class:
        raise SchemaError(f"label column {label_column!r} is entirely null")

    total = sum(len(v) for v in by_class.values())
    rng = np.random.default_rng(seed)
    chosen: list[int] = []
    for cls in sorted(by_class.keys(), key=str):
        members = by_class[cls]
        quota = max(1, round(n * len(members) / total))
        quota = min(quota, len(members))
        picks = rng.choice(len(members), size=quota, replace=False)
        chosen.extend(members[p] for p in picks)
    return table.take(np.sort(np.asarray(chosen, dtype=np.int64)))


def train_test_split_indices(
    n_rows: int,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Stratified train/test index split (80/20 in the paper).

    Returns ``(train_idx, test_idx)``.  Stratification is per class; every
    class with at least two members contributes at least one test row.
    """
    if not 0.0 < test_fraction < 1.0:
        raise SchemaError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    train: list[int] = []
    test: list[int] = []
    classes = np.unique(labels)
    for cls in classes:
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        n_test = int(round(len(members) * test_fraction))
        if len(members) >= 2:
            n_test = max(1, min(n_test, len(members) - 1))
        else:
            n_test = 0
        test.extend(members[:n_test].tolist())
        train.extend(members[n_test:].tolist())
    return (
        np.sort(np.asarray(train, dtype=np.int64)),
        np.sort(np.asarray(test, dtype=np.int64)),
    )
