"""The :class:`Table` — an immutable, ordered collection of named columns.

Tables are the unit of storage throughout the library: datasets in the lake,
intermediate join results and the final augmented table are all ``Table``
instances.  Operations return new tables; nothing mutates in place, which
keeps the breadth-first path exploration in AutoFeat free of aliasing bugs.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from .column import Column, DType

__all__ = ["Table"]


class Table:
    """An ordered mapping of column name to :class:`Column`, equal lengths.

    Parameters
    ----------
    columns:
        Mapping from column name to :class:`Column` (or raw sequences, which
        are wrapped).  Insertion order is the column order.
    name:
        Optional table name; used to qualify feature names when tables are
        joined (``"table.column"``).
    """

    # __weakref__ lets callers key per-table caches on weak references
    # (e.g. the ComaMatcher profile cache) instead of reusable id()s.
    __slots__ = ("_columns", "_name", "_n_rows", "__weakref__")

    def __init__(
        self,
        columns: Mapping[str, Column | Sequence[Any] | np.ndarray],
        name: str = "",
    ):
        wrapped: dict[str, Column] = {}
        n_rows: int | None = None
        for col_name, data in columns.items():
            if not isinstance(col_name, str) or not col_name:
                raise SchemaError(f"invalid column name: {col_name!r}")
            column = data if isinstance(data, Column) else Column(data)
            if n_rows is None:
                n_rows = len(column)
            elif len(column) != n_rows:
                raise SchemaError(
                    f"column {col_name!r} has {len(column)} rows, expected {n_rows}"
                )
            wrapped[col_name] = column
        self._columns = wrapped
        self._name = name
        self._n_rows = n_rows or 0

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_rows(
        column_names: Sequence[str],
        rows: Iterable[Sequence[Any]],
        name: str = "",
    ) -> "Table":
        """Build a table from an iterable of row tuples."""
        materialised = [list(row) for row in rows]
        for row in materialised:
            if len(row) != len(column_names):
                raise SchemaError(
                    f"row width {len(row)} != number of columns {len(column_names)}"
                )
        columns = {
            col: [row[i] for row in materialised]
            for i, col in enumerate(column_names)
        }
        return Table(columns, name=name)

    @staticmethod
    def empty(column_names: Sequence[str], name: str = "") -> "Table":
        """A zero-row table with the given column names (all FLOAT)."""
        return Table(
            {col: Column(np.empty(0, dtype=np.float64)) for col in column_names},
            name=name,
        )

    # -- basic protocol -------------------------------------------------------

    @property
    def name(self) -> str:
        """The table's name (may be empty for anonymous intermediates)."""
        return self._name

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self._n_rows, len(self._columns))

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return list(self._columns.keys())

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __len__(self) -> int:
        return self._n_rows

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def column(self, column_name: str) -> Column:
        """Look up a column by name, raising :class:`SchemaError` if absent."""
        try:
            return self._columns[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self._name!r} has no column {column_name!r}; "
                f"available: {self.column_names}"
            ) from None

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{name}:{col.dtype.value}" for name, col in self._columns.items()
        )
        return f"Table({self._name!r}, rows={self._n_rows}, cols=[{cols}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(self._columns[c] == other._columns[c] for c in self._columns)

    __hash__ = None  # type: ignore[assignment]

    # -- relational operators ---------------------------------------------------

    def select(self, column_names: Sequence[str]) -> "Table":
        """Projection: keep the named columns, in the given order."""
        return Table(
            {name: self.column(name) for name in column_names}, name=self._name
        )

    def drop(self, column_names: Sequence[str]) -> "Table":
        """Projection complement: remove the named columns."""
        to_drop = set(column_names)
        missing = to_drop - set(self._columns)
        if missing:
            raise SchemaError(f"cannot drop unknown columns: {sorted(missing)}")
        return Table(
            {n: c for n, c in self._columns.items() if n not in to_drop},
            name=self._name,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; names not in ``mapping`` are kept."""
        unknown = set(mapping) - set(self._columns)
        if unknown:
            raise SchemaError(f"cannot rename unknown columns: {sorted(unknown)}")
        renamed = {mapping.get(n, n): c for n, c in self._columns.items()}
        if len(renamed) != len(self._columns):
            raise SchemaError("rename would create duplicate column names")
        return Table(renamed, name=self._name)

    def with_column(self, column_name: str, column: Column) -> "Table":
        """Add (or replace) a column."""
        if len(column) != self._n_rows and self._columns:
            raise SchemaError(
                f"new column has {len(column)} rows, table has {self._n_rows}"
            )
        columns = dict(self._columns)
        columns[column_name] = column
        return Table(columns, name=self._name)

    def with_name(self, name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(self._columns, name=name)

    def prefixed(self, prefix: str, exclude: Sequence[str] = ()) -> "Table":
        """Qualify column names as ``prefix.column`` (except ``exclude``).

        Used when a lake table enters a join so that provenance stays
        readable in the augmented table.
        """
        skip = set(exclude)
        return self.rename(
            {n: f"{prefix}.{n}" for n in self._columns if n not in skip}
        )

    def filter(self, keep: np.ndarray) -> "Table":
        """Row selection by boolean mask."""
        return Table(
            {n: c.filter(keep) for n, c in self._columns.items()}, name=self._name
        )

    def where(self, expression) -> "Table":
        """Filter rows with a predicate built from :func:`repro.dataframe.col`.

        Example::

            table.where((col("age") >= 18) & col("region").isin([1, 2]))
        """
        return self.filter(expression.mask(self))

    def take(self, indices: np.ndarray | Sequence[int]) -> "Table":
        """Row gather by integer positions."""
        return Table(
            {n: c.take(indices) for n, c in self._columns.items()}, name=self._name
        )

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def concat_rows(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must agree exactly."""
        if self.column_names != other.column_names:
            raise SchemaError(
                "cannot concat tables with different columns: "
                f"{self.column_names} vs {other.column_names}"
            )
        return Table(
            {
                n: Column.concat([self._columns[n], other._columns[n]])
                for n in self._columns
            },
            name=self._name,
        )

    # -- analytics --------------------------------------------------------------

    def null_ratio(self, column_names: Sequence[str] | None = None) -> float:
        """Overall fraction of null cells over the given (or all) columns.

        This is the completeness statistic used by AutoFeat's data-quality
        pruning rule (Section IV-C of the paper).
        """
        names = list(column_names) if column_names is not None else self.column_names
        if not names or self._n_rows == 0:
            return 0.0
        total = len(names) * self._n_rows
        nulls = sum(self.column(n).null_count() for n in names)
        return nulls / total

    def numeric_matrix(self, column_names: Sequence[str] | None = None) -> np.ndarray:
        """Dense float64 matrix (rows x columns) with NaN for nulls.

        STRING columns are label-encoded deterministically; this is the
        representation every selection metric and learner consumes.
        """
        names = list(column_names) if column_names is not None else self.column_names
        if not names:
            return np.empty((self._n_rows, 0), dtype=np.float64)
        return np.column_stack([self.column(n).to_float() for n in names])

    def row(self, index: int) -> dict[str, Any]:
        """A single row as a name->value dict (``None`` for nulls)."""
        return {n: c[index] for n, c in self._columns.items()}

    def to_dict(self) -> dict[str, list[Any]]:
        """Materialise as a plain dict of python lists."""
        return {n: c.to_list() for n, c in self._columns.items()}

    def dtypes(self) -> dict[str, DType]:
        """Mapping of column name to logical dtype."""
        return {n: c.dtype for n, c in self._columns.items()}
