"""A small predicate DSL for row filtering.

``col("age") >= 18`` builds an :class:`Expression` that evaluates to a
boolean mask against any table; expressions compose with ``&``, ``|`` and
``~``.  Null semantics follow SQL's three-valued logic collapsed to
two-valued masks: a comparison against a null cell is False (the row is
filtered out), and only ``is_null`` / ``not_null`` select on missingness.

Example::

    adults = table.where((col("age") >= 18) & col("country").isin(["NL", "DE"]))
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import SchemaError
from .table import Table

__all__ = ["Expression", "col", "where"]


class Expression:
    """A deferred boolean predicate over table rows."""

    def __init__(self, evaluate: Callable[[Table], np.ndarray], description: str):
        self._evaluate = evaluate
        self._description = description

    def mask(self, table: Table) -> np.ndarray:
        """Evaluate to a boolean row mask for ``table``."""
        out = self._evaluate(table)
        if out.dtype != np.bool_ or out.shape != (table.n_rows,):
            raise SchemaError(
                f"expression {self._description!r} did not produce a row mask"
            )
        return out

    def __and__(self, other: "Expression") -> "Expression":
        return Expression(
            lambda t: self.mask(t) & other.mask(t),
            f"({self._description} AND {other._description})",
        )

    def __or__(self, other: "Expression") -> "Expression":
        return Expression(
            lambda t: self.mask(t) | other.mask(t),
            f"({self._description} OR {other._description})",
        )

    def __invert__(self) -> "Expression":
        return Expression(
            lambda t: ~self.mask(t), f"(NOT {self._description})"
        )

    def __repr__(self) -> str:
        return f"Expression<{self._description}>"


class _ColumnRef:
    """A named column inside a predicate; comparison operators build
    :class:`Expression` objects."""

    def __init__(self, name: str):
        self._name = name

    def _compare(self, op: Callable[[Any, Any], bool], symbol: str, value: Any):
        name = self._name

        def evaluate(table: Table) -> np.ndarray:
            column = table.column(name)
            out = np.zeros(len(column), dtype=bool)
            for i, cell in enumerate(column):
                if cell is None:
                    continue  # SQL-style: comparisons with null are false
                try:
                    out[i] = bool(op(cell, value))
                except TypeError:
                    out[i] = False
            return out

        return Expression(evaluate, f"{name} {symbol} {value!r}")

    def __eq__(self, value: Any) -> Expression:  # type: ignore[override]
        return self._compare(lambda a, b: a == b, "==", value)

    def __ne__(self, value: Any) -> Expression:  # type: ignore[override]
        return self._compare(lambda a, b: a != b, "!=", value)

    def __lt__(self, value: Any) -> Expression:
        return self._compare(lambda a, b: a < b, "<", value)

    def __le__(self, value: Any) -> Expression:
        return self._compare(lambda a, b: a <= b, "<=", value)

    def __gt__(self, value: Any) -> Expression:
        return self._compare(lambda a, b: a > b, ">", value)

    def __ge__(self, value: Any) -> Expression:
        return self._compare(lambda a, b: a >= b, ">=", value)

    def isin(self, values: Iterable[Any]) -> Expression:
        """Membership test against a collection of non-null values."""
        allowed = set(values)
        name = self._name

        def evaluate(table: Table) -> np.ndarray:
            column = table.column(name)
            return np.asarray(
                [cell is not None and cell in allowed for cell in column],
                dtype=bool,
            )

        return Expression(evaluate, f"{name} IN {sorted(map(str, allowed))}")

    def between(self, low: Any, high: Any) -> Expression:
        """Inclusive range test."""
        return (self >= low) & (self <= high)

    def is_null(self) -> Expression:
        """True where the cell is missing."""
        name = self._name
        return Expression(
            lambda t: t.column(name).mask.copy(), f"{name} IS NULL"
        )

    def not_null(self) -> Expression:
        """True where the cell is present."""
        return ~self.is_null()

    __hash__ = None  # type: ignore[assignment]


def col(name: str) -> _ColumnRef:
    """Reference a column by name inside a predicate."""
    return _ColumnRef(name)


def where(table: Table, expression: Expression) -> Table:
    """Filter ``table`` to the rows where ``expression`` holds."""
    return table.filter(expression.mask(table))
