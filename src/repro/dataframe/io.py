"""CSV serialisation for tables.

A small, dependency-free reader/writer so lakes can be persisted to disk and
the examples can ship data files.  Types are inferred per column: int, then
float, then bool, falling back to string.  Empty fields are nulls.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Any

from ..errors import SchemaError
from .column import Column, DType
from .table import Table

__all__ = ["read_csv", "write_csv", "from_csv_text", "to_csv_text"]

_BOOL_TOKENS = {"true": True, "false": False, "True": True, "False": False}


def _parse_cell(text: str) -> Any:
    if text == "":
        return None
    if text in _BOOL_TOKENS:
        return _BOOL_TOKENS[text]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def from_csv_text(text: str, name: str = "") -> Table:
    """Parse CSV text (first row = header) into a :class:`Table`."""
    reader = csv.reader(_io.StringIO(text))
    rows = list(reader)
    if not rows:
        raise SchemaError("CSV input has no header row")
    header = rows[0]
    if len(set(header)) != len(header):
        raise SchemaError(f"duplicate column names in CSV header: {header}")
    parsed = [[_parse_cell(cell) for cell in row] for row in rows[1:]]
    return Table.from_rows(header, parsed, name=name)


def read_csv(path: str | Path, name: str = "") -> Table:
    """Read a CSV file into a :class:`Table`; table name defaults to stem."""
    path = Path(path)
    with open(path, newline="") as handle:
        text = handle.read()
    return from_csv_text(text, name=name or path.stem)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def to_csv_text(table: Table) -> str:
    """Serialise a table to CSV text (header + rows, '' for nulls)."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.column_names)
    columns = [table.column(n) for n in table.column_names]
    for i in range(table.n_rows):
        writer.writerow([_format_cell(col[i]) for col in columns])
    return buffer.getvalue()


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to a CSV file."""
    with open(Path(path), "w", newline="") as handle:
        handle.write(to_csv_text(table))
