"""Typed, null-aware columns — the storage primitive of the table engine.

A :class:`Column` wraps a numpy array together with an explicit boolean null
mask.  Keeping the mask separate from the values (instead of relying on NaN)
lets integer, boolean and string columns carry missing values with identical
semantics, which the AutoFeat pruning rules (null-ratio thresholding) depend
on.

The engine supports four logical dtypes:

=========  =====================  ==========================================
dtype      physical storage       notes
=========  =====================  ==========================================
FLOAT      ``float64``            nulls also mirrored as NaN for fast math
INT        ``int64``              null slots hold 0 under the mask
BOOL       ``bool_``              null slots hold False under the mask
STRING     ``object``             null slots hold ``None`` under the mask
=========  =====================  ==========================================
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import SchemaError

__all__ = ["DType", "Column"]


class DType(enum.Enum):
    """Logical column type."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this dtype can be used directly in arithmetic."""
        return self in (DType.FLOAT, DType.INT, DType.BOOL)


_NUMPY_KIND_TO_DTYPE = {
    "f": DType.FLOAT,
    "i": DType.INT,
    "u": DType.INT,
    "b": DType.BOOL,
}


def _storage_dtype(dtype: DType) -> np.dtype:
    if dtype is DType.FLOAT:
        return np.dtype(np.float64)
    if dtype is DType.INT:
        return np.dtype(np.int64)
    if dtype is DType.BOOL:
        return np.dtype(np.bool_)
    return np.dtype(object)


def _null_fill_value(dtype: DType) -> Any:
    if dtype is DType.FLOAT:
        return np.nan
    if dtype is DType.INT:
        return 0
    if dtype is DType.BOOL:
        return False
    return None


def infer_dtype(values: Iterable[Any]) -> DType:
    """Infer the logical dtype of a python sequence.

    ``None`` and NaN entries are ignored during inference.  Mixed numeric
    sequences (ints and floats) infer as FLOAT.  Anything containing a
    non-numeric, non-bool value infers as STRING.  An all-null sequence
    infers as FLOAT, the most permissive numeric type.
    """
    saw_float = False
    saw_int = False
    saw_bool = False
    saw_other = False
    for item in values:
        if item is None:
            continue
        if isinstance(item, (bool, np.bool_)):
            saw_bool = True
        elif isinstance(item, (int, np.integer)):
            saw_int = True
        elif isinstance(item, (float, np.floating)):
            if not np.isnan(item):
                saw_float = True
            # NaN floats are treated as nulls, not as float evidence, so a
            # list of ints with NaN gaps still infers as INT-compatible.
        else:
            saw_other = True
    if saw_other:
        return DType.STRING
    if saw_float:
        return DType.FLOAT
    if saw_int:
        return DType.INT
    if saw_bool:
        return DType.BOOL
    return DType.FLOAT


class Column:
    """An immutable, typed, null-aware vector of values.

    Parameters
    ----------
    values:
        Backing data.  May be a numpy array, or any python sequence; the
        values are copied into the canonical physical representation for the
        column's dtype.
    dtype:
        The logical dtype.  When omitted it is inferred from ``values``.
    mask:
        Boolean null mask, ``True`` marking missing entries.  When omitted,
        ``None`` entries (and NaN for float input) are detected
        automatically.
    """

    __slots__ = ("_values", "_mask", "_dtype")

    def __init__(
        self,
        values: Sequence[Any] | np.ndarray,
        dtype: DType | None = None,
        mask: np.ndarray | None = None,
    ):
        values_list: Sequence[Any] | np.ndarray
        if isinstance(values, np.ndarray) and values.dtype.kind in _NUMPY_KIND_TO_DTYPE:
            inferred = _NUMPY_KIND_TO_DTYPE[values.dtype.kind]
            dtype = dtype or inferred
            values_list = values
        else:
            values_list = list(values)
            dtype = dtype or infer_dtype(values_list)

        self._dtype = dtype
        storage = _storage_dtype(dtype)

        if mask is None:
            mask = self._detect_nulls(values_list)
        else:
            mask = np.asarray(mask, dtype=bool).copy()
            if mask.shape != (len(values_list),):
                raise SchemaError(
                    f"mask length {mask.shape} does not match "
                    f"values length {len(values_list)}"
                )

        arr = self._coerce(values_list, storage, mask)
        self._values = arr
        self._mask = mask
        self._values.setflags(write=False)
        self._mask.setflags(write=False)

    @staticmethod
    def _detect_nulls(values: Sequence[Any] | np.ndarray) -> np.ndarray:
        if isinstance(values, np.ndarray) and values.dtype.kind == "f":
            return np.isnan(values)
        if isinstance(values, np.ndarray) and values.dtype.kind in ("i", "u", "b"):
            return np.zeros(len(values), dtype=bool)
        out = np.zeros(len(values), dtype=bool)
        for i, item in enumerate(values):
            if item is None:
                out[i] = True
            elif isinstance(item, (float, np.floating)) and np.isnan(item):
                out[i] = True
        return out

    def _coerce(
        self,
        values: Sequence[Any] | np.ndarray,
        storage: np.dtype,
        mask: np.ndarray,
    ) -> np.ndarray:
        fill = _null_fill_value(self._dtype)
        if isinstance(values, np.ndarray) and values.dtype.kind in ("f", "i", "u", "b"):
            arr = values.astype(storage, copy=True)
            if self._dtype is DType.FLOAT:
                arr[mask] = np.nan
            elif mask.any():
                arr[mask] = fill
            return arr
        if self._dtype is DType.STRING:
            arr = np.empty(len(values), dtype=object)
            for i, item in enumerate(values):
                arr[i] = None if mask[i] else (item if isinstance(item, str) else str(item))
            return arr
        arr = np.full(len(values), fill, dtype=storage)
        for i, item in enumerate(values):
            if not mask[i]:
                arr[i] = item
        return arr

    # -- basic protocol ---------------------------------------------------

    @property
    def dtype(self) -> DType:
        """The logical dtype of the column."""
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The backing array (read-only).  Null slots hold fill values."""
        return self._values

    @property
    def mask(self) -> np.ndarray:
        """Boolean null mask (read-only); ``True`` marks missing entries."""
        return self._mask

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, index: int) -> Any:
        if self._mask[index]:
            return None
        value = self._values[index]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in list(self)[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self._dtype.value}>[{preview}{suffix}] (n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self._dtype is not other._dtype or len(self) != len(other):
            return False
        if not np.array_equal(self._mask, other._mask):
            return False
        valid = ~self._mask
        if self._dtype is DType.FLOAT:
            return bool(
                np.allclose(
                    self._values[valid], other._values[valid], equal_nan=True
                )
            )
        return bool(np.array_equal(self._values[valid], other._values[valid]))

    __hash__ = None  # type: ignore[assignment]  # mutable-style container semantics

    # -- null accounting ---------------------------------------------------

    def null_count(self) -> int:
        """Number of missing entries."""
        return int(self._mask.sum())

    def null_ratio(self) -> float:
        """Fraction of missing entries; 0.0 for an empty column."""
        if len(self) == 0:
            return 0.0
        return float(self._mask.mean())

    def has_nulls(self) -> bool:
        """Whether the column contains at least one missing entry."""
        return bool(self._mask.any())

    # -- transformations ----------------------------------------------------

    def take(self, indices: np.ndarray | Sequence[int]) -> "Column":
        """Gather rows by integer position, preserving nulls."""
        idx = np.asarray(indices, dtype=np.int64)
        return Column(self._values[idx], dtype=self._dtype, mask=self._mask[idx])

    def filter(self, keep: np.ndarray) -> "Column":
        """Keep rows where ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self._values.shape:
            raise SchemaError(
                f"filter mask length {keep.shape} != column length {self._values.shape}"
            )
        return Column(self._values[keep], dtype=self._dtype, mask=self._mask[keep])

    def fill_nulls(self, value: Any) -> "Column":
        """Return a copy with every null replaced by ``value``."""
        values = self._values.copy()
        if self._dtype is DType.STRING:
            values = values.astype(object)
        values[self._mask] = value
        return Column(values, dtype=self._dtype, mask=np.zeros(len(self), dtype=bool))

    def rename_nulls_preserved_cast(self, dtype: DType) -> "Column":
        """Cast to another dtype, keeping the null mask intact."""
        if dtype is self._dtype:
            return self
        if dtype is DType.STRING:
            out = [None if m else str(v) for v, m in zip(self._values, self._mask)]
            return Column(out, dtype=dtype, mask=self._mask.copy())
        if self._dtype is DType.STRING:
            converted = []
            mask = self._mask.copy()
            caster = float if dtype is DType.FLOAT else int
            for i, (item, missing) in enumerate(zip(self._values, self._mask)):
                if missing:
                    converted.append(_null_fill_value(dtype))
                    continue
                try:
                    converted.append(caster(item))
                except (TypeError, ValueError) as exc:
                    raise SchemaError(
                        f"cannot cast string value {item!r} to {dtype.value}"
                    ) from exc
            return Column(np.asarray(converted), dtype=dtype, mask=mask)
        return Column(
            self._values.astype(_storage_dtype(dtype)),
            dtype=dtype,
            mask=self._mask.copy(),
        )

    # -- analytics -----------------------------------------------------------

    def non_null_values(self) -> np.ndarray:
        """The sub-array of present values."""
        return self._values[~self._mask]

    def unique(self) -> list[Any]:
        """Sorted distinct non-null values."""
        present = self.non_null_values()
        if self._dtype is DType.STRING:
            return sorted({str(v) for v in present})
        return sorted({v.item() if isinstance(v, np.generic) else v for v in present})

    def value_counts(self) -> dict[Any, int]:
        """Histogram of non-null values."""
        counts: dict[Any, int] = {}
        for value in self.non_null_values():
            key = value.item() if isinstance(value, np.generic) else value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def mode(self) -> Any:
        """Most frequent non-null value; ties broken by sort order.

        Returns ``None`` when the column is entirely null.
        """
        counts = self.value_counts()
        if not counts:
            return None
        return min(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[0]

    def to_float(self) -> np.ndarray:
        """Numeric view as float64 with NaN at null slots.

        STRING columns are label-encoded by sorted unique value (a stable,
        deterministic encoding), which is what the selection metrics and the
        tree learners consume.
        """
        if self._dtype is DType.STRING:
            mapping = {v: float(i) for i, v in enumerate(self.unique())}
            out = np.full(len(self), np.nan, dtype=np.float64)
            for i, (item, missing) in enumerate(zip(self._values, self._mask)):
                if not missing:
                    out[i] = mapping[str(item)]
            return out
        out = self._values.astype(np.float64)
        out[self._mask] = np.nan
        return out

    def to_list(self) -> list[Any]:
        """Python list representation with ``None`` at null slots."""
        return list(self)

    @staticmethod
    def concat(columns: Sequence["Column"]) -> "Column":
        """Stack columns of the same dtype vertically."""
        if not columns:
            raise SchemaError("cannot concatenate zero columns")
        dtype = columns[0].dtype
        if any(c.dtype is not dtype for c in columns):
            raise SchemaError("cannot concatenate columns of differing dtypes")
        values = np.concatenate([c.values for c in columns])
        mask = np.concatenate([c.mask for c in columns])
        return Column(values, dtype=dtype, mask=mask)

    @staticmethod
    def nulls(n: int, dtype: DType = DType.FLOAT) -> "Column":
        """A column of ``n`` missing entries."""
        fill = _null_fill_value(dtype)
        if dtype is DType.STRING:
            values = np.full(n, None, dtype=object)
        else:
            values = np.full(n, fill, dtype=_storage_dtype(dtype))
        return Column(values, dtype=dtype, mask=np.ones(n, dtype=bool))
