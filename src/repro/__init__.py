"""AutoFeat reproduction: transitive feature discovery over join paths.

A full-stack reproduction of *AutoFeat: Transitive Feature Discovery over
Join Paths* (ICDE 2024), including every substrate it stands on: an
in-memory columnar table engine, a COMA-style schema-matching discovery
layer, the Dataset Relation Graph, information-theoretic feature
selection, a from-scratch tree/boosting ML stack, and the ARDA / MAB /
JoinAll baselines the paper compares against.

Quickstart::

    from repro import AutoFeat, AutoFeatConfig, DatasetRelationGraph
    from repro.discovery import ComaMatcher

    drg = DatasetRelationGraph.from_discovery(tables, ComaMatcher())
    result = AutoFeat(drg).augment("base_table", "label")
    print(result.summary())
"""

from .core import (
    AugmentationResult,
    AutoFeat,
    AutoFeatConfig,
    DiscoveryResult,
    RankedPath,
    TrainedPath,
    autofeat_augment,
)
from .dataframe import Column, DType, JoinIndex, Table
from .engine import (
    ExecutionStats,
    FailureRecord,
    FailureReport,
    FaultInjector,
    FaultManager,
    HopCache,
    JoinEngine,
)
from .errors import (
    ConfigError,
    DatasetError,
    DiscoveryError,
    ErrorBudgetExceeded,
    FaultError,
    GraphError,
    HopBudgetExceeded,
    InjectedFaultError,
    JoinError,
    ModelError,
    ReproError,
    SchemaError,
    SelectionError,
    ServiceError,
)
from .graph import DatasetRelationGraph, DrgDelta, JoinPath, KFKConstraint
from .obs import MetricsRegistry, RunManifest, Span, Tracer
from .service import DiscoveryService, ServiceResponse

__version__ = "1.0.0"

__all__ = [
    "AutoFeat",
    "AutoFeatConfig",
    "autofeat_augment",
    "DiscoveryResult",
    "RankedPath",
    "TrainedPath",
    "AugmentationResult",
    "Table",
    "Column",
    "DType",
    "JoinIndex",
    "JoinEngine",
    "HopCache",
    "ExecutionStats",
    "FailureRecord",
    "FailureReport",
    "FaultManager",
    "FaultInjector",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "RunManifest",
    "DatasetRelationGraph",
    "DrgDelta",
    "KFKConstraint",
    "JoinPath",
    "DiscoveryService",
    "ServiceResponse",
    "ReproError",
    "SchemaError",
    "JoinError",
    "FaultError",
    "HopBudgetExceeded",
    "InjectedFaultError",
    "ErrorBudgetExceeded",
    "GraphError",
    "SelectionError",
    "ModelError",
    "DiscoveryError",
    "ConfigError",
    "DatasetError",
    "ServiceError",
    "__version__",
]
