"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single except clause
while still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column was used in a way that violates its schema.

    Raised for unknown column names, duplicate column names, mismatched
    column lengths, and incompatible dtypes.
    """


class JoinError(ReproError):
    """A join could not be performed (missing join columns, empty result)."""


class FaultError(ReproError):
    """Base class for failures managed by the fault-isolation layer.

    Deliberately *not* a :class:`JoinError` subclass: an ordinary join
    infeasibility is expected pruning input for Algorithm 1, while a
    :class:`FaultError` signals that a hop misbehaved (budget blown,
    injected fault, run-level error budget exhausted) and must flow to the
    run's :class:`repro.engine.FaultManager` instead of the pruning rules.
    """


class HopBudgetExceeded(FaultError):
    """A join hop blew its wall-clock or output-row budget.

    Raised by :class:`repro.engine.JoinEngine` when a hop's execution time
    exceeds ``hop_timeout_seconds`` or its output cardinality would exceed
    ``max_output_rows`` — a typed signal instead of a hang or an OOM.
    """


class InjectedFaultError(FaultError):
    """A deterministic fault injected by :class:`repro.engine.FaultInjector`."""


class ErrorBudgetExceeded(FaultError):
    """A run recorded more failures than its error budget tolerates.

    Raised by :class:`repro.engine.FaultManager` under the
    ``skip_and_record`` / ``retry`` policies once the per-run budget is
    exhausted — graceful degradation is bounded, not unconditional.
    """


class RunBudgetExceeded(ReproError):
    """A run-level anytime budget (wall-clock deadline) expired mid-hop.

    Deliberately *not* a :class:`FaultError`: budget expiry is the normal
    termination signal of anytime navigation (see
    :mod:`repro.core.navigation`), not a failure.  The navigator catches
    it, stops the traversal gracefully and returns the best-k-so-far with
    ``budget_exhausted`` set — it must never reach the
    :class:`repro.engine.FaultManager` and be recorded as a degradation.
    """


class GraphError(ReproError):
    """The dataset relation graph was queried or mutated inconsistently."""


class SelectionError(ReproError):
    """Feature selection was invoked with invalid inputs.

    Examples: an unknown metric name, an empty feature matrix, or a label
    vector whose length disagrees with the features.
    """


class ModelError(ReproError):
    """An ML model was used before fitting or fit on degenerate data."""


class DiscoveryError(ReproError):
    """Dataset discovery (schema matching) failed or was misconfigured."""


class ConfigError(ReproError):
    """An AutoFeat configuration value is out of its legal domain."""


class DatasetError(ReproError):
    """A synthetic dataset/lake generator was given invalid parameters."""


class ServiceError(ReproError):
    """The always-on discovery service was misused or is shut down."""
