"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single except clause
while still being able to discriminate on the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or column was used in a way that violates its schema.

    Raised for unknown column names, duplicate column names, mismatched
    column lengths, and incompatible dtypes.
    """


class JoinError(ReproError):
    """A join could not be performed (missing join columns, empty result)."""


class GraphError(ReproError):
    """The dataset relation graph was queried or mutated inconsistently."""


class SelectionError(ReproError):
    """Feature selection was invoked with invalid inputs.

    Examples: an unknown metric name, an empty feature matrix, or a label
    vector whose length disagrees with the features.
    """


class ModelError(ReproError):
    """An ML model was used before fitting or fit on degenerate data."""


class DiscoveryError(ReproError):
    """Dataset discovery (schema matching) failed or was misconfigured."""


class ConfigError(ReproError):
    """An AutoFeat configuration value is out of its legal domain."""


class DatasetError(ReproError):
    """A synthetic dataset/lake generator was given invalid parameters."""
