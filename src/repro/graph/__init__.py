"""Dataset Relation Graph: multigraph storage and join-path enumeration."""

from .drg import DatasetRelationGraph, DrgDelta, KFKConstraint
from .multigraph import Edge, MultiGraph, OrientedEdge
from .paths import (
    JoinPath,
    bfs_levels,
    count_paths,
    enumerate_paths,
    iter_paths_bfs,
    join_all_path_count,
)

__all__ = [
    "MultiGraph",
    "Edge",
    "OrientedEdge",
    "DatasetRelationGraph",
    "DrgDelta",
    "KFKConstraint",
    "JoinPath",
    "enumerate_paths",
    "iter_paths_bfs",
    "bfs_levels",
    "count_paths",
    "join_all_path_count",
]
