"""Join paths and the join-path search space (Definitions IV.2–IV.4).

A :class:`JoinPath` is a sequence of oriented edges starting at the base
table, visiting distinct nodes.  Every parallel edge in the multigraph
spawns a distinct path, so the search space grows with both path length and
join-column multiplicity — exactly the explosion AutoFeat's pruning is
designed to contain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import factorial
from typing import Iterator

from ..errors import GraphError
from .multigraph import MultiGraph, OrientedEdge

__all__ = [
    "JoinPath",
    "enumerate_paths",
    "iter_paths_bfs",
    "bfs_levels",
    "count_paths",
    "join_all_path_count",
]


@dataclass(frozen=True)
class JoinPath:
    """An acyclic sequence of join hops starting from the base table."""

    base: str
    edges: tuple[OrientedEdge, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        current = self.base
        seen = {self.base}
        for edge in self.edges:
            if edge.source != current:
                raise GraphError(
                    f"discontinuous path: hop starts at {edge.source!r} "
                    f"but previous hop ended at {current!r}"
                )
            if edge.target in seen:
                raise GraphError(f"cyclic path: {edge.target!r} visited twice")
            seen.add(edge.target)
            current = edge.target

    @property
    def length(self) -> int:
        """Number of hops (paper: minimum meaningful length is 1)."""
        return len(self.edges)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Visited datasets, base first."""
        return (self.base,) + tuple(edge.target for edge in self.edges)

    @property
    def terminal(self) -> str:
        """The dataset the path currently ends at."""
        return self.edges[-1].target if self.edges else self.base

    def extend(self, edge: OrientedEdge) -> "JoinPath":
        """A new path with one more hop appended."""
        return JoinPath(self.base, self.edges + (edge,))

    def describe(self) -> str:
        """Human-readable ``A.col -> B.col -> ...`` rendering."""
        if not self.edges:
            return self.base
        hops = [
            f"{e.source}.{e.source_column} -> {e.target}.{e.target_column}"
            for e in self.edges
        ]
        return " | ".join(hops)

    def __repr__(self) -> str:
        return f"JoinPath({self.describe()})"


def iter_paths_bfs(
    graph: MultiGraph,
    base: str,
    max_length: int = 3,
    max_paths: int | None = None,
) -> Iterator[JoinPath]:
    """Yield every acyclic join path from ``base`` in breadth-first order.

    Paths of length 1 are yielded before any of length 2, and so on —
    the level-at-a-time exploration the paper argues for (Section IV-A):
    data quality can be assessed after each level and errors do not
    propagate silently into deep paths.

    ``max_paths`` caps the enumeration — the anytime budget of the
    path-space walk: yield the first ``max_paths`` paths of the canonical
    BFS order and stop.  Because the order is budget-independent, the
    yielded sets nest as the cap grows.  None (the default) enumerates
    everything.
    """
    if base not in graph:
        raise GraphError(f"base table {base!r} is not a node of the graph")
    if max_length < 1:
        raise GraphError(f"max_length must be >= 1, got {max_length}")
    if max_paths is not None and max_paths < 0:
        raise GraphError(f"max_paths must be >= 0 or None, got {max_paths}")
    if max_paths == 0:
        return
    yielded = 0
    queue: deque[JoinPath] = deque([JoinPath(base)])
    while queue:
        path = queue.popleft()
        if path.length >= max_length:
            continue
        visited = set(path.nodes)
        for edge in graph.edges_of(path.terminal):
            if edge.target in visited:
                continue
            extended = path.extend(edge)
            yield extended
            yielded += 1
            if max_paths is not None and yielded >= max_paths:
                return
            queue.append(extended)


def enumerate_paths(
    graph: MultiGraph,
    base: str,
    max_length: int = 3,
    max_paths: int | None = None,
) -> list[JoinPath]:
    """Materialised :func:`iter_paths_bfs`."""
    return list(iter_paths_bfs(graph, base, max_length, max_paths=max_paths))


def count_paths(graph: MultiGraph, base: str, max_length: int = 3) -> int:
    """Size of the join-path search space from ``base`` up to ``max_length``."""
    return sum(1 for _ in iter_paths_bfs(graph, base, max_length))


def bfs_levels(graph: MultiGraph, base: str) -> dict[str, int]:
    """Hop distance of every reachable node from ``base``."""
    if base not in graph:
        raise GraphError(f"base table {base!r} is not a node of the graph")
    levels = {base: 0}
    queue: deque[str] = deque([base])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in levels:
                levels[neighbor] = levels[node] + 1
                queue.append(neighbor)
    return levels


def join_all_path_count(graph: MultiGraph, base: str) -> int:
    """Number of distinct JoinAll orderings, Equation (3) of the paper.

    P = Π_{d=0..D} Π_{v ∈ N(d)} k(v)!  where k(v) is the number of
    not-yet-visited neighbours of node v when the BFS frontier reaches it.
    This is the quantity that makes the JoinAll baseline infeasible on
    dense (data-lake) graphs.
    """
    levels = bfs_levels(graph, base)
    visited_before: dict[str, set[str]] = {}
    product = 1
    for node, level in levels.items():
        unvisited = [
            n
            for n in graph.neighbors(node)
            if levels.get(n, level + 1) > level
        ]
        visited_before[node] = set(unvisited)
        product *= factorial(len(unvisited))
    return product
