"""The Dataset Relation Graph (DRG) — the paper's offline component.

The DRG couples the table collection with a weighted multigraph of join
opportunities.  It is built in one of two ways, mirroring the paper's two
experimental settings:

* **benchmark setting** — from known key/foreign-key constraints, each
  ingested as an edge with weight 1 (:meth:`DatasetRelationGraph.from_constraints`);
* **data-lake setting** — by running a schema-matching dataset-discovery
  algorithm over every table pair and keeping matches above a similarity
  threshold (:meth:`DatasetRelationGraph.from_discovery`).  Any matcher
  that outputs ``(column_a, column_b, score)`` tuples can be plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Iterable, Mapping, Sequence

from ..dataframe import Table
from ..errors import GraphError
from ..obs import NULL_TRACER
from .multigraph import MultiGraph, OrientedEdge

__all__ = ["KFKConstraint", "DrgDelta", "DatasetRelationGraph"]

#: A matcher maps a pair of tables to ``(column_a, column_b, score)`` tuples.
Matcher = Callable[[Table, Table], Iterable[tuple[str, str, float]]]


@dataclass(frozen=True)
class KFKConstraint:
    """A known key/foreign-key relationship between two datasets."""

    table_a: str
    column_a: str
    table_b: str
    column_b: str


@dataclass(frozen=True)
class DrgDelta:
    """One lake mutation, expressed against an existing DRG.

    ``added`` tables are appended after the existing table order,
    ``updated`` tables replace their namesakes *in place* (keeping their
    position), and ``dropped`` names are removed.  ``pair_edges`` carries
    the freshly re-matched ``(column_a, column_b, weight)`` tuples for
    every *affected* unordered table pair — a pair where at least one
    endpoint was added, updated or dropped — keyed by ``(name_a,
    name_b)`` with ``name_a`` preceding ``name_b`` in the post-mutation
    table order.  Scores must already be thresholded: everything in
    ``pair_edges`` becomes an edge.

    Unaffected pairs are deliberately absent: :meth:`DatasetRelationGraph
    .apply_delta` re-uses their existing :class:`~repro.graph.Edge`
    instances untouched, which is what makes a mutation O(affected pairs)
    instead of O(n²).
    """

    added: tuple[Table, ...] = ()
    updated: tuple[Table, ...] = ()
    dropped: tuple[str, ...] = ()
    pair_edges: Mapping[tuple[str, str], tuple[tuple[str, str, float], ...]] = field(
        default_factory=dict
    )

    @property
    def affected_tables(self) -> frozenset[str]:
        """Names whose profile/matches this delta replaces or removes."""
        return frozenset(
            [t.name for t in self.added]
            + [t.name for t in self.updated]
            + list(self.dropped)
        )


class DatasetRelationGraph:
    """Tables plus the multigraph of join opportunities between them."""

    def __init__(self, tables: Sequence[Table]):
        self._tables: dict[str, Table] = {}
        self._graph = MultiGraph()
        for table in tables:
            if not table.name:
                raise GraphError("every table in a DRG needs a non-empty name")
            if table.name in self._tables:
                raise GraphError(f"duplicate table name {table.name!r}")
            self._tables[table.name] = table
            self._graph.add_node(table.name)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_constraints(
        cls,
        tables: Sequence[Table],
        constraints: Iterable[KFKConstraint],
    ) -> "DatasetRelationGraph":
        """Benchmark setting: ingest integrity constraints as weight-1 edges."""
        drg = cls(tables)
        for constraint in constraints:
            drg.add_relationship(
                constraint.table_a,
                constraint.column_a,
                constraint.table_b,
                constraint.column_b,
                weight=1.0,
            )
        return drg

    @classmethod
    def from_discovery(
        cls,
        tables: Sequence[Table],
        matcher: Matcher,
        threshold: float = 0.55,
        tracer=NULL_TRACER,
    ) -> "DatasetRelationGraph":
        """Data-lake setting: discover edges with a schema matcher.

        Every unordered table pair is matched once; matches whose score is
        at or above ``threshold`` become edges weighted by that score.  The
        paper's default threshold of 0.55 deliberately lets spurious (but
        not absurd) connections through — AutoFeat's pruning is supposed to
        handle them.

        Index-backed matchers (:class:`~repro.discovery.index
        .CandidateFilteredMatcher`) expose two optional hooks honoured
        here: ``begin_lake(tables)`` builds the standing sketch index
        once up front (traced as the ``drg.index_build`` span), and
        ``candidate_table_pairs()`` enumerates the only table pairs with
        any candidate column pair — in canonical ``combinations`` order —
        so construction skips pairs an exact scan would score to nothing.
        At candidate recall 1.0 the resulting DRG is bit-identical to the
        full quadratic scan's.
        """
        if not 0.0 < threshold <= 1.0:
            raise GraphError(f"threshold must be in (0, 1], got {threshold}")
        drg = cls(tables)
        if hasattr(matcher, "begin_lake"):
            with tracer.span("drg.index_build", tables=len(tables)):
                matcher.begin_lake(tables)
        if hasattr(matcher, "candidate_table_pairs"):
            by_name = {table.name: table for table in tables}
            pairs = [
                (by_name[name_a], by_name[name_b])
                for name_a, name_b in matcher.candidate_table_pairs()
            ]
        else:
            pairs = list(combinations(tables, 2))
        with tracer.span(
            "drg.match", tables=len(tables), table_pairs=len(pairs)
        ):
            for table_a, table_b in pairs:
                for column_a, column_b, score in matcher(table_a, table_b):
                    if score >= threshold:
                        drg.add_relationship(
                            table_a.name, column_a, table_b.name, column_b, weight=score
                        )
        return drg

    def add_relationship(
        self,
        table_a: str,
        column_a: str,
        table_b: str,
        column_b: str,
        weight: float,
    ) -> None:
        """Add one join opportunity, validating both endpoints exist."""
        for table_name, column_name in ((table_a, column_a), (table_b, column_b)):
            table = self.table(table_name)
            if column_name not in table:
                raise GraphError(
                    f"table {table_name!r} has no column {column_name!r}"
                )
        self._graph.add_edge(table_a, table_b, column_a, column_b, weight)

    # -- incremental maintenance --------------------------------------------

    def apply_delta(self, delta: DrgDelta) -> "DatasetRelationGraph":
        """A new DRG with the delta applied, sharing unchanged state.

        The result is **bit-identical** to a cold
        :meth:`from_discovery`-style rebuild over the post-mutation table
        sequence, provided ``delta.pair_edges`` holds exactly what the
        matcher would emit for the affected pairs: tables keep their
        relative order (updated in place, added appended), and edges are
        replayed pair-by-pair in the same ``combinations`` sequence a
        cold build walks, so every adjacency list — and with it
        ``neighbors()`` order, traversal order and ranking — matches the
        cold build exactly.  Table objects and the :class:`Edge`
        instances of unaffected pairs are *shared*, not copied; only the
        adjacency lists are rebuilt (cheap, O(edges)).

        The original DRG is left untouched — callers holding it (e.g.
        in-flight service requests) keep a consistent snapshot.
        """
        dropped = set(delta.dropped)
        updated = {t.name: t for t in delta.updated}
        for name in dropped | set(updated):
            if name not in self._tables:
                raise GraphError(
                    f"delta refers to unknown table {name!r}; "
                    f"known: {self.table_names}"
                )
        overlap = dropped & set(updated)
        if overlap:
            raise GraphError(
                f"delta both updates and drops {sorted(overlap)}"
            )
        order: list[Table] = []
        for name, table in self._tables.items():
            if name in dropped:
                continue
            order.append(updated.get(name, table))
        for table in delta.added:
            if table.name in self._tables and table.name not in dropped:
                raise GraphError(
                    f"delta adds table {table.name!r} which already exists"
                )
            order.append(table)

        clone = DatasetRelationGraph(order)
        affected = delta.affected_tables
        for name_a, name_b in combinations([t.name for t in order], 2):
            if name_a in affected or name_b in affected:
                for column_a, column_b, weight in delta.pair_edges.get(
                    (name_a, name_b), ()
                ):
                    clone.add_relationship(
                        name_a, column_a, name_b, column_b, weight=weight
                    )
            else:
                for edge in self._graph.edge_objects_between(name_a, name_b):
                    clone._graph.adopt_edge(edge)
        return clone

    def edge_fingerprint(self) -> tuple[tuple[str, str, str, str, float], ...]:
        """Canonical, order-independent digest of every edge and weight.

        Used by the incremental-vs-rebuild equivalence gates: two DRGs
        over the same lake are equivalent iff their fingerprints (and
        table orders) match.
        """
        rows = []
        for edge in self._graph.all_edges():
            forward = (edge.node_a, edge.column_a, edge.node_b, edge.column_b)
            backward = (edge.node_b, edge.column_b, edge.node_a, edge.column_a)
            rows.append(min(forward, backward) + (edge.weight,))
        return tuple(sorted(rows))

    # -- queries -------------------------------------------------------------

    @property
    def graph(self) -> MultiGraph:
        """The underlying multigraph."""
        return self._graph

    @property
    def table_names(self) -> list[str]:
        return list(self._tables.keys())

    @property
    def tables(self) -> list[Table]:
        """The table objects in canonical (insertion) order."""
        return list(self._tables.values())

    @property
    def n_tables(self) -> int:
        return len(self._tables)

    @property
    def n_relationships(self) -> int:
        return self._graph.n_edges

    def table(self, name: str) -> Table:
        """Look up a dataset by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise GraphError(
                f"unknown table {name!r}; known: {self.table_names}"
            ) from None

    def neighbors(self, name: str) -> list[str]:
        """Datasets joinable with ``name`` through at least one edge."""
        return self._graph.neighbors(name)

    def join_options(self, table_a: str, table_b: str) -> list[OrientedEdge]:
        """All parallel join opportunities between two datasets."""
        return self._graph.edges_between(table_a, table_b)

    def best_join_options(self, table_a: str, table_b: str) -> list[OrientedEdge]:
        """Similarity-score pruning at the join-column level (Section IV-C).

        Keeps only the edge(s) with the maximum similarity score between
        the two datasets; ties all survive, each as its own join path.
        """
        options = self.join_options(table_a, table_b)
        if not options:
            return []
        top = max(edge.weight for edge in options)
        return [edge for edge in options if edge.weight == top]

    def with_simple_graph(self) -> "DatasetRelationGraph":
        """A copy whose multigraph is collapsed to a simple graph.

        Used by the multigraph-vs-simple-graph ablation (Table I contrasts
        AutoFeat's multigraph with the simple graphs of ARDA/MAB).
        """
        clone = DatasetRelationGraph(list(self._tables.values()))
        clone._graph = self._graph.simple_graph()
        return clone

    def __repr__(self) -> str:
        return (
            f"DatasetRelationGraph(tables={self.n_tables}, "
            f"relationships={self.n_relationships})"
        )
