"""A weighted undirected multigraph over datasets.

The Dataset Relation Graph needs parallel edges: two tables can be joinable
through several different column pairs, each with its own similarity score
(Definition IV.3).  Nodes are dataset names; each edge records the join
column on *both* endpoints plus a weight in (0, 1].

Edges are stored once and exposed through :class:`OrientedEdge` views so
traversal code always sees "my column -> their column" from the perspective
of the node it stands on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError

__all__ = ["Edge", "OrientedEdge", "MultiGraph"]


@dataclass(frozen=True)
class Edge:
    """An undirected join opportunity between two datasets."""

    node_a: str
    node_b: str
    column_a: str
    column_b: str
    weight: float

    def oriented_from(self, node: str) -> "OrientedEdge":
        """View this edge from ``node``'s side."""
        if node == self.node_a:
            return OrientedEdge(
                source=self.node_a,
                target=self.node_b,
                source_column=self.column_a,
                target_column=self.column_b,
                weight=self.weight,
            )
        if node == self.node_b:
            return OrientedEdge(
                source=self.node_b,
                target=self.node_a,
                source_column=self.column_b,
                target_column=self.column_a,
                weight=self.weight,
            )
        raise GraphError(f"edge {self} is not incident to node {node!r}")


@dataclass(frozen=True)
class OrientedEdge:
    """An edge as seen while standing on ``source`` and looking at ``target``."""

    source: str
    target: str
    source_column: str
    target_column: str
    weight: float

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Identity of the underlying join opportunity, direction-free."""
        forward = (self.source, self.source_column, self.target, self.target_column)
        backward = (self.target, self.target_column, self.source, self.source_column)
        return min(forward, backward)


class MultiGraph:
    """Adjacency-list multigraph keyed by dataset name."""

    def __init__(self) -> None:
        self._adjacency: dict[str, list[Edge]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Register a dataset node (idempotent)."""
        if not name:
            raise GraphError("node name must be non-empty")
        self._adjacency.setdefault(name, [])

    def add_edge(
        self,
        node_a: str,
        node_b: str,
        column_a: str,
        column_b: str,
        weight: float = 1.0,
    ) -> Edge:
        """Add a join opportunity between two existing nodes.

        Parallel edges with different column pairs are allowed; adding the
        exact same (nodes, columns) pair twice keeps the higher weight
        instead of duplicating.
        """
        for node in (node_a, node_b):
            if node not in self._adjacency:
                raise GraphError(f"unknown node {node!r}; add_node it first")
        if node_a == node_b:
            raise GraphError(f"self-join edges are not allowed (node {node_a!r})")
        if not 0.0 < weight <= 1.0:
            raise GraphError(f"edge weight must be in (0, 1], got {weight}")

        edge = Edge(node_a, node_b, column_a, column_b, weight)
        existing = self._find_duplicate(edge)
        if existing is not None:
            if weight > existing.weight:
                self._remove_edge(existing)
            else:
                return existing
        self._adjacency[node_a].append(edge)
        self._adjacency[node_b].append(edge)
        return edge

    def _find_duplicate(self, edge: Edge) -> Edge | None:
        wanted = edge.oriented_from(edge.node_a).key
        for candidate in self._adjacency[edge.node_a]:
            if candidate.oriented_from(edge.node_a).key == wanted:
                return candidate
        return None

    def _remove_edge(self, edge: Edge) -> None:
        self._adjacency[edge.node_a].remove(edge)
        self._adjacency[edge.node_b].remove(edge)

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Dataset names in insertion order."""
        return list(self._adjacency.keys())

    @property
    def n_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def n_edges(self) -> int:
        """Number of distinct undirected edges."""
        return sum(len(edges) for edges in self._adjacency.values()) // 2

    def __contains__(self, name: str) -> bool:
        return name in self._adjacency

    def edges_of(self, node: str) -> list[OrientedEdge]:
        """All incident edges oriented outward from ``node``."""
        if node not in self._adjacency:
            raise GraphError(f"unknown node {node!r}")
        return [edge.oriented_from(node) for edge in self._adjacency[node]]

    def neighbors(self, node: str) -> list[str]:
        """Distinct adjacent nodes, in first-edge order."""
        seen: dict[str, None] = {}
        for oriented in self.edges_of(node):
            seen.setdefault(oriented.target)
        return list(seen.keys())

    def edges_between(self, node_a: str, node_b: str) -> list[OrientedEdge]:
        """All parallel edges between two nodes, oriented from ``node_a``."""
        return [e for e in self.edges_of(node_a) if e.target == node_b]

    def edge_objects_between(self, node_a: str, node_b: str) -> list[Edge]:
        """The shared :class:`Edge` instances between two nodes.

        Returned in insertion order as seen from ``node_a``'s adjacency
        list — for a graph built pair-by-pair (the discovery builders)
        this is exactly the order the pair's edges were originally added,
        which is what lets :meth:`adopt_edge` replay an unchanged pair
        bit-identically during an incremental rebuild.
        """
        if node_a not in self._adjacency:
            raise GraphError(f"unknown node {node_a!r}")
        return [
            edge
            for edge in self._adjacency[node_a]
            if node_b in (edge.node_a, edge.node_b)
        ]

    def adopt_edge(self, edge: Edge) -> Edge:
        """Append an existing :class:`Edge` instance without copying it.

        The incremental-rebuild fast path: edges of unaffected table pairs
        are *shared* between the old and new graph (``Edge`` is frozen, so
        aliasing is safe).  Both endpoints must already be nodes; the
        duplicate check is skipped because adopted edges come from a graph
        that already deduplicated them.
        """
        for node in (edge.node_a, edge.node_b):
            if node not in self._adjacency:
                raise GraphError(f"unknown node {node!r}; add_node it first")
        self._adjacency[edge.node_a].append(edge)
        self._adjacency[edge.node_b].append(edge)
        return edge

    def degree(self, node: str) -> int:
        """Number of incident edges (parallel edges each count)."""
        return len(self.edges_of(node))

    def all_edges(self) -> list[Edge]:
        """Every undirected edge exactly once, deterministic order."""
        seen: set[tuple[str, str, str, str]] = set()
        out: list[Edge] = []
        for node in self._adjacency:
            for edge in self._adjacency[node]:
                key = edge.oriented_from(edge.node_a).key
                if key not in seen:
                    seen.add(key)
                    out.append(edge)
        return out

    def simple_graph(self) -> "MultiGraph":
        """Collapse parallel edges, keeping only the heaviest per node pair.

        This is the "simple graph" DRG variant that ARDA/MAB assume
        (Table I); used by the multigraph-vs-simple ablation.
        """
        collapsed = MultiGraph()
        for node in self.nodes:
            collapsed.add_node(node)
        best: dict[tuple[str, str], Edge] = {}
        for edge in self.all_edges():
            pair = tuple(sorted((edge.node_a, edge.node_b)))
            current = best.get(pair)
            if current is None or edge.weight > current.weight:
                best[pair] = edge
        for edge in best.values():
            collapsed.add_edge(
                edge.node_a, edge.node_b, edge.column_a, edge.column_b, edge.weight
            )
        return collapsed

    def __repr__(self) -> str:
        return f"MultiGraph(nodes={self.n_nodes}, edges={self.n_edges})"
