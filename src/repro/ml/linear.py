"""L1-regularised logistic regression via proximal gradient descent.

The paper's "Linear Regression with L1 regularisation (LR)" baseline model
for classification — in practice a sparse linear classifier.  We optimise
the logistic loss with ISTA (gradient step + soft-thresholding), on
z-scored features, with an unpenalised intercept.  Multi-class tasks are
handled one-vs-rest.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = ["LogisticRegressionL1"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


def _soft_threshold(w: np.ndarray, step: float) -> np.ndarray:
    return np.sign(w) * np.maximum(np.abs(w) - step, 0.0)


class _BinaryL1Logistic:
    """One binary L1 logistic problem solved with ISTA."""

    def __init__(self, alpha: float, max_iter: int, tol: float):
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.weights: np.ndarray | None = None
        self.intercept = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BinaryL1Logistic":
        n, d = X.shape
        w = np.zeros(d, dtype=np.float64)
        b = 0.0
        # Lipschitz constant of the logistic gradient: ||X||^2 / (4n).
        lipschitz = (np.linalg.norm(X, ord=2) ** 2) / (4.0 * n) + 1e-12
        step = 1.0 / lipschitz
        for _ in range(self.max_iter):
            z = X @ w + b
            residual = _sigmoid(z) - y
            grad_w = X.T @ residual / n
            grad_b = float(residual.mean())
            w_new = _soft_threshold(w - step * grad_w, step * self.alpha)
            b_new = b - step * grad_b
            delta = max(float(np.max(np.abs(w_new - w))), abs(b_new - b))
            w, b = w_new, b_new
            if delta < self.tol:
                break
        self.weights = w
        self.intercept = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ModelError("model is not fitted")
        return X @ self.weights + self.intercept


class LogisticRegressionL1:
    """Sparse linear classifier (logistic loss + L1 penalty).

    Parameters
    ----------
    alpha:
        L1 penalty strength; larger values zero out more coefficients.
    max_iter, tol:
        ISTA iteration budget and convergence threshold on the max
        coefficient change.
    """

    def __init__(self, alpha: float = 0.01, max_iter: int = 400, tol: float = 1e-5):
        if alpha < 0:
            raise ModelError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self._models: list[_BinaryL1Logistic] = []
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.n_classes_ = 0

    def _standardise(self, X: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionL1":
        """Fit on class indices ``y`` in ``0..C-1``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ModelError("X/y shape mismatch")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        Xs = self._standardise(X)
        self.n_classes_ = int(y.max()) + 1 if y.size else 0
        self._models = []
        if self.n_classes_ <= 2:
            model = _BinaryL1Logistic(self.alpha, self.max_iter, self.tol)
            model.fit(Xs, (y == (self.n_classes_ - 1)).astype(np.float64))
            self._models.append(model)
            return self
        for cls in range(self.n_classes_):
            model = _BinaryL1Logistic(self.alpha, self.max_iter, self.tol)
            model.fit(Xs, (y == cls).astype(np.float64))
            self._models.append(model)
        return self

    @property
    def coefficients(self) -> np.ndarray:
        """Per-class weight matrix in standardised feature space."""
        if not self._models:
            raise ModelError("model is not fitted")
        return np.vstack([m.weights for m in self._models])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix."""
        if not self._models:
            raise ModelError("model is not fitted")
        Xs = self._standardise(np.asarray(X, dtype=np.float64))
        if self.n_classes_ <= 2:
            p1 = _sigmoid(self._models[0].decision_function(Xs))
            return np.column_stack([1.0 - p1, p1])
        scores = np.column_stack(
            [_sigmoid(m.decision_function(Xs)) for m in self._models]
        )
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class index per row."""
        return np.argmax(self.predict_proba(X), axis=1)
