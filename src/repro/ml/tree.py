"""CART decision trees (classification and regression) on numpy.

Split search is vectorised per feature: values are sorted once per node and
candidate thresholds are scored with cumulative statistics (class counts
for Gini, sum/sum-of-squares for variance).  ``max_features`` enables the
column subsampling the forest ensembles rely on, and ``random_thresholds``
gives the Extra-Trees variant its randomised cut points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_EPS = 1e-12


@dataclass
class _Node:
    """A tree node; leaves carry ``value`` and internals carry a split."""

    value: np.ndarray | float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _validate_matrix(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ModelError("X must be a 2-D matrix")
    if X.shape[0] != y.shape[0]:
        raise ModelError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ModelError("cannot fit on zero rows")
    if not np.isfinite(X).all():
        raise ModelError("X contains non-finite values; encode/impute first")
    return X, y


class _BaseTree:
    """Shared recursive builder; subclasses define impurity bookkeeping."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_thresholds: bool = False,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ModelError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_thresholds = random_thresholds
        self.seed = seed
        self._root: _Node | None = None
        self._n_features = 0
        self._importance_gain: np.ndarray | None = None

    # -- subclass hooks ------------------------------------------------------

    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _split_gain(
        self, x: np.ndarray, y: np.ndarray, min_leaf: int
    ) -> tuple[float, float]:
        """Best (gain, threshold) for one feature; gain <= 0 means no split."""
        raise NotImplementedError

    # -- fitting -----------------------------------------------------------------

    def _feature_candidates(self, rng: np.random.Generator) -> np.ndarray:
        d = self._n_features
        spec = self.max_features
        if spec is None:
            k = d
        elif spec == "sqrt":
            k = max(1, int(np.sqrt(d)))
        elif isinstance(spec, float):
            k = max(1, int(spec * d))
        elif isinstance(spec, int):
            k = max(1, min(spec, d))
        else:
            raise ModelError(f"invalid max_features: {spec!r}")
        if k >= d:
            return np.arange(d)
        return rng.choice(d, size=k, replace=False)

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node = _Node(value=self._leaf_value(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or self._is_pure(y)
        ):
            return node
        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0
        for j in self._feature_candidates(rng):
            x = X[:, j]
            if self.random_thresholds:
                gain, threshold = self._random_split_gain(x, y, rng)
            else:
                gain, threshold = self._split_gain(x, y, self.min_samples_leaf)
            if gain > best_gain + _EPS:
                best_gain, best_feature, best_threshold = gain, int(j), threshold
        if best_feature < 0:
            return node
        goes_left = X[:, best_feature] <= best_threshold
        n_left = int(goes_left.sum())
        if n_left < self.min_samples_leaf or len(y) - n_left < self.min_samples_leaf:
            return node
        node.feature = best_feature
        node.threshold = best_threshold
        if self._importance_gain is not None:
            self._importance_gain[best_feature] += best_gain * len(y)
        node.left = self._build(X[goes_left], y[goes_left], depth + 1, rng)
        node.right = self._build(X[~goes_left], y[~goes_left], depth + 1, rng)
        return node

    def _random_split_gain(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Extra-Trees style: score a single uniform-random threshold."""
        lo, hi = float(x.min()), float(x.max())
        if hi <= lo:
            return 0.0, 0.0
        threshold = float(rng.uniform(lo, hi))
        goes_left = x <= threshold
        n_left = int(goes_left.sum())
        if n_left < self.min_samples_leaf or len(y) - n_left < self.min_samples_leaf:
            return 0.0, 0.0
        gain = self._impurity(y) - (
            n_left / len(y) * self._impurity(y[goes_left])
            + (len(y) - n_left) / len(y) * self._impurity(y[~goes_left])
        )
        return float(gain), threshold

    def _is_pure(self, y: np.ndarray) -> bool:
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _predict_node(self, X: np.ndarray) -> list:
        if self._root is None:
            raise ModelError("tree is not fitted")
        out = [None] * len(X)
        stack: list[tuple[_Node, np.ndarray]] = [(self._root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf or node.left is None or node.right is None:
                for i in idx:
                    out[i] = node.value
                continue
            goes_left = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[goes_left]))
            stack.append((node.right, idx[~goes_left]))
        return out

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total impurity decrease per feature, normalised to sum to 1.

        The importance signal ARDA's random-injection selection thresholds
        against.  A stump-less tree (no splits) reports all zeros.
        """
        if self._importance_gain is None:
            raise ModelError("tree is not fitted")
        total = self._importance_gain.sum()
        if total == 0.0:
            return np.zeros_like(self._importance_gain)
        return self._importance_gain / total

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise ModelError("tree is not fitted")
        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise ModelError("tree is not fitted")
        return walk(self._root)


class DecisionTreeClassifier(_BaseTree):
    """CART classifier minimising Gini impurity."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.n_classes_ = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on class indices ``y`` in ``0..C-1``."""
        X, y = _validate_matrix(X, y)
        y = y.astype(np.int64)
        if y.min() < 0:
            raise ModelError("class labels must be non-negative indices")
        self.n_classes_ = int(y.max()) + 1
        self._n_features = X.shape[1]
        self._importance_gain = np.zeros(X.shape[1], dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        return self

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        return counts / counts.sum()

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        p = np.bincount(y, minlength=self.n_classes_) / len(y)
        return float(1.0 - np.sum(p * p))

    def _split_gain(
        self, x: np.ndarray, y: np.ndarray, min_leaf: int
    ) -> tuple[float, float]:
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(ys)
        one_hot = np.zeros((n, self.n_classes_), dtype=np.float64)
        one_hot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(one_hot, axis=0)
        total = left_counts[-1]
        # Candidate split after position i (1-based prefix of size i+1).
        sizes_left = np.arange(1, n, dtype=np.float64)
        lc = left_counts[:-1]
        rc = total - lc
        gini_left = 1.0 - np.sum((lc / sizes_left[:, None]) ** 2, axis=1)
        sizes_right = n - sizes_left
        gini_right = 1.0 - np.sum((rc / sizes_right[:, None]) ** 2, axis=1)
        parent = self._impurity(ys)
        gains = parent - (sizes_left * gini_left + sizes_right * gini_right) / n
        valid = (xs[:-1] < xs[1:]) & (sizes_left >= min_leaf) & (sizes_right >= min_leaf)
        if not valid.any():
            return 0.0, 0.0
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        threshold = 0.5 * (xs[best] + xs[best + 1])
        return float(gains[best]), float(threshold)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities (leaf class frequencies)."""
        X = np.asarray(X, dtype=np.float64)
        return np.vstack(self._predict_node(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class index per row."""
        return np.argmax(self.predict_proba(X), axis=1)


class DecisionTreeRegressor(_BaseTree):
    """CART regressor minimising within-node variance (squared loss)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit on real-valued targets."""
        X, y = _validate_matrix(X, y)
        y = y.astype(np.float64)
        self._n_features = X.shape[1]
        self._importance_gain = np.zeros(X.shape[1], dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        return self

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _is_pure(self, y: np.ndarray) -> bool:
        return bool(np.all(y == y[0]))

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        return float(np.var(y))

    def _split_gain(
        self, x: np.ndarray, y: np.ndarray, min_leaf: int
    ) -> tuple[float, float]:
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(ys)
        csum = np.cumsum(ys)
        csum_sq = np.cumsum(ys * ys)
        sizes_left = np.arange(1, n, dtype=np.float64)
        sizes_right = n - sizes_left
        sum_left = csum[:-1]
        sum_right = csum[-1] - sum_left
        sq_left = csum_sq[:-1]
        sq_right = csum_sq[-1] - sq_left
        var_left = sq_left / sizes_left - (sum_left / sizes_left) ** 2
        var_right = sq_right / sizes_right - (sum_right / sizes_right) ** 2
        parent = self._impurity(ys)
        gains = parent - (sizes_left * var_left + sizes_right * var_right) / n
        valid = (xs[:-1] < xs[1:]) & (sizes_left >= min_leaf) & (sizes_right >= min_leaf)
        if not valid.any():
            return 0.0, 0.0
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        threshold = 0.5 * (xs[best] + xs[best + 1])
        return float(gains[best]), float(threshold)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean-of-leaf predictions."""
        X = np.asarray(X, dtype=np.float64)
        return np.asarray(self._predict_node(X), dtype=np.float64)
