"""From-scratch ML substrate: trees, ensembles, boosting, KNN, linear-L1.

Stands in for scikit-learn / LightGBM / XGBoost / AutoGluon, which the
paper uses but which are unavailable here.  Only the qualitative properties
the evaluation depends on matter: tree models exploit relevant features and
tolerate noise; KNN/linear models degrade with irrelevant dimensions.
"""

from .automl import (
    MODEL_REGISTRY,
    NON_TREE_MODELS,
    TREE_MODELS,
    AutoTabularPredictor,
    EvaluationResult,
    evaluate_accuracy,
)
from .encoding import TabularEncoder, encode_labels
from .forest import ExtraTreesClassifier, RandomForestClassifier
from .gbdt import (
    GradientBoostingBinaryClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
)
from .knn import KNeighborsClassifier
from .linear import LogisticRegressionL1
from .metrics import accuracy, auc_score, confusion_counts, f1_score
from .tree import DecisionTreeClassifier, DecisionTreeRegressor
from .validation import CrossValidationResult, cross_validate, evaluate_auc

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "ExtraTreesClassifier",
    "LightGBMClassifier",
    "XGBoostClassifier",
    "GradientBoostingBinaryClassifier",
    "KNeighborsClassifier",
    "LogisticRegressionL1",
    "TabularEncoder",
    "encode_labels",
    "accuracy",
    "auc_score",
    "f1_score",
    "confusion_counts",
    "AutoTabularPredictor",
    "EvaluationResult",
    "evaluate_accuracy",
    "cross_validate",
    "CrossValidationResult",
    "evaluate_auc",
    "MODEL_REGISTRY",
    "TREE_MODELS",
    "NON_TREE_MODELS",
]
