"""Bagged tree ensembles: random forest and extremely-randomised trees.

Two of the four tree models the paper evaluates with (Random Forest and
Extreme Randomised Trees).  Both average the class-probability outputs of
their member trees; they differ in how members are decorrelated:

* **RandomForestClassifier** — bootstrap row sampling + sqrt-feature
  subsampling with exact best-split search;
* **ExtraTreesClassifier** — full rows, sqrt-feature subsampling, and a
  *random* threshold per candidate feature.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier", "ExtraTreesClassifier"]


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []
        self.n_classes_ = 0

    _bootstrap = True
    _random_thresholds = False

    def fit(self, X: np.ndarray, y: np.ndarray):
        """Fit all member trees on class indices ``y`` in ``0..C-1``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.n_classes_ = int(y.max()) + 1 if y.size else 0
        rng = np.random.default_rng(self.seed)
        self._trees = []
        n = len(y)
        for t in range(self.n_estimators):
            if self._bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_thresholds=self._random_thresholds,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.n_classes_ = self.n_classes_
            tree.fit(X[idx], y[idx])
            # A bootstrap sample may miss the rarest class; normalise the
            # tree's class count so probability vectors align when averaged.
            if tree.n_classes_ != self.n_classes_:
                tree.n_classes_ = self.n_classes_
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of member-tree class probabilities."""
        if not self._trees:
            raise ModelError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        total = np.zeros((len(X), self.n_classes_), dtype=np.float64)
        for tree in self._trees:
            proba = tree.predict_proba(X)
            if proba.shape[1] < self.n_classes_:
                padded = np.zeros((len(X), self.n_classes_))
                padded[:, : proba.shape[1]] = proba
                proba = padded
            total += proba
        return total / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-probability class index per row."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean of member-tree impurity-decrease importances."""
        if not self._trees:
            raise ModelError("forest is not fitted")
        return np.mean([t.feature_importances_ for t in self._trees], axis=0)


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated CART trees with feature subsampling."""

    _bootstrap = True
    _random_thresholds = False


class ExtraTreesClassifier(_BaseForest):
    """Extremely-randomised trees: full sample, random thresholds."""

    _bootstrap = False
    _random_thresholds = True
