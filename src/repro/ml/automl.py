"""AutoGluon-style tabular prediction wrapper.

The paper trains its models "using AutoGluon, which automatically handles
data encoding and hyper-parameter tuning".  :class:`AutoTabularPredictor`
is that layer: give it a Table and a label column, it encodes features,
stratified-splits, fits the requested model from the registry and reports
test accuracy.  :func:`evaluate_accuracy` is the one-call form every
experiment in the benchmark harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..dataframe import Table, train_test_split_indices
from ..errors import ModelError
from .encoding import TabularEncoder, encode_labels
from .forest import ExtraTreesClassifier, RandomForestClassifier
from .gbdt import LightGBMClassifier, XGBoostClassifier
from .knn import KNeighborsClassifier
from .linear import LogisticRegressionL1
from .metrics import accuracy

__all__ = [
    "MODEL_REGISTRY",
    "TREE_MODELS",
    "NON_TREE_MODELS",
    "AutoTabularPredictor",
    "EvaluationResult",
    "evaluate_accuracy",
]

MODEL_REGISTRY: dict[str, Callable[[int], object]] = {
    "lightgbm": lambda seed: LightGBMClassifier(seed=seed),
    "xgboost": lambda seed: XGBoostClassifier(seed=seed),
    "random_forest": lambda seed: RandomForestClassifier(seed=seed),
    "extra_trees": lambda seed: ExtraTreesClassifier(seed=seed),
    "knn": lambda seed: KNeighborsClassifier(),
    "linear_l1": lambda seed: LogisticRegressionL1(),
}

#: The four tree-based models of Figures 4 and 6.
TREE_MODELS = ("lightgbm", "xgboost", "random_forest", "extra_trees")

#: The two non-tree models of Figures 5 and 7.
NON_TREE_MODELS = ("knn", "linear_l1")


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one train/evaluate cycle."""

    model_name: str
    accuracy: float
    n_train: int
    n_test: int
    n_features: int
    feature_names: tuple[str, ...]


class AutoTabularPredictor:
    """Encode, split, fit and score one tabular model."""

    def __init__(self, model_name: str = "lightgbm", seed: int = 0):
        if model_name not in MODEL_REGISTRY:
            raise ModelError(
                f"unknown model {model_name!r}; "
                f"expected one of {sorted(MODEL_REGISTRY)}"
            )
        self.model_name = model_name
        self.seed = seed
        self._encoder = TabularEncoder()
        self._model: object | None = None
        self._classes: list | None = None

    def fit(
        self,
        table: Table,
        label_column: str,
        feature_names: list[str] | None = None,
    ) -> "AutoTabularPredictor":
        """Fit on all rows of ``table`` using the given feature subset."""
        features = self._feature_list(table, label_column, feature_names)
        X = self._encoder.fit_transform(table, features)
        y, self._classes = encode_labels(self._label_array(table, label_column))
        model = MODEL_REGISTRY[self.model_name](self.seed)
        model.fit(X, y)
        self._model = model
        return self

    def predict(self, table: Table) -> list:
        """Predict raw label values for each row of ``table``."""
        if self._model is None or self._classes is None:
            raise ModelError("predictor is not fitted")
        X = self._encoder.transform(table)
        indices = self._model.predict(X)
        return [self._classes[i] for i in indices]

    @staticmethod
    def _label_array(table: Table, label_column: str) -> np.ndarray:
        column = table.column(label_column)
        if column.has_nulls():
            raise ModelError(
                f"label column {label_column!r} contains nulls; "
                "drop or impute them before training"
            )
        return np.asarray(column.to_list(), dtype=object)

    @staticmethod
    def _feature_list(
        table: Table, label_column: str, feature_names: list[str] | None
    ) -> list[str]:
        if label_column not in table:
            raise ModelError(f"table has no label column {label_column!r}")
        if feature_names is None:
            features = [n for n in table.column_names if n != label_column]
        else:
            features = [n for n in feature_names if n != label_column]
        if not features:
            raise ModelError("no feature columns to train on")
        return features

    def evaluate(
        self,
        table: Table,
        label_column: str,
        feature_names: list[str] | None = None,
        test_fraction: float = 0.2,
    ) -> EvaluationResult:
        """80/20 stratified train/test evaluation (the paper's protocol)."""
        features = self._feature_list(table, label_column, feature_names)
        raw_labels = self._label_array(table, label_column)
        y, self._classes = encode_labels(raw_labels)
        train_idx, test_idx = train_test_split_indices(
            table.n_rows, y, test_fraction=test_fraction, seed=self.seed
        )
        train_table = table.take(train_idx)
        test_table = table.take(test_idx)
        X_train = self._encoder.fit_transform(train_table, features)
        X_test = self._encoder.transform(test_table)
        model = MODEL_REGISTRY[self.model_name](self.seed)
        model.fit(X_train, y[train_idx])
        self._model = model
        predictions = model.predict(X_test)
        return EvaluationResult(
            model_name=self.model_name,
            accuracy=accuracy(y[test_idx], predictions),
            n_train=len(train_idx),
            n_test=len(test_idx),
            n_features=len(features),
            feature_names=tuple(features),
        )


def evaluate_accuracy(
    table: Table,
    label_column: str,
    model_name: str = "lightgbm",
    feature_names: list[str] | None = None,
    seed: int = 0,
) -> float:
    """Convenience: one 80/20 evaluation, returning only the accuracy."""
    predictor = AutoTabularPredictor(model_name=model_name, seed=seed)
    return predictor.evaluate(table, label_column, feature_names).accuracy
