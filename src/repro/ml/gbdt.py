"""Histogram-based gradient-boosted decision trees.

A from-scratch reproduction of the two boosted learners the paper
evaluates with:

* :class:`LightGBMClassifier` — *leaf-wise* growth: the leaf with the
  highest split gain anywhere in the tree is split next, up to
  ``max_leaves`` (LightGBM's signature strategy);
* :class:`XGBoostClassifier` — *depth-wise* growth to ``max_depth`` with
  the same second-order gain formula and L2 leaf regularisation.

Both share the histogram machinery: features are quantile-binned once per
fit (at most ``max_bins`` bins), gradients/hessians are accumulated into
per-feature histograms with ``np.bincount``, and split gains use the
standard second-order formulation  gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) −
G²/(H+λ).  Binary tasks use logistic loss; multi-class is one-vs-rest.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError

__all__ = ["LightGBMClassifier", "XGBoostClassifier", "GradientBoostingBinaryClassifier"]

_MAX_BINS_DEFAULT = 48


class _BinMapper:
    """Quantile binning of a float matrix into small integer codes."""

    def __init__(self, max_bins: int = _MAX_BINS_DEFAULT):
        self.max_bins = max_bins
        self._edges: list[np.ndarray] = []

    def fit(self, X: np.ndarray) -> "_BinMapper":
        self._edges = []
        for j in range(X.shape[1]):
            col = X[:, j]
            quantiles = np.quantile(col, np.linspace(0, 1, self.max_bins + 1)[1:-1])
            self._edges.append(np.unique(quantiles))
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if len(self._edges) != X.shape[1]:
            raise ModelError("bin mapper fitted on a different number of features")
        out = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self._edges):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out

    def n_bins(self, feature: int) -> int:
        return len(self._edges[feature]) + 1


@dataclass
class _HistNode:
    """A node of a histogram tree over binned features."""

    rows: np.ndarray
    depth: int
    value: float = 0.0
    feature: int = -1
    bin_threshold: int = -1
    left: "_HistNode | None" = None
    right: "_HistNode | None" = None
    best_gain: float = field(default=0.0, compare=False)
    best_feature: int = field(default=-1, compare=False)
    best_bin: int = field(default=-1, compare=False)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _HistTreeBuilder:
    """Grows one regression tree on (gradient, hessian) statistics."""

    def __init__(
        self,
        binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        mapper: _BinMapper,
        reg_lambda: float,
        min_child_weight: float,
        min_samples_leaf: int,
    ):
        self.binned = binned
        self.grad = grad
        self.hess = hess
        self.mapper = mapper
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.min_samples_leaf = min_samples_leaf

    def _leaf_value(self, rows: np.ndarray) -> float:
        g = float(self.grad[rows].sum())
        h = float(self.hess[rows].sum())
        return -g / (h + self.reg_lambda)

    def _score(self, g: float, h: float) -> float:
        return g * g / (h + self.reg_lambda)

    def _find_best_split(self, node: _HistNode) -> None:
        rows = node.rows
        g_total = float(self.grad[rows].sum())
        h_total = float(self.hess[rows].sum())
        parent_score = self._score(g_total, h_total)
        best_gain, best_feature, best_bin = 0.0, -1, -1
        n_features = self.binned.shape[1]
        counts_needed = self.min_samples_leaf
        for j in range(n_features):
            bins = self.binned[rows, j]
            n_bins = self.mapper.n_bins(j)
            if n_bins < 2:
                continue
            g_hist = np.bincount(bins, weights=self.grad[rows], minlength=n_bins)
            h_hist = np.bincount(bins, weights=self.hess[rows], minlength=n_bins)
            c_hist = np.bincount(bins, minlength=n_bins)
            g_left = np.cumsum(g_hist)[:-1]
            h_left = np.cumsum(h_hist)[:-1]
            c_left = np.cumsum(c_hist)[:-1]
            g_right = g_total - g_left
            h_right = h_total - h_left
            c_right = len(rows) - c_left
            valid = (
                (c_left >= counts_needed)
                & (c_right >= counts_needed)
                & (h_left >= self.min_child_weight)
                & (h_right >= self.min_child_weight)
            )
            if not valid.any():
                continue
            gains = (
                self._score_vec(g_left, h_left)
                + self._score_vec(g_right, h_right)
                - parent_score
            )
            gains = np.where(valid, gains, -np.inf)
            local_best = int(np.argmax(gains))
            if gains[local_best] > best_gain:
                best_gain = float(gains[local_best])
                best_feature = j
                best_bin = local_best
        node.best_gain = best_gain
        node.best_feature = best_feature
        node.best_bin = best_bin

    def _score_vec(self, g: np.ndarray, h: np.ndarray) -> np.ndarray:
        return g * g / (h + self.reg_lambda)

    def split(self, node: _HistNode) -> tuple[_HistNode, _HistNode]:
        """Apply the stored best split and return the two children."""
        mask = self.binned[node.rows, node.best_feature] <= node.best_bin
        left_rows = node.rows[mask]
        right_rows = node.rows[~mask]
        node.feature = node.best_feature
        node.bin_threshold = node.best_bin
        node.left = _HistNode(rows=left_rows, depth=node.depth + 1)
        node.right = _HistNode(rows=right_rows, depth=node.depth + 1)
        node.left.value = self._leaf_value(left_rows)
        node.right.value = self._leaf_value(right_rows)
        return node.left, node.right


class _HistTree:
    """A fitted histogram tree: predicts leaf values over binned rows."""

    def __init__(self, root: _HistNode):
        self._root = root

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        out = np.zeros(len(binned), dtype=np.float64)
        stack = [(self._root, np.arange(len(binned)))]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf or node.left is None or node.right is None:
                out[idx] = node.value
                continue
            mask = binned[idx, node.feature] <= node.bin_threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    @property
    def n_leaves(self) -> int:
        def walk(node: _HistNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)


def _grow_leaf_wise(
    builder: _HistTreeBuilder,
    rows: np.ndarray,
    max_leaves: int,
    importance: np.ndarray | None = None,
) -> _HistTree:
    root = _HistNode(rows=rows, depth=0)
    root.value = builder._leaf_value(rows)
    builder._find_best_split(root)
    counter = 0
    heap: list[tuple[float, int, _HistNode]] = []
    if root.best_feature >= 0:
        heap.append((-root.best_gain, counter, root))
    n_leaves = 1
    while heap and n_leaves < max_leaves:
        neg_gain, _, node = heapq.heappop(heap)
        if -neg_gain <= 0.0:
            break
        if importance is not None:
            importance[node.best_feature] += node.best_gain
        left, right = builder.split(node)
        n_leaves += 1
        for child in (left, right):
            builder._find_best_split(child)
            if child.best_feature >= 0:
                counter += 1
                heapq.heappush(heap, (-child.best_gain, counter, child))
    return _HistTree(root)


def _grow_depth_wise(
    builder: _HistTreeBuilder,
    rows: np.ndarray,
    max_depth: int,
    importance: np.ndarray | None = None,
) -> _HistTree:
    root = _HistNode(rows=rows, depth=0)
    root.value = builder._leaf_value(rows)
    frontier = [root]
    while frontier:
        next_frontier: list[_HistNode] = []
        for node in frontier:
            if node.depth >= max_depth:
                continue
            builder._find_best_split(node)
            if node.best_feature < 0 or node.best_gain <= 0.0:
                continue
            if importance is not None:
                importance[node.best_feature] += node.best_gain
            left, right = builder.split(node)
            next_frontier.extend((left, right))
        frontier = next_frontier
    return _HistTree(root)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))


class GradientBoostingBinaryClassifier:
    """Binary logistic-loss GBDT with pluggable tree-growth strategy."""

    def __init__(
        self,
        n_estimators: int = 60,
        learning_rate: float = 0.15,
        max_leaves: int = 31,
        max_depth: int = 6,
        max_bins: int = _MAX_BINS_DEFAULT,
        reg_lambda: float = 1.0,
        min_child_weight: float = 1e-3,
        min_samples_leaf: int = 5,
        growth: str = "leaf_wise",
        seed: int = 0,
    ):
        if growth not in ("leaf_wise", "depth_wise"):
            raise ModelError(f"growth must be leaf_wise or depth_wise, got {growth!r}")
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.max_bins = max_bins
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.min_samples_leaf = min_samples_leaf
        self.growth = growth
        self.seed = seed
        self._mapper: _BinMapper | None = None
        self._trees: list[_HistTree] = []
        self._base_score = 0.0
        self._importance_gain: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingBinaryClassifier":
        """Fit on binary labels (0/1)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ModelError("X/y shape mismatch")
        if not np.isfinite(X).all():
            raise ModelError("X contains non-finite values; encode/impute first")
        positive_rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self._base_score = float(np.log(positive_rate / (1 - positive_rate)))
        self._mapper = _BinMapper(self.max_bins).fit(X)
        binned = self._mapper.transform(X)
        raw = np.full(len(y), self._base_score, dtype=np.float64)
        self._trees = []
        self._importance_gain = np.zeros(X.shape[1], dtype=np.float64)
        rows = np.arange(len(y))
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            grad = p - y
            hess = p * (1.0 - p)
            builder = _HistTreeBuilder(
                binned,
                grad,
                hess,
                self._mapper,
                self.reg_lambda,
                self.min_child_weight,
                self.min_samples_leaf,
            )
            if self.growth == "leaf_wise":
                tree = _grow_leaf_wise(
                    builder, rows, self.max_leaves, self._importance_gain
                )
            else:
                tree = _grow_depth_wise(
                    builder, rows, self.max_depth, self._importance_gain
                )
            self._trees.append(tree)
            raw += self.learning_rate * tree.predict_binned(binned)
        return self

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature across all trees, normalised."""
        if self._importance_gain is None:
            raise ModelError("model is not fitted")
        total = self._importance_gain.sum()
        if total == 0.0:
            return np.zeros_like(self._importance_gain)
        return self._importance_gain / total

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive score before the sigmoid."""
        if self._mapper is None:
            raise ModelError("model is not fitted")
        binned = self._mapper.transform(np.asarray(X, dtype=np.float64))
        raw = np.full(len(binned), self._base_score, dtype=np.float64)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict_binned(binned)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) matrix of [P(class 0), P(class 1)]."""
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.decision_function(X) > 0.0).astype(np.int64)


class _OneVsRestGBDT:
    """Multi-class wrapper: one binary booster per class."""

    growth = "leaf_wise"

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._models: list[GradientBoostingBinaryClassifier] = []
        self.n_classes_ = 0

    def fit(self, X: np.ndarray, y: np.ndarray):
        """Fit on class indices ``y`` in ``0..C-1``."""
        y = np.asarray(y, dtype=np.int64)
        self.n_classes_ = int(y.max()) + 1 if y.size else 0
        self._models = []
        if self.n_classes_ <= 2:
            model = GradientBoostingBinaryClassifier(growth=self.growth, **self._kwargs)
            model.fit(X, (y == (self.n_classes_ - 1)).astype(np.float64))
            self._models.append(model)
            return self
        for cls in range(self.n_classes_):
            model = GradientBoostingBinaryClassifier(growth=self.growth, **self._kwargs)
            model.fit(X, (y == cls).astype(np.float64))
            self._models.append(model)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix (normalised one-vs-rest scores)."""
        if not self._models:
            raise ModelError("model is not fitted")
        if self.n_classes_ <= 2:
            return self._models[0].predict_proba(X)
        scores = np.column_stack([m.predict_proba(X)[:, 1] for m in self._models])
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class index."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalised split gain across the per-class boosters."""
        if not self._models:
            raise ModelError("model is not fitted")
        return np.mean([m.feature_importances_ for m in self._models], axis=0)


class LightGBMClassifier(_OneVsRestGBDT):
    """Leaf-wise histogram GBDT (LightGBM's growth strategy)."""

    growth = "leaf_wise"


class XGBoostClassifier(_OneVsRestGBDT):
    """Depth-wise histogram GBDT with L2 leaf regularisation."""

    growth = "depth_wise"
