"""Tabular encoding: Table -> finite numeric matrix, AutoGluon-style.

The AutoML wrapper "automatically handles data encoding" in the paper;
:class:`TabularEncoder` is that step.  String columns are label-encoded by
sorted unique value; residual NaNs (nulls) are imputed — median for wide
numeric columns, mode otherwise — using statistics learned at fit time so
train/test encoding is consistent.
"""

from __future__ import annotations

import numpy as np

from ..dataframe import Table
from ..errors import ModelError

__all__ = ["TabularEncoder", "encode_labels"]


def encode_labels(label_values: np.ndarray) -> tuple[np.ndarray, list]:
    """Map raw label values to contiguous class indices 0..C-1.

    Returns ``(encoded, classes)`` where ``classes[i]`` is the raw value
    for index ``i`` (sorted for determinism).
    """
    flat = np.asarray(label_values)
    classes = sorted({v.item() if isinstance(v, np.generic) else v for v in flat})
    mapping = {c: i for i, c in enumerate(classes)}
    encoded = np.asarray([mapping[v.item() if isinstance(v, np.generic) else v] for v in flat])
    return encoded.astype(np.int64), classes


class TabularEncoder:
    """Fit/transform a feature Table into a finite float64 matrix."""

    def __init__(self) -> None:
        self._feature_names: list[str] | None = None
        self._fill_values: np.ndarray | None = None
        self._string_mappings: dict[str, dict[str, float]] = {}

    @property
    def feature_names(self) -> list[str]:
        if self._feature_names is None:
            raise ModelError("encoder is not fitted")
        return list(self._feature_names)

    def fit(self, table: Table, feature_names: list[str] | None = None) -> "TabularEncoder":
        """Learn encodings and imputation statistics from ``table``."""
        names = feature_names if feature_names is not None else table.column_names
        if not names:
            raise ModelError("cannot fit an encoder on zero features")
        self._feature_names = list(names)
        self._string_mappings = {}
        columns = []
        for name in names:
            column = table.column(name)
            if column.dtype.value == "string":
                mapping = {v: float(i) for i, v in enumerate(column.unique())}
                self._string_mappings[name] = mapping
            columns.append(self._encode_column(table, name))
        matrix = np.column_stack(columns) if columns else np.empty((table.n_rows, 0))
        fills = np.zeros(matrix.shape[1], dtype=np.float64)
        for j in range(matrix.shape[1]):
            col = matrix[:, j]
            finite = col[np.isfinite(col)]
            fills[j] = float(np.median(finite)) if finite.size else 0.0
        self._fill_values = fills
        return self

    def _encode_column(self, table: Table, name: str) -> np.ndarray:
        column = table.column(name)
        if name in self._string_mappings:
            mapping = self._string_mappings[name]
            out = np.full(len(column), np.nan, dtype=np.float64)
            for i, value in enumerate(column):
                if value is None:
                    continue
                out[i] = mapping.get(str(value), float(len(mapping)))
            return out
        return column.to_float()

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` with the fitted statistics; output is finite."""
        if self._feature_names is None or self._fill_values is None:
            raise ModelError("encoder is not fitted")
        columns = [self._encode_column(table, name) for name in self._feature_names]
        matrix = (
            np.column_stack(columns)
            if columns
            else np.empty((table.n_rows, 0), dtype=np.float64)
        )
        for j in range(matrix.shape[1]):
            col = matrix[:, j]
            col[~np.isfinite(col)] = self._fill_values[j]
        return matrix

    def fit_transform(
        self, table: Table, feature_names: list[str] | None = None
    ) -> np.ndarray:
        """Fit then transform in one pass."""
        return self.fit(table, feature_names).transform(table)
