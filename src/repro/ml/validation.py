"""Cross-validation and AUC evaluation on top of the AutoML layer.

The paper's protocol is a single 80/20 split; these helpers add the two
obvious robustness upgrades a downstream user reaches for first — k-fold
cross-validated accuracy, and AUC scoring (the metric the MAB paper
reports, used when comparing against it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataframe import Table
from ..errors import ModelError
from .automl import MODEL_REGISTRY, AutoTabularPredictor
from .encoding import TabularEncoder, encode_labels
from .metrics import accuracy, auc_score

__all__ = ["CrossValidationResult", "cross_validate", "evaluate_auc"]


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold accuracies plus their mean and spread."""

    fold_accuracies: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.fold_accuracies))

    @property
    def n_folds(self) -> int:
        return len(self.fold_accuracies)


def _stratified_folds(
    y: np.ndarray, n_folds: int, seed: int
) -> list[np.ndarray]:
    """Row indices per fold, stratified by class, seeded."""
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for __ in range(n_folds)]
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        for i, row in enumerate(members):
            folds[i % n_folds].append(int(row))
    return [np.sort(np.asarray(f, dtype=np.int64)) for f in folds]


def cross_validate(
    table: Table,
    label_column: str,
    model_name: str = "lightgbm",
    feature_names: list[str] | None = None,
    n_folds: int = 5,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold cross-validated accuracy."""
    if n_folds < 2:
        raise ModelError(f"n_folds must be >= 2, got {n_folds}")
    if model_name not in MODEL_REGISTRY:
        raise ModelError(f"unknown model {model_name!r}")
    raw = np.asarray(table.column(label_column).to_list(), dtype=object)
    if any(v is None for v in raw):
        raise ModelError(f"label column {label_column!r} contains nulls")
    y, __ = encode_labels(raw)
    if feature_names is None:
        feature_names = [n for n in table.column_names if n != label_column]
    folds = _stratified_folds(y, n_folds, seed)
    accuracies = []
    for i, test_idx in enumerate(folds):
        if len(test_idx) == 0:
            continue
        train_idx = np.setdiff1d(np.arange(table.n_rows), test_idx)
        encoder = TabularEncoder()
        X_train = encoder.fit_transform(table.take(train_idx), feature_names)
        X_test = encoder.transform(table.take(test_idx))
        model = MODEL_REGISTRY[model_name](seed + i)
        model.fit(X_train, y[train_idx])
        accuracies.append(accuracy(y[test_idx], model.predict(X_test)))
    return CrossValidationResult(fold_accuracies=tuple(accuracies))


def evaluate_auc(
    table: Table,
    label_column: str,
    model_name: str = "lightgbm",
    feature_names: list[str] | None = None,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> float:
    """80/20 split, ROC AUC of the positive-class probability (binary)."""
    from ..dataframe import train_test_split_indices

    raw = np.asarray(table.column(label_column).to_list(), dtype=object)
    y, classes = encode_labels(raw)
    if len(classes) != 2:
        raise ModelError(
            f"AUC evaluation is binary-only; label has {len(classes)} classes"
        )
    if feature_names is None:
        feature_names = [n for n in table.column_names if n != label_column]
    train_idx, test_idx = train_test_split_indices(
        table.n_rows, y, test_fraction=test_fraction, seed=seed
    )
    encoder = TabularEncoder()
    X_train = encoder.fit_transform(table.take(train_idx), feature_names)
    X_test = encoder.transform(table.take(test_idx))
    model = MODEL_REGISTRY[model_name](seed)
    model.fit(X_train, y[train_idx])
    scores = model.predict_proba(X_test)[:, 1]
    return auc_score(y[test_idx], scores)
