"""Classification metrics: accuracy, AUC, F1, confusion counts."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = ["accuracy", "auc_score", "f1_score", "confusion_counts"]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ModelError(
            f"prediction length {y_pred.shape} != label length {y_true.shape}"
        )
    if y_true.size == 0:
        raise ModelError("cannot score empty predictions")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC AUC via the rank (Mann-Whitney) formulation.

    ``scores`` are real-valued confidences for the positive class (the
    larger label value).  Degenerate single-class inputs return 0.5.
    """
    y_true, scores = _check_pair(y_true, np.asarray(scores, dtype=np.float64))
    classes = np.unique(y_true)
    if len(classes) != 2:
        return 0.5
    from ..selection.relevance import _rankdata

    positive = y_true == classes[-1]
    n_pos = int(positive.sum())
    n_neg = len(y_true) - n_pos
    ranks = _rankdata(scores)
    rank_sum = float(ranks[positive].sum())
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: object = 1
) -> tuple[int, int, int, int]:
    """``(tp, fp, fn, tn)`` for a binary task."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    pos_true = y_true == positive_label
    pos_pred = y_pred == positive_label
    tp = int(np.sum(pos_true & pos_pred))
    fp = int(np.sum(~pos_true & pos_pred))
    fn = int(np.sum(pos_true & ~pos_pred))
    tn = int(np.sum(~pos_true & ~pos_pred))
    return tp, fp, fn, tn


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, positive_label: object = 1
) -> float:
    """Harmonic mean of precision and recall for the positive class."""
    tp, fp, fn, _ = confusion_counts(y_true, y_pred, positive_label)
    denominator = 2 * tp + fp + fn
    if denominator == 0:
        return 0.0
    return 2 * tp / denominator
