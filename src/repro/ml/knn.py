"""K-nearest-neighbours classifier (brute force, standardised L2).

One of the two non-tree models in the paper's Figures 5 and 7, included
precisely because it *suffers* when augmentation adds irrelevant features:
distances lose meaning in high dimensions, which is the behaviour those
figures document.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier:
    """Majority vote among the k nearest training rows (z-scored L2)."""

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ModelError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.n_classes_ = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Memorise the (standardised) training set."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ModelError("X/y shape mismatch")
        if X.shape[0] == 0:
            raise ModelError("cannot fit on zero rows")
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0.0] = 1.0
        self._X = (X - self._mean) / self._std
        self._y = y
        self.n_classes_ = int(y.max()) + 1 if y.size else 0
        return self

    def _neighbors(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._mean is None or self._std is None:
            raise ModelError("model is not fitted")
        Xs = (np.asarray(X, dtype=np.float64) - self._mean) / self._std
        # Squared L2 via the expansion trick; no need for sqrt to rank.
        cross = Xs @ self._X.T
        dist = (
            np.sum(Xs * Xs, axis=1)[:, None]
            - 2.0 * cross
            + np.sum(self._X * self._X, axis=1)[None, :]
        )
        k = min(self.n_neighbors, self._X.shape[0])
        return np.argpartition(dist, kth=k - 1, axis=1)[:, :k]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Neighbour class frequencies."""
        neighbor_idx = self._neighbors(X)
        assert self._y is not None
        out = np.zeros((len(neighbor_idx), self.n_classes_), dtype=np.float64)
        for i, idx in enumerate(neighbor_idx):
            counts = np.bincount(self._y[idx], minlength=self.n_classes_)
            out[i] = counts / counts.sum()
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class index per row."""
        return np.argmax(self.predict_proba(X), axis=1)
