"""Distribution-based schema matching for numeric columns.

Value-overlap matchers miss joinable numeric columns whose representations
differ (floats rounded differently, unit-scaled copies).  Distribution
matchers compare column *shapes* instead: here, the L1 distance between
min-max-normalised quantile sketches, combined with raw range overlap.

This family is deliberately weaker evidence than overlap — two unrelated
uniform columns look alike — which makes it a realistic generator of the
spurious lake edges the paper's pruning is designed to absorb.  It is also
the right tool for *unionability*-style relatedness, so it rounds out the
matcher menu alongside COMA (composite) and Lazo (overlap/LSH).
"""

from __future__ import annotations

import numpy as np

from ..dataframe import Column, Table
from ..errors import DiscoveryError
from .name_similarity import token_similarity
from .value_overlap import numeric_range_overlap
from .profiles import ColumnProfile, profile_column

__all__ = ["QuantileSketch", "quantile_similarity", "DistributionMatcher"]

N_QUANTILES = 16


class QuantileSketch:
    """Normalised quantile summary of one numeric column."""

    __slots__ = ("quantiles", "n_values")

    def __init__(self, values: np.ndarray, n_quantiles: int = N_QUANTILES):
        finite = values[np.isfinite(values)]
        self.n_values = int(finite.size)
        if self.n_values == 0:
            self.quantiles = np.zeros(n_quantiles, dtype=np.float64)
            return
        lo, hi = float(finite.min()), float(finite.max())
        span = hi - lo if hi > lo else 1.0
        normalised = (finite - lo) / span
        grid = np.linspace(0.0, 1.0, n_quantiles)
        self.quantiles = np.quantile(normalised, grid)

    @staticmethod
    def of_column(column: Column) -> "QuantileSketch":
        if not column.dtype.is_numeric:
            raise DiscoveryError(
                f"quantile sketches need numeric columns, got {column.dtype}"
            )
        return QuantileSketch(column.to_float())


def quantile_similarity(a: QuantileSketch, b: QuantileSketch) -> float:
    """1 - mean L1 distance between normalised quantile vectors, in [0, 1]."""
    if a.n_values == 0 or b.n_values == 0:
        return 0.0
    distance = float(np.mean(np.abs(a.quantiles - b.quantiles)))
    return max(0.0, 1.0 - distance)


class DistributionMatcher:
    """Shape + range + name evidence for numeric column pairs.

    score = 0.45 · quantile_similarity + 0.25 · range_overlap
          + 0.30 · token_name_similarity

    Non-numeric columns never match.  The name term keeps the matcher from
    linking every pair of similarly-shaped measurements, while still
    letting renamed copies through.
    """

    def __init__(self, min_score: float = 0.35):
        self.min_score = min_score
        self._sketch_cache: dict[tuple[int, str], QuantileSketch] = {}

    def _sketch(self, table: Table, column_name: str) -> QuantileSketch:
        key = (id(table), column_name)
        cached = self._sketch_cache.get(key)
        if cached is None:
            cached = QuantileSketch.of_column(table.column(column_name))
            self._sketch_cache[key] = cached
        return cached

    def score(
        self,
        table_a: Table,
        column_a: str,
        table_b: Table,
        column_b: str,
    ) -> float:
        """Composite distribution score for one column pair."""
        col_a, col_b = table_a.column(column_a), table_b.column(column_b)
        if not (col_a.dtype.is_numeric and col_b.dtype.is_numeric):
            return 0.0
        shape = quantile_similarity(
            self._sketch(table_a, column_a), self._sketch(table_b, column_b)
        )
        profile_a = profile_column(col_a, table_a.name, column_a)
        profile_b = profile_column(col_b, table_b.name, column_b)
        ranges = numeric_range_overlap(profile_a, profile_b)
        names = token_similarity(column_a, column_b)
        return 0.45 * shape + 0.25 * ranges + 0.30 * names

    def match(self, table_a: Table, table_b: Table):
        """All numeric column pairs scoring at or above the floor."""
        out = []
        for column_a in table_a.column_names:
            if not table_a.column(column_a).dtype.is_numeric:
                continue
            for column_b in table_b.column_names:
                if not table_b.column(column_b).dtype.is_numeric:
                    continue
                score = self.score(table_a, column_a, table_b, column_b)
                if score >= self.min_score:
                    out.append((column_a, column_b, round(score, 6)))
        out.sort(key=lambda t: (-t[2], t[0], t[1]))
        return out

    def __call__(self, table_a: Table, table_b: Table):
        """DRG ``Matcher`` protocol adapter."""
        yield from self.match(table_a, table_b)
