"""Lazo-style joinability discovery with MinHash LSH.

COMA compares every column pair, which is quadratic in the number of
columns.  Lazo (Castro Fernandez et al., ICDE 2019) instead indexes MinHash
signatures with locality-sensitive banding so only colliding columns are
ever compared, and estimates *containment* (the joinability signal) from
the estimated Jaccard and the column cardinalities.

:class:`LazoMatcher` implements that recipe over the profile sketches and
plugs into the same ``Matcher`` protocol the DRG builder accepts, so lakes
can be built with either matcher interchangeably.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..dataframe import Table
from .index import validate_banding
from .profiles import ColumnProfile, TableProfile, profile_table

__all__ = ["LazoMatcher", "estimate_containment"]


def estimate_containment(
    jaccard: float, n_distinct_a: int, n_distinct_b: int
) -> float:
    """Lazo's Jaccard -> containment conversion.

    With |A ∩ B| = J/(1+J) · (|A| + |B|), containment of the smaller set is
    that intersection over min(|A|, |B|), clipped to [0, 1].
    """
    smaller = min(n_distinct_a, n_distinct_b)
    if smaller == 0 or jaccard <= 0.0:
        return 0.0
    intersection = jaccard / (1.0 + jaccard) * (n_distinct_a + n_distinct_b)
    return float(min(1.0, intersection / smaller))


class LazoMatcher:
    """Banded MinHash-LSH candidate generation + containment scoring.

    Parameters
    ----------
    bands, rows_per_band:
        The LSH banding layout; ``bands * rows_per_band`` must not exceed
        the MinHash signature length.  More bands = more candidates
        (higher recall, more spurious pairs) — the paper's data-lake
        setting *wants* some spurious edges.
    min_score:
        Candidates scoring below this containment-based score are dropped.
    """

    def __init__(
        self,
        bands: int = 16,
        rows_per_band: int = 4,
        min_score: float = 0.3,
    ):
        validate_banding(bands, rows_per_band)
        self.bands = bands
        self.rows_per_band = rows_per_band
        self.min_score = min_score
        self._profile_cache: dict[int, TableProfile] = {}

    def _profiles(self, table: Table) -> TableProfile:
        cached = self._profile_cache.get(id(table))
        if cached is None:
            cached = profile_table(table)
            self._profile_cache[id(table)] = cached
        return cached

    def _band_keys(self, profile: ColumnProfile) -> list[tuple[int, bytes]]:
        signature = profile.minhash
        keys = []
        for band in range(self.bands):
            lo = band * self.rows_per_band
            chunk = signature[lo : lo + self.rows_per_band]
            keys.append((band, chunk.tobytes()))
        return keys

    def candidates(
        self, profiles_a: TableProfile, profiles_b: TableProfile
    ) -> list[tuple[ColumnProfile, ColumnProfile]]:
        """Column pairs whose signatures collide in at least one band."""
        buckets: dict[tuple[int, bytes], list[ColumnProfile]] = defaultdict(list)
        for column in profiles_a.columns:
            for key in self._band_keys(column):
                buckets[key].append(column)
        seen: set[tuple[str, str]] = set()
        out = []
        for column in profiles_b.columns:
            for key in self._band_keys(column):
                for partner in buckets.get(key, ()):
                    pair_id = (partner.column_name, column.column_name)
                    if pair_id in seen:
                        continue
                    seen.add(pair_id)
                    out.append((partner, column))
        return out

    def score(self, a: ColumnProfile, b: ColumnProfile) -> float:
        """Containment estimated from the MinHash-agreement Jaccard."""
        if a.minhash.size != b.minhash.size or a.minhash.size == 0:
            return 0.0
        jaccard = float(np.mean(a.minhash == b.minhash))
        return estimate_containment(jaccard, a.n_distinct, b.n_distinct)

    def match_profiles(
        self, profiles_a: TableProfile, profiles_b: TableProfile
    ) -> list[tuple[str, str, float]]:
        """Candidate pairs of two pre-profiled tables, scored and sorted.

        The profile-level entry point the incremental re-matcher
        (:mod:`repro.discovery.incremental`) drives, so a mutated table
        is re-profiled once and matched against stored profiles instead
        of re-reading every partner table.
        """
        pairs = self.candidates(profiles_a, profiles_b)
        scored = []
        for col_a, col_b in pairs:
            score = self.score(col_a, col_b)
            if score >= self.min_score:
                scored.append((col_a.column_name, col_b.column_name, round(score, 6)))
        scored.sort(key=lambda t: (-t[2], t[0], t[1]))
        return scored

    def match(self, table_a: Table, table_b: Table):
        """All candidate pairs with their containment scores, sorted."""
        return self.match_profiles(self._profiles(table_a), self._profiles(table_b))

    def __call__(self, table_a: Table, table_b: Table):
        """DRG ``Matcher`` protocol adapter."""
        yield from self.match(table_a, table_b)
