"""Sketch-accelerated exact schema matching: candidates first, COMA second.

Cold DRG construction scores every cross-table column pair with the full
exact matcher — O(n²) in the number of columns, with full value scans per
pair.  That is fine for the paper's 9-table evaluation lakes and fatal at
the thousands-of-tables scale the roadmap targets.  HyperJoin treats
joinable-table discovery as a *standing retrieval index* rather than
pairwise scoring; the existing :class:`~repro.discovery.LazoMatcher`
already shows the MinHash/banding machinery works.  This module combines
the two ideas: sketches generate **candidates**, the exact matcher stays
the **verifier**, so edge weights — and with them every paper figure —
are provably unchanged whenever candidate recall is 1.0.

Two classes:

* :class:`JoinabilityIndex` — banded MinHash sketches (reusing the
  :mod:`~repro.discovery.profiles` signatures) plus three name/value
  blocking channels per registered column, queryable for the candidate
  column pairs of any two tables and for the candidate *table* pairs of
  a whole lake;
* :class:`CandidateFilteredMatcher` — wraps any exact profile-aware
  matcher (COMA, value-overlap) and only scores the pairs the index
  surfaces, with a :meth:`~CandidateFilteredMatcher.verify_exact` recall
  gate that can replay the full quadratic scan and report exactly which
  would-be edges the candidate generator missed.

Blocking channels
-----------------
A column pair is a candidate iff it collides in at least one channel:

1. **value bands** — the column's :data:`MINHASH_PERMUTATIONS`-long
   MinHash signature split into ``bands`` bands of ``rows_per_band``
   rows; equal bands mean Jaccard-similar full value sets (the Lazo
   recipe, catching joinable keys of any cardinality);
2. **normalised name** — the identifier with case/separators removed
   (``CreditID`` ≡ ``credit_id``);
3. **token set** — the sorted identifier-token set (``id_credit`` ≡
   ``credit_id``);
4. **sketch values** — an inverted index over the (bounded) distinct
   value sketch, which catches small-domain containment pairs MinHash
   bands are blind to (``{0,1}`` inside ``{0..7}`` has Jaccard 0.25 but
   shares every value).

Determinism contract: the candidate set of a table pair is a pure
function of the two tables' profiles and the banding layout — never of
registration order or of any third table — so the incremental mutation
path (:mod:`~repro.discovery.incremental`) and a cold rebuild see
identical candidates, and at recall 1.0 the filtered matcher's output is
byte-identical (same matches, same scores, same order) to the exact
scan's.  What can still be missed, by construction, is a pair whose
exact score clears the edge threshold through *moderate* name similarity
without any shared token plus *asymmetric* containment of a large value
domain — the trade-off :meth:`verify_exact` exists to measure and the
``candidate_min_recall`` config gate exists to enforce.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from ..dataframe import Table
from ..errors import DiscoveryError
from ..obs import MetricsRegistry
from .name_similarity import tokenize_identifier
from .profiles import (
    MINHASH_PERMUTATIONS,
    ColumnProfile,
    TableProfile,
    profile_table,
)

__all__ = [
    "DEFAULT_BANDS",
    "DEFAULT_ROWS_PER_BAND",
    "CandidateStats",
    "RecallReport",
    "JoinabilityIndex",
    "CandidateFilteredMatcher",
]

DEFAULT_BANDS = 16
DEFAULT_ROWS_PER_BAND = 4

#: A column's bucket keys are tuples tagged by channel: ``("v", band,
#: bytes)`` for value bands, ``("n", name)`` / ``("t", tokens)`` for the
#: two name channels and ``("e", value)`` for inverted sketch values.
BucketKey = tuple


def validate_banding(bands: int, rows_per_band: int) -> None:
    """Eagerly reject banding layouts the signature cannot support.

    Shared by :class:`JoinabilityIndex` and
    :class:`~repro.discovery.LazoMatcher` so an oversized layout fails at
    construction with a :class:`~repro.errors.DiscoveryError` instead of
    deep inside signature slicing (where short/empty band chunks would
    silently collide everything).
    """
    if bands < 1 or rows_per_band < 1:
        raise DiscoveryError(
            f"bands and rows_per_band must be >= 1, "
            f"got {bands}x{rows_per_band}"
        )
    if bands * rows_per_band > MINHASH_PERMUTATIONS:
        raise DiscoveryError(
            f"banding {bands}x{rows_per_band} exceeds the "
            f"{MINHASH_PERMUTATIONS}-permutation signature"
        )


_COUNTER_FIELDS = (
    "pairs_considered",
    "pairs_scored",
    "table_pairs_probed",
    "tables_registered",
    "columns_registered",
)


@dataclass
class CandidateStats:
    """Cumulative work accounting of one filtered matcher's lifetime.

    ``pairs_considered`` counts the cross-table column pairs the
    equivalent full quadratic scan would have examined;
    ``pairs_scored`` counts the pairs actually handed to the exact
    matcher.  Their difference — :attr:`candidates_pruned` — is the work
    the sketch index saved.
    """

    pairs_considered: int = 0
    pairs_scored: int = 0
    table_pairs_probed: int = 0
    tables_registered: int = 0
    columns_registered: int = 0
    index_build_seconds: float = 0.0

    @property
    def candidates_pruned(self) -> int:
        return max(self.pairs_considered - self.pairs_scored, 0)

    @property
    def prune_ratio(self) -> float:
        """Fraction of considered pairs never exactly scored."""
        if self.pairs_considered == 0:
            return 0.0
        return self.candidates_pruned / self.pairs_considered

    def publish(
        self, registry: MetricsRegistry, prefix: str = "sketch_index"
    ) -> MetricsRegistry:
        """Publish counters and derived gauges into ``registry``."""
        for name in _COUNTER_FIELDS:
            registry.counter(f"{prefix}.{name}").inc(getattr(self, name))
        registry.counter(f"{prefix}.candidates_pruned").inc(
            self.candidates_pruned
        )
        registry.gauge(f"{prefix}.prune_ratio").set(round(self.prune_ratio, 6))
        registry.gauge(f"{prefix}.index_build_seconds").set(
            round(self.index_build_seconds, 6)
        )
        return registry

    def as_dict(self) -> dict:
        out = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        out["candidates_pruned"] = self.candidates_pruned
        out["prune_ratio"] = round(self.prune_ratio, 6)
        out["index_build_seconds"] = round(self.index_build_seconds, 6)
        return out


@dataclass(frozen=True)
class RecallReport:
    """Outcome of replaying the full quadratic scan against the index.

    ``missed`` lists the ``(table_a, column_a, table_b, column_b,
    score)`` pairs the exact scan rates at or above ``threshold`` but the
    candidate generator never surfaced — the would-be DRG edges candidate
    filtering would silently drop.
    """

    threshold: float
    table_pairs: int
    edges_expected: int
    edges_found: int
    missed: tuple[tuple[str, str, str, str, float], ...] = ()

    @property
    def recall(self) -> float:
        """Missed-edge recall; vacuously 1.0 when no edges exist."""
        if self.edges_expected == 0:
            return 1.0
        return self.edges_found / self.edges_expected

    def as_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "table_pairs": self.table_pairs,
            "edges_expected": self.edges_expected,
            "edges_found": self.edges_found,
            "recall": round(self.recall, 6),
            "missed": [list(m) for m in self.missed],
        }


def _normalised_name(name: str) -> str:
    return "".join(tokenize_identifier(name))


class JoinabilityIndex:
    """Standing multi-channel blocking index over registered columns.

    Parameters
    ----------
    bands, rows_per_band:
        The LSH banding layout over the MinHash value signatures;
        ``bands * rows_per_band`` must not exceed the signature length
        (validated eagerly).  More bands surface more candidates.
    """

    def __init__(
        self,
        bands: int = DEFAULT_BANDS,
        rows_per_band: int = DEFAULT_ROWS_PER_BAND,
    ):
        validate_banding(bands, rows_per_band)
        self.bands = bands
        self.rows_per_band = rows_per_band
        self._profiles: dict[str, TableProfile] = {}
        #: bucket key -> insertion-ordered set of (table, column) members.
        self._buckets: dict[BucketKey, dict[tuple[str, str], None]] = {}
        #: (table, column) -> that column's bucket keys, for eviction and
        #: for probing without re-hashing signatures.
        self._keys: dict[tuple[str, str], tuple[BucketKey, ...]] = {}

    # -- sketch construction -------------------------------------------------

    def column_keys(self, profile: ColumnProfile) -> tuple[BucketKey, ...]:
        """All blocking-channel bucket keys of one column profile."""
        keys: list[BucketKey] = []
        signature = profile.minhash
        for band in range(self.bands):
            lo = band * self.rows_per_band
            chunk = signature[lo : lo + self.rows_per_band]
            keys.append(("v", band, chunk.tobytes()))
        tokens = tokenize_identifier(profile.column_name)
        keys.append(("n", "".join(tokens)))
        keys.append(("t", tuple(sorted(set(tokens)))))
        for value in sorted(profile.sketch):
            keys.append(("e", value))
        return tuple(keys)

    # -- registration --------------------------------------------------------

    def __contains__(self, table_name: str) -> bool:
        return table_name in self._profiles

    @property
    def table_names(self) -> list[str]:
        return list(self._profiles.keys())

    @property
    def n_columns(self) -> int:
        return len(self._keys)

    def profile(self, table_name: str) -> TableProfile:
        try:
            return self._profiles[table_name]
        except KeyError:
            raise DiscoveryError(
                f"table {table_name!r} is not registered in the index"
            ) from None

    def register(self, profile: TableProfile) -> None:
        """Insert (or replace) one table's column sketches."""
        if not profile.table_name:
            raise DiscoveryError("indexed tables need a non-empty name")
        if profile.table_name in self._profiles:
            self.evict(profile.table_name)
        self._profiles[profile.table_name] = profile
        for column in profile.columns:
            member = (profile.table_name, column.column_name)
            keys = self.column_keys(column)
            self._keys[member] = keys
            for key in keys:
                self._buckets.setdefault(key, {})[member] = None

    def evict(self, table_name: str) -> None:
        """Remove one table's sketches from every bucket."""
        profile = self._profiles.pop(table_name, None)
        if profile is None:
            raise DiscoveryError(
                f"table {table_name!r} is not registered in the index"
            )
        for column in profile.columns:
            member = (table_name, column.column_name)
            for key in self._keys.pop(member, ()):
                bucket = self._buckets.get(key)
                if bucket is None:
                    continue
                bucket.pop(member, None)
                if not bucket:
                    del self._buckets[key]

    # -- queries -------------------------------------------------------------

    def candidate_columns(
        self, name_a: str, name_b: str
    ) -> list[tuple[str, str]]:
        """Column pairs of two registered tables colliding in any channel.

        A pure function of the two tables' profiles: membership of a
        shared bucket is decided by the columns' own keys, so the result
        never depends on registration order or on other tables.  Returned
        sorted for deterministic scoring order.
        """
        profile_b = self.profile(name_b)
        if name_a not in self._profiles:
            raise DiscoveryError(
                f"table {name_a!r} is not registered in the index"
            )
        out: set[tuple[str, str]] = set()
        for column in profile_b.columns:
            member_b = (name_b, column.column_name)
            for key in self._keys[member_b]:
                bucket = self._buckets.get(key, ())
                for table, column_a in bucket:
                    if table == name_a:
                        out.add((column_a, column.column_name))
        return sorted(out)

    def candidate_table_pairs(
        self, positions: Mapping[str, int]
    ) -> list[tuple[str, str]]:
        """Unordered table pairs sharing at least one bucket.

        ``positions`` maps table names to their canonical lake order;
        the result is sorted by ``(position_a, position_b)`` so a DRG
        built from it inserts edges in exactly the order the full
        ``combinations`` scan would.  Tables absent from ``positions``
        are ignored.  Exactly the pairs for which
        :meth:`candidate_columns` is non-empty — both derive from the
        same buckets — so skipping the rest loses nothing.
        """
        pairs: set[tuple[str, str]] = set()
        for bucket in self._buckets.values():
            tables = []
            seen: set[str] = set()
            for table, _column in bucket:
                if table not in seen and table in positions:
                    seen.add(table)
                    tables.append(table)
            for name_a, name_b in combinations(tables, 2):
                if positions[name_a] > positions[name_b]:
                    name_a, name_b = name_b, name_a
                pairs.add((name_a, name_b))
        return sorted(pairs, key=lambda p: (positions[p[0]], positions[p[1]]))


def _match_sort_key(item) -> tuple:
    """The (-score, column_a, column_b) key every exact matcher sorts by."""
    column_a = getattr(item, "column_a", None)
    if column_a is not None:
        return (-item.score, item.column_a, item.column_b)
    return (-item[2], item[0], item[1])


def _as_edge_tuple(item) -> tuple[str, str, float]:
    column_a = getattr(item, "column_a", None)
    if column_a is not None:
        return (item.column_a, item.column_b, float(item.score))
    return (item[0], item[1], float(item[2]))


class CandidateFilteredMatcher:
    """Exact matcher behind a sketch-index candidate generator.

    Plugs into every slot a plain matcher fits: the DRG ``Matcher``
    protocol (``__call__``), the profile-level protocol
    (``match_profiles``) the incremental re-matcher drives, plus the
    lake-level hooks (:meth:`begin_lake` / :meth:`candidate_table_pairs`)
    :meth:`~repro.graph.DatasetRelationGraph.from_discovery` uses to skip
    table pairs with no candidates at all.

    Parameters
    ----------
    matcher:
        The exact verifier — any matcher exposing
        ``match_profiles(profiles_a, profiles_b)``
        (:class:`~repro.discovery.ComaMatcher`,
        :class:`~repro.discovery.ValueOverlapMatcher`, …).  Defaults to
        a fresh :class:`~repro.discovery.ComaMatcher`.
    bands, rows_per_band:
        The index's banding layout (validated eagerly).
    """

    def __init__(
        self,
        matcher=None,
        bands: int = DEFAULT_BANDS,
        rows_per_band: int = DEFAULT_ROWS_PER_BAND,
    ):
        if matcher is None:
            from .coma import ComaMatcher

            matcher = ComaMatcher()
        if not hasattr(matcher, "match_profiles"):
            raise DiscoveryError(
                "CandidateFilteredMatcher needs a profile-aware exact "
                "matcher (one exposing match_profiles); "
                f"got {type(matcher).__name__}"
            )
        self.matcher = matcher
        self.index = JoinabilityIndex(bands=bands, rows_per_band=rows_per_band)
        self.stats = CandidateStats()
        #: Weakref-guarded profile cache, same recipe as ComaMatcher's: a
        #: bare id() key could be silently reused by a different table
        #: after garbage collection.
        self._table_profiles: dict[
            int, tuple[weakref.ref[Table], TableProfile]
        ] = {}
        #: name -> id() of the registered profile object, to skip
        #: re-registration of an unchanged profile.
        self._registered_ids: dict[str, int] = {}
        #: Lake mode (set by begin_lake): name -> canonical position.
        #: Pairs inside the lake had their full-scan cost counted
        #: analytically up front, so per-pair counting skips them.
        self._lake: dict[str, int] | None = None

    # -- profiles ------------------------------------------------------------

    def _evict_table_profile(self, key: int, ref: weakref.ref) -> None:
        entry = self._table_profiles.get(key)
        if entry is not None and entry[0] is ref:
            del self._table_profiles[key]

    def _profiles(self, table: Table) -> TableProfile:
        key = id(table)
        entry = self._table_profiles.get(key)
        if entry is not None and entry[0]() is table:
            return entry[1]
        profile = profile_table(table)
        ref = weakref.ref(
            table, lambda r, key=key: self._evict_table_profile(key, r)
        )
        self._table_profiles[key] = (ref, profile)
        return profile

    # -- sketch registration -------------------------------------------------

    def register_profile(self, profile: TableProfile) -> None:
        """Insert (or replace) one table's sketches in the index.

        Idempotent for the exact same profile object — the incremental
        path registers at profiling time and then matches pair by pair.
        """
        if self._registered_ids.get(profile.table_name) == id(profile):
            return
        started = time.perf_counter()
        self.index.register(profile)
        self._registered_ids[profile.table_name] = id(profile)
        self.stats.tables_registered += 1
        self.stats.columns_registered += len(profile.columns)
        self.stats.index_build_seconds += time.perf_counter() - started

    def drop_table(self, table_name: str) -> None:
        """Evict one table's sketches (mutation bookkeeping, no hashing).

        Tolerates names the index never saw — a mutation driver may drop
        a table that predates this wrapper.
        """
        if table_name in self.index:
            self.index.evict(table_name)
        self._registered_ids.pop(table_name, None)
        if self._lake is not None:
            self._lake.pop(table_name, None)

    # -- lake mode -----------------------------------------------------------

    def begin_lake(self, tables: Sequence[Table]) -> None:
        """Synchronise the index to exactly this lake, in this order.

        Profiles each table once (cached), registers its sketches,
        evicts leftovers from earlier lakes, and charges the analytic
        full-scan pair count to ``pairs_considered`` up front — after
        this, :meth:`candidate_table_pairs` enumerates the only table
        pairs worth visiting.
        """
        profiles = [self._profiles(table) for table in tables]
        wanted = {p.table_name for p in profiles}
        for stale in [n for n in self.index.table_names if n not in wanted]:
            self.drop_table(stale)
        for profile in profiles:
            self.register_profile(profile)
        self._lake = {p.table_name: i for i, p in enumerate(profiles)}
        total = sum(len(p.columns) for p in profiles)
        squares = sum(len(p.columns) ** 2 for p in profiles)
        self.stats.pairs_considered += (total * total - squares) // 2

    def candidate_table_pairs(self) -> list[tuple[str, str]]:
        """The lake's candidate table pairs, in canonical scan order."""
        if self._lake is None:
            raise DiscoveryError(
                "candidate_table_pairs needs begin_lake(tables) first"
            )
        return self.index.candidate_table_pairs(self._lake)

    # -- matching ------------------------------------------------------------

    def _ensure_registered(self, profile: TableProfile) -> None:
        if self._registered_ids.get(profile.table_name) != id(profile):
            self.register_profile(profile)

    def match_profiles(self, profiles_a: TableProfile, profiles_b: TableProfile):
        """Exact matches of the candidate column pairs, sorted like the
        wrapped matcher sorts — byte-identical to its full scan whenever
        candidate recall over its reported matches is 1.0."""
        self._ensure_registered(profiles_a)
        self._ensure_registered(profiles_b)
        name_a = profiles_a.table_name
        name_b = profiles_b.table_name
        in_lake = (
            self._lake is not None
            and name_a in self._lake
            and name_b in self._lake
        )
        if not in_lake:
            self.stats.pairs_considered += len(profiles_a.columns) * len(
                profiles_b.columns
            )
        self.stats.table_pairs_probed += 1
        candidates = self.index.candidate_columns(name_a, name_b)
        self.stats.pairs_scored += len(candidates)
        matches = []
        for column_a, column_b in candidates:
            sub_a = TableProfile(
                table_name=name_a, columns=(profiles_a.column(column_a),)
            )
            sub_b = TableProfile(
                table_name=name_b, columns=(profiles_b.column(column_b),)
            )
            matches.extend(self.matcher.match_profiles(sub_a, sub_b))
        matches.sort(key=_match_sort_key)
        return matches

    def match(self, table_a: Table, table_b: Table):
        """Candidate-filtered exact matches of two tables."""
        return self.match_profiles(self._profiles(table_a), self._profiles(table_b))

    def __call__(self, table_a: Table, table_b: Table):
        """DRG ``Matcher`` protocol adapter: yields score tuples."""
        for item in self.match(table_a, table_b):
            yield _as_edge_tuple(item)

    # -- verification --------------------------------------------------------

    def verify_exact(
        self,
        tables: Iterable[Table | TableProfile],
        threshold: float = 0.55,
    ) -> RecallReport:
        """Replay the full quadratic scan and measure missed-edge recall.

        For every unordered table pair, the wrapped matcher's *unfiltered*
        ``match_profiles`` is the oracle; matches at or above
        ``threshold`` (the DRG edge threshold) that candidate filtering
        fails to reproduce are reported as missed.  Deliberately O(n²) —
        this is the audit that certifies a lake's DRG is bit-identical
        to the quadratic scan, not a production path.
        """
        profiles = [
            item if isinstance(item, TableProfile) else self._profiles(item)
            for item in tables
        ]
        table_pairs = 0
        expected = 0
        found = 0
        missed: list[tuple[str, str, str, str, float]] = []
        for profiles_a, profiles_b in combinations(profiles, 2):
            table_pairs += 1
            exact = {
                (t[0], t[1]): t[2]
                for t in map(
                    _as_edge_tuple,
                    self.matcher.match_profiles(profiles_a, profiles_b),
                )
                if t[2] >= threshold
            }
            if not exact:
                continue
            filtered = {
                (t[0], t[1])
                for t in map(
                    _as_edge_tuple, self.match_profiles(profiles_a, profiles_b)
                )
                if t[2] >= threshold
            }
            expected += len(exact)
            for pair, score in exact.items():
                if pair in filtered:
                    found += 1
                else:
                    missed.append(
                        (
                            profiles_a.table_name,
                            pair[0],
                            profiles_b.table_name,
                            pair[1],
                            score,
                        )
                    )
        return RecallReport(
            threshold=threshold,
            table_pairs=table_pairs,
            edges_expected=expected,
            edges_found=found,
            missed=tuple(missed),
        )
