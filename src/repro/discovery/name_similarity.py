"""Schema-level (name-based) similarity measures.

COMA's linguistic matchers compare attribute *names*.  We implement the
standard string-similarity toolbox — normalised Levenshtein, Jaro-Winkler,
character n-gram Jaccard and identifier-token overlap — all returning
scores in [0, 1].
"""

from __future__ import annotations

import re

__all__ = [
    "levenshtein_similarity",
    "jaro_winkler_similarity",
    "ngram_similarity",
    "token_similarity",
    "tokenize_identifier",
]

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - edit_distance / max_length, in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(a), len(b))


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity, rewarding shared prefixes (identifier-friendly)."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if not flagged:
            continue
        while not b_flags[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    jaro = (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def _ngrams(text: str, n: int) -> set[str]:
    padded = f"#{text}#"
    if len(padded) < n:
        return {padded}
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of padded character n-grams."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    grams_a, grams_b = _ngrams(a.lower(), n), _ngrams(b.lower(), n)
    union = grams_a | grams_b
    if not union:
        return 0.0
    return len(grams_a & grams_b) / len(union)


def tokenize_identifier(name: str) -> list[str]:
    """Split an identifier into lowercase word tokens.

    Handles snake_case, kebab-case, spaces and camelCase:
    ``"applicantID"`` -> ``["applicant", "id"]``.
    """
    decamelled = _CAMEL_BOUNDARY.sub(" ", name)
    parts = _NON_ALNUM.split(decamelled)
    return [p.lower() for p in parts if p]


def token_similarity(a: str, b: str) -> float:
    """Jaccard similarity of identifier token sets.

    Catches matches like ``credit_id`` vs ``CreditId`` that character
    metrics under-score, and is the main reason composite matchers beat any
    single string measure.
    """
    tokens_a = set(tokenize_identifier(a))
    tokens_b = set(tokenize_identifier(b))
    union = tokens_a | tokens_b
    if not union:
        return 1.0 if a == b else 0.0
    return len(tokens_a & tokens_b) / len(union)
