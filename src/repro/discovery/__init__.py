"""Dataset discovery: column profiling and COMA-style schema matching.

Provides the "unknown relationships" half of DRG construction — the paper's
data-lake setting, where joinability edges come from a schema matcher
(COMA via Valentine) instead of declared key/foreign-key constraints.
"""

from .coma import ColumnMatch, ComaMatcher
from .distribution import DistributionMatcher, QuantileSketch, quantile_similarity
from .incremental import IncrementalMatchIndex, MatchCounters, MutationReport
from .index import (
    CandidateFilteredMatcher,
    CandidateStats,
    JoinabilityIndex,
    RecallReport,
    validate_banding,
)
from .lsh import LazoMatcher, estimate_containment
from .name_similarity import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    ngram_similarity,
    token_similarity,
    tokenize_identifier,
)
from .profiles import ColumnProfile, TableProfile, profile_column, profile_table
from .valentine import MatchReport, evaluate_matches, run_matcher
from .value_overlap import (
    ValueOverlapMatcher,
    instance_similarity,
    minhash_jaccard,
    numeric_range_overlap,
    sketch_containment,
    sketch_jaccard,
)

__all__ = [
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
    "levenshtein_similarity",
    "jaro_winkler_similarity",
    "ngram_similarity",
    "token_similarity",
    "tokenize_identifier",
    "sketch_jaccard",
    "sketch_containment",
    "minhash_jaccard",
    "numeric_range_overlap",
    "instance_similarity",
    "ColumnMatch",
    "ComaMatcher",
    "ValueOverlapMatcher",
    "IncrementalMatchIndex",
    "MatchCounters",
    "MutationReport",
    "JoinabilityIndex",
    "CandidateFilteredMatcher",
    "CandidateStats",
    "RecallReport",
    "validate_banding",
    "LazoMatcher",
    "estimate_containment",
    "DistributionMatcher",
    "QuantileSketch",
    "quantile_similarity",
    "MatchReport",
    "run_matcher",
    "evaluate_matches",
]
