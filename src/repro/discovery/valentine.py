"""Valentine-style evaluation harness for schema matchers.

Valentine (ICDE 2021) benchmarks matchers by running them over dataset
pairs and scoring the ranked matches against ground truth.  We provide the
two pieces AutoFeat's pipeline needs: a collection runner that produces all
pairwise matches, and precision/recall/F1 against a ground-truth match set
(used by our tests to sanity-check the COMA substitute).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from ..dataframe import Table
from ..errors import DiscoveryError
from .coma import ColumnMatch, ComaMatcher

__all__ = ["MatchReport", "run_matcher", "evaluate_matches"]


@dataclass(frozen=True)
class MatchReport:
    """Precision/recall/F1 of a match set against ground truth."""

    n_matches: int
    n_truth: int
    true_positives: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def run_matcher(
    tables: Sequence[Table],
    matcher: ComaMatcher | None = None,
    threshold: float = 0.55,
) -> list[ColumnMatch]:
    """Match every unordered pair of tables, keep scores >= ``threshold``."""
    if len({t.name for t in tables}) != len(tables):
        raise DiscoveryError("tables must have distinct names")
    matcher = matcher or ComaMatcher()
    out: list[ColumnMatch] = []
    for table_a, table_b in combinations(tables, 2):
        out.extend(
            m for m in matcher.match(table_a, table_b) if m.score >= threshold
        )
    return out


def _canonical(table_a: str, column_a: str, table_b: str, column_b: str):
    forward = (table_a, column_a, table_b, column_b)
    backward = (table_b, column_b, table_a, column_a)
    return min(forward, backward)


def evaluate_matches(
    matches: Sequence[ColumnMatch],
    ground_truth: Sequence[tuple[str, str, str, str]],
) -> MatchReport:
    """Score matches against ``(table_a, col_a, table_b, col_b)`` truths.

    Direction-insensitive: a truth listed A->B is credited when the matcher
    reports B->A.
    """
    predicted = {
        _canonical(m.table_a, m.column_a, m.table_b, m.column_b) for m in matches
    }
    truth = {_canonical(*t) for t in ground_truth}
    true_positives = len(predicted & truth)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(truth) if truth else 0.0
    return MatchReport(
        n_matches=len(predicted),
        n_truth=len(truth),
        true_positives=true_positives,
        precision=precision,
        recall=recall,
    )
