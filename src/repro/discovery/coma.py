"""A COMA-style composite schema matcher.

COMA (Do & Rahm, VLDB 2002) combines multiple independent matchers and
aggregates their scores.  Our instantiation combines four name matchers
(Levenshtein, Jaro-Winkler, trigram, token overlap) and one instance
matcher (value containment/Jaccard), aggregated as a weighted average — the
"default schema matching strategy" knob of the paper's Valentine setup.

The matcher deliberately produces *spurious but not absurd* matches at the
paper's 0.55 threshold: similarly-named columns with disjoint values, or
value-overlapping columns with unrelated names, can clear the bar.  That is
the noise regime AutoFeat's pruning is evaluated against.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from ..dataframe import Table
from ..errors import DiscoveryError
from .name_similarity import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    ngram_similarity,
    token_similarity,
)
from .profiles import ColumnProfile, TableProfile, profile_table
from .value_overlap import instance_similarity

__all__ = ["ColumnMatch", "ComaMatcher"]


@dataclass(frozen=True)
class ColumnMatch:
    """One scored correspondence between columns of two tables."""

    table_a: str
    column_a: str
    table_b: str
    column_b: str
    score: float
    name_score: float
    instance_score: float


def _name_score(a: str, b: str) -> float:
    """Aggregate of the four name matchers (max of avg and token score).

    Taking the max lets a strong token match (``credit_id`` vs
    ``CreditID``) win even when character-level metrics disagree, which is
    COMA's "max" aggregation applied to its linguistic matcher group.
    """
    average = (
        levenshtein_similarity(a.lower(), b.lower())
        + jaro_winkler_similarity(a.lower(), b.lower())
        + ngram_similarity(a, b)
    ) / 3.0
    return max(average, token_similarity(a, b))


class ComaMatcher:
    """Composite name+instance matcher with COMA-style aggregation.

    Parameters
    ----------
    name_weight, instance_weight:
        Convex combination weights for the two matcher groups.  The default
        60/40 mix reflects COMA's emphasis on schema-level evidence with
        instance evidence as corroboration.
    min_score:
        Matches below this floor are not even reported (they would be
        discarded by any realistic threshold anyway).
    key_like_only:
        When True, only column pairs where at least one side looks like a
        join column (key or low-cardinality category) are reported —
        full-feature columns rarely make sense as join keys and skipping
        them keeps the lake graph from drowning in noise.
    """

    def __init__(
        self,
        name_weight: float = 0.6,
        instance_weight: float = 0.4,
        min_score: float = 0.3,
        key_like_only: bool = True,
    ):
        total = name_weight + instance_weight
        if total <= 0:
            raise DiscoveryError("matcher weights must sum to a positive value")
        self._name_weight = name_weight / total
        self._instance_weight = instance_weight / total
        self._min_score = min_score
        self._key_like_only = key_like_only
        # Keyed on id(table) but guarded by a weak reference: a bare id()
        # key can be silently reused for a *different* table once the
        # original is garbage-collected, serving a stale profile.  The
        # stored weakref proves the entry still belongs to this exact
        # object, and its callback evicts the entry when the table dies
        # (unless the slot was already re-occupied by a live table).
        self._profile_cache: dict[int, tuple[weakref.ref[Table], TableProfile]] = {}

    def _evict_profile(self, key: int, ref: weakref.ref) -> None:
        entry = self._profile_cache.get(key)
        if entry is not None and entry[0] is ref:
            del self._profile_cache[key]

    def _profiles(self, table: Table) -> TableProfile:
        key = id(table)
        entry = self._profile_cache.get(key)
        if entry is not None and entry[0]() is table:
            return entry[1]
        profile = profile_table(table)
        ref = weakref.ref(table, lambda r, key=key: self._evict_profile(key, r))
        self._profile_cache[key] = (ref, profile)
        return profile

    @staticmethod
    def _key_like(profile: ColumnProfile) -> bool:
        if profile.n_distinct <= 1:
            return False
        if profile.uniqueness >= 0.5:
            return True
        return profile.n_distinct <= 64

    def match_profiles(
        self, profiles_a: TableProfile, profiles_b: TableProfile
    ) -> list[ColumnMatch]:
        """Score every column pair of two profiled tables."""
        matches = []
        for col_a in profiles_a.columns:
            for col_b in profiles_b.columns:
                if self._key_like_only and not (
                    self._key_like(col_a) and self._key_like(col_b)
                ):
                    continue
                name = _name_score(col_a.column_name, col_b.column_name)
                instance = instance_similarity(col_a, col_b)
                score = (
                    self._name_weight * name + self._instance_weight * instance
                )
                if score >= self._min_score:
                    matches.append(
                        ColumnMatch(
                            table_a=profiles_a.table_name,
                            column_a=col_a.column_name,
                            table_b=profiles_b.table_name,
                            column_b=col_b.column_name,
                            score=round(float(score), 6),
                            name_score=round(float(name), 6),
                            instance_score=round(float(instance), 6),
                        )
                    )
        matches.sort(key=lambda m: (-m.score, m.column_a, m.column_b))
        return matches

    def match(self, table_a: Table, table_b: Table) -> list[ColumnMatch]:
        """Score every column pair of two tables (profiles are cached)."""
        return self.match_profiles(self._profiles(table_a), self._profiles(table_b))

    def __call__(self, table_a: Table, table_b: Table):
        """Adapter to the DRG ``Matcher`` protocol: yields score tuples."""
        for match in self.match(table_a, table_b):
            yield match.column_a, match.column_b, match.score
