"""Instance-level (value-based) similarity measures.

COMA's instance matchers compare column *contents*.  Joinability is about
shared values, so the primary signals are Jaccard overlap and containment
over the profile sketches, with a MinHash estimator available when sketches
were truncated.
"""

from __future__ import annotations

import numpy as np

from .profiles import ColumnProfile

__all__ = [
    "sketch_jaccard",
    "sketch_containment",
    "minhash_jaccard",
    "numeric_range_overlap",
    "instance_similarity",
]


def sketch_jaccard(a: ColumnProfile, b: ColumnProfile) -> float:
    """Exact Jaccard over the (bounded) distinct-value sketches."""
    union = a.sketch | b.sketch
    if not union:
        return 0.0
    return len(a.sketch & b.sketch) / len(union)


def sketch_containment(a: ColumnProfile, b: ColumnProfile) -> float:
    """Max directional containment |A∩B| / min(|A|, |B|).

    Joinability cares about the smaller side being covered: a 50-value
    foreign key fully contained in a 10000-value primary key is perfectly
    joinable despite tiny Jaccard.
    """
    smaller = min(len(a.sketch), len(b.sketch))
    if smaller == 0:
        return 0.0
    return len(a.sketch & b.sketch) / smaller


def minhash_jaccard(a: ColumnProfile, b: ColumnProfile) -> float:
    """MinHash estimate of Jaccard — agreement rate of the signatures."""
    if a.minhash.size == 0 or a.minhash.size != b.minhash.size:
        return 0.0
    return float(np.mean(a.minhash == b.minhash))


def numeric_range_overlap(a: ColumnProfile, b: ColumnProfile) -> float:
    """Overlap fraction of numeric [min, max] ranges (weak evidence)."""
    if a.numeric_min is None or b.numeric_min is None:
        return 0.0
    lo = max(a.numeric_min, b.numeric_min)
    hi = min(a.numeric_max, b.numeric_max)
    if hi < lo:
        return 0.0
    span = max(a.numeric_max, b.numeric_max) - min(a.numeric_min, b.numeric_min)
    if span == 0.0:
        return 1.0
    return (hi - lo) / span


def instance_similarity(a: ColumnProfile, b: ColumnProfile) -> float:
    """Composite instance score: containment-dominant, Jaccard-backed.

    Containment is the joinability signal; Jaccard tempers it so that a
    tiny sketch trivially contained in a huge one does not score 1.0
    outright.  Incompatible dtypes (string vs numeric) score 0.
    """
    if a.dtype.is_numeric != b.dtype.is_numeric:
        return 0.0
    containment = sketch_containment(a, b)
    jaccard = sketch_jaccard(a, b)
    return 0.7 * containment + 0.3 * jaccard
