"""Instance-level (value-based) similarity measures.

COMA's instance matchers compare column *contents*.  Joinability is about
shared values, so the primary signals are Jaccard overlap and containment
over the profile sketches, with a MinHash estimator available when sketches
were truncated.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..dataframe import Table
from ..errors import DiscoveryError
from .profiles import ColumnProfile, TableProfile, profile_table

__all__ = [
    "sketch_jaccard",
    "sketch_containment",
    "minhash_jaccard",
    "numeric_range_overlap",
    "instance_similarity",
    "ValueOverlapMatcher",
]


def sketch_jaccard(a: ColumnProfile, b: ColumnProfile) -> float:
    """Exact Jaccard over the (bounded) distinct-value sketches."""
    union = a.sketch | b.sketch
    if not union:
        return 0.0
    return len(a.sketch & b.sketch) / len(union)


def sketch_containment(a: ColumnProfile, b: ColumnProfile) -> float:
    """Max directional containment |A∩B| / min(|A|, |B|).

    Joinability cares about the smaller side being covered: a 50-value
    foreign key fully contained in a 10000-value primary key is perfectly
    joinable despite tiny Jaccard.
    """
    smaller = min(len(a.sketch), len(b.sketch))
    if smaller == 0:
        return 0.0
    return len(a.sketch & b.sketch) / smaller


def minhash_jaccard(a: ColumnProfile, b: ColumnProfile) -> float:
    """MinHash estimate of Jaccard — agreement rate of the signatures."""
    if a.minhash.size == 0 or a.minhash.size != b.minhash.size:
        return 0.0
    return float(np.mean(a.minhash == b.minhash))


def numeric_range_overlap(a: ColumnProfile, b: ColumnProfile) -> float:
    """Overlap fraction of numeric [min, max] ranges (weak evidence)."""
    if a.numeric_min is None or b.numeric_min is None:
        return 0.0
    lo = max(a.numeric_min, b.numeric_min)
    hi = min(a.numeric_max, b.numeric_max)
    if hi < lo:
        return 0.0
    span = max(a.numeric_max, b.numeric_max) - min(a.numeric_min, b.numeric_min)
    if span == 0.0:
        return 1.0
    return (hi - lo) / span


def instance_similarity(a: ColumnProfile, b: ColumnProfile) -> float:
    """Composite instance score: containment-dominant, Jaccard-backed.

    Containment is the joinability signal; Jaccard tempers it so that a
    tiny sketch trivially contained in a huge one does not score 1.0
    outright.  Incompatible dtypes (string vs numeric) score 0.
    """
    if a.dtype.is_numeric != b.dtype.is_numeric:
        return 0.0
    containment = sketch_containment(a, b)
    jaccard = sketch_jaccard(a, b)
    return 0.7 * containment + 0.3 * jaccard


class ValueOverlapMatcher:
    """Pure instance-level matcher: names are ignored entirely.

    Scores every column pair with :func:`instance_similarity` alone —
    the "instance-only strategy" knob of the paper's Valentine setup,
    and the adversarial counterpart to :class:`~repro.discovery.ComaMatcher`
    for candidate-filtering parity tests (no name channel can rescue a
    missed value collision).  Same ``Matcher`` protocol, same
    ``(-score, column_a, column_b)`` output order.
    """

    def __init__(self, min_score: float = 0.3):
        if not 0.0 <= min_score <= 1.0:
            raise DiscoveryError(
                f"min_score must be within [0, 1], got {min_score}"
            )
        self._min_score = min_score
        # Same weakref-guarded id-keyed cache recipe as ComaMatcher.
        self._profile_cache: dict[int, tuple[weakref.ref[Table], TableProfile]] = {}

    def _evict_profile(self, key: int, ref: weakref.ref) -> None:
        entry = self._profile_cache.get(key)
        if entry is not None and entry[0] is ref:
            del self._profile_cache[key]

    def _profiles(self, table: Table) -> TableProfile:
        key = id(table)
        entry = self._profile_cache.get(key)
        if entry is not None and entry[0]() is table:
            return entry[1]
        profile = profile_table(table)
        ref = weakref.ref(table, lambda r, key=key: self._evict_profile(key, r))
        self._profile_cache[key] = (ref, profile)
        return profile

    def match_profiles(
        self, profiles_a: TableProfile, profiles_b: TableProfile
    ) -> list[tuple[str, str, float]]:
        """Instance-similarity scores of every column pair, sorted."""
        matches = []
        for col_a in profiles_a.columns:
            for col_b in profiles_b.columns:
                score = instance_similarity(col_a, col_b)
                if score >= self._min_score:
                    matches.append(
                        (
                            col_a.column_name,
                            col_b.column_name,
                            round(float(score), 6),
                        )
                    )
        matches.sort(key=lambda t: (-t[2], t[0], t[1]))
        return matches

    def match(self, table_a: Table, table_b: Table):
        """Scored column pairs of two tables (profiles are cached)."""
        return self.match_profiles(self._profiles(table_a), self._profiles(table_b))

    def __call__(self, table_a: Table, table_b: Table):
        """DRG ``Matcher`` protocol adapter."""
        yield from self.match(table_a, table_b)
