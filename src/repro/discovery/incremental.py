"""Incremental schema matching: re-match only what a mutation touched.

Cold DRG construction (:meth:`repro.graph.DatasetRelationGraph
.from_discovery`) profiles every table and scores every unordered table
pair — O(n²) matcher calls — on every invocation.  A long-lived service
cannot afford that per mutation: registering one table into a 1000-table
lake only ever changes the pairs *that table participates in*.

:class:`IncrementalMatchIndex` is the standing index behind the
:class:`repro.service.DiscoveryService`: it keeps, per table, the
:class:`~repro.discovery.profiles.TableProfile` and, per unordered pair,
the matcher's scored output.  A mutation —

* :meth:`register_table` — profiles the new table once and matches it
  against the stored profiles of every existing table (n-1 pairs);
* :meth:`update_table` — re-profiles the one table and re-matches its
  n-1 pairs, reusing every other profile;
* :meth:`drop_table` — pure bookkeeping, zero matcher calls

— then emits a :class:`~repro.graph.DrgDelta` so the DRG is rebuilt by
*replaying* stored matches (cheap adjacency work) rather than re-running
the matcher.  The resulting graph is bit-identical to a cold
``from_discovery`` over the same table sequence; the property suite in
``tests/service/test_incremental_equivalence.py`` drives that contract
over random mutation sequences for both the COMA and Lazo matchers.

Any matcher exposing ``match_profiles(profiles_a, profiles_b)`` — either
returning :class:`~repro.discovery.ColumnMatch` objects
(:class:`~repro.discovery.ComaMatcher`) or plain ``(col_a, col_b,
score)`` tuples (:class:`~repro.discovery.LazoMatcher`) — plugs in;
matchers without profile support fall back to being called on the raw
tables, still scoped to the affected pairs only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..dataframe import Table
from ..errors import DiscoveryError
from ..graph import DatasetRelationGraph, DrgDelta
from .coma import ComaMatcher
from .profiles import TableProfile, profile_table

__all__ = ["MatchCounters", "MutationReport", "IncrementalMatchIndex"]

#: One scored correspondence, matcher-agnostic.
PairMatches = tuple[tuple[str, str, float], ...]


@dataclass
class MatchCounters:
    """Cumulative work accounting of one index's lifetime.

    ``pairs_reused`` counts pairs whose stored matches were replayed
    instead of re-scored during mutations — the work the incremental
    path saves over a cold rebuild (which would re-match them all).
    """

    profiles_built: int = 0
    pairs_matched: int = 0
    pairs_reused: int = 0
    mutations: int = 0

    def as_dict(self) -> dict:
        return {
            "profiles_built": self.profiles_built,
            "pairs_matched": self.pairs_matched,
            "pairs_reused": self.pairs_reused,
            "mutations": self.mutations,
        }


@dataclass(frozen=True)
class MutationReport:
    """What one register/update/drop actually touched.

    ``affected_tables`` is the surgical-invalidation input consumed by the
    service layer: the mutated table plus the *other* endpoint of every
    pair whose thresholded edge set changed.  Pairs that were re-matched
    but produced identical edges do not put their partner here — a cached
    result that only ever saw the partner stays valid.
    """

    kind: str
    table: str
    version: int
    changed_pairs: tuple[tuple[str, str], ...] = ()
    affected_tables: frozenset[str] = frozenset()
    n_pairs_rematched: int = 0
    n_pairs_reused: int = 0
    #: Whether the mutated table's *contents* changed (update/drop) —
    #: only then do that table's cached join indexes go stale.
    content_changed: bool = True


class IncrementalMatchIndex:
    """Standing profile + pair-match index over a mutable lake.

    Parameters
    ----------
    tables:
        The initial lake, in canonical order (order is part of the
        determinism contract: traversal and ranking follow adjacency
        insertion order, which follows table order).
    matcher:
        Any DRG ``Matcher``; profile-aware matchers (``match_profiles``)
        get the incremental fast path.  Defaults to :class:`ComaMatcher`.
    threshold:
        Minimum score for a stored match to become a DRG edge — the same
        knob as :meth:`DatasetRelationGraph.from_discovery`.
    """

    def __init__(
        self,
        tables=(),
        matcher=None,
        threshold: float = 0.55,
    ):
        if not 0.0 < threshold <= 1.0:
            raise DiscoveryError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.matcher = matcher if matcher is not None else ComaMatcher()
        self.threshold = threshold
        self.counters = MatchCounters()
        self._tables: dict[str, Table] = {}
        self._profiles: dict[str, TableProfile] = {}
        self._matches: dict[tuple[str, str], PairMatches] = {}
        self._version = 0
        for table in tables:
            self._ingest(table)
        self._drg = self._build_full()

    # -- views ---------------------------------------------------------------

    @property
    def drg(self) -> DatasetRelationGraph:
        """The current DRG snapshot (replaced, never mutated, per change)."""
        return self._drg

    @property
    def version(self) -> int:
        """Monotonic mutation counter (0 = the initial build)."""
        return self._version

    @property
    def tables(self) -> list[Table]:
        """Current tables in canonical order."""
        return list(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return list(self._tables.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- matching internals --------------------------------------------------

    def _ingest(self, table: Table) -> None:
        """Profile ``table`` and match it against every stored table."""
        if not table.name:
            raise DiscoveryError("every lake table needs a non-empty name")
        if table.name in self._tables:
            raise DiscoveryError(f"duplicate table name {table.name!r}")
        self._profiles[table.name] = self._profile(table)
        for existing in self._tables:
            self._matches[(existing, table.name)] = self._match_pair(
                existing, table.name, right_table=table
            )
        self._tables[table.name] = table

    def _profile(self, table: Table) -> TableProfile | None:
        if not hasattr(self.matcher, "match_profiles"):
            return None
        self.counters.profiles_built += 1
        profile = profile_table(table)
        if hasattr(self.matcher, "register_profile"):
            # Sketch-index matchers keep a standing index: insert (or
            # replace) this table's sketches now so a mutation never
            # re-profiles the rest of the lake.
            self.matcher.register_profile(profile)
        return profile

    def _match_pair(
        self, name_a: str, name_b: str, right_table: Table | None = None
    ) -> PairMatches:
        """Run the matcher over one pair, normalising its output."""
        self.counters.pairs_matched += 1
        if hasattr(self.matcher, "match_profiles"):
            raw = self.matcher.match_profiles(
                self._profiles[name_a], self._profiles[name_b]
            )
        else:
            table_b = (
                right_table if right_table is not None else self._tables[name_b]
            )
            raw = self.matcher(self._tables[name_a], table_b)
        out = []
        for match in raw:
            column_a = getattr(match, "column_a", None)
            if column_a is not None:
                out.append((match.column_a, match.column_b, float(match.score)))
            else:
                ca, cb, score = match
                out.append((ca, cb, float(score)))
        return tuple(out)

    def _edges_for(self, pair: tuple[str, str]) -> PairMatches:
        """The pair's stored matches at or above the edge threshold."""
        return tuple(
            m for m in self._matches.get(pair, ()) if m[2] >= self.threshold
        )

    def _pairs_of(self, name: str) -> list[tuple[str, str]]:
        """Every stored unordered pair involving ``name``, in order."""
        return [pair for pair in self._matches if name in pair]

    def _build_full(self) -> DatasetRelationGraph:
        """Replay every stored pair into a fresh DRG (initial build)."""
        drg = DatasetRelationGraph(self.tables)
        for name_a, name_b in combinations(self._tables, 2):
            for column_a, column_b, score in self._edges_for((name_a, name_b)):
                drg.add_relationship(
                    name_a, column_a, name_b, column_b, weight=score
                )
        return drg

    def rebuild(self) -> DatasetRelationGraph:
        """Cold full rebuild from scratch — the equivalence oracle.

        Re-profiles and re-matches everything with a *stateless* pass,
        exactly like :meth:`DatasetRelationGraph.from_discovery` over the
        current table sequence.  Used by tests and the benchmark parity
        gate; the service never calls this.
        """
        return DatasetRelationGraph.from_discovery(
            self.tables, self.matcher, threshold=self.threshold
        )

    # -- mutations -----------------------------------------------------------

    def _finish(
        self,
        kind: str,
        name: str,
        old_edges: dict[tuple[str, str], PairMatches],
        pair_edges: dict[tuple[str, str], PairMatches],
        delta: DrgDelta,
        content_changed: bool,
        n_rematched: int,
    ) -> MutationReport:
        changed = tuple(
            pair
            for pair in sorted(set(old_edges) | set(pair_edges))
            if old_edges.get(pair, ()) != pair_edges.get(pair, ())
        )
        affected = {name}
        for pair in changed:
            affected.update(pair)
        self._drg = self._drg.apply_delta(delta)
        self._version += 1
        self.counters.mutations += 1
        n_total_pairs = max(len(self._tables) * (len(self._tables) - 1) // 2, 0)
        reused = max(n_total_pairs - n_rematched, 0)
        self.counters.pairs_reused += reused
        return MutationReport(
            kind=kind,
            table=name,
            version=self._version,
            changed_pairs=changed,
            affected_tables=frozenset(affected),
            n_pairs_rematched=n_rematched,
            n_pairs_reused=reused,
            content_changed=content_changed,
        )

    def register_table(self, table: Table) -> MutationReport:
        """Add a new table: one profile, n-1 pair matches, nothing else."""
        if table.name in self._tables:
            raise DiscoveryError(
                f"table {table.name!r} already registered; "
                f"use update_table to replace it"
            )
        existing = list(self._tables)
        self._ingest(table)
        pair_edges = {
            (name, table.name): self._edges_for((name, table.name))
            for name in existing
        }
        delta = DrgDelta(added=(table,), pair_edges=pair_edges)
        return self._finish(
            "register",
            table.name,
            old_edges={},
            pair_edges=pair_edges,
            delta=delta,
            content_changed=False,
            n_rematched=len(existing),
        )

    def update_table(self, table: Table) -> MutationReport:
        """Replace a table in place: re-profile it, re-match its pairs."""
        if table.name not in self._tables:
            raise DiscoveryError(
                f"unknown table {table.name!r}; "
                f"use register_table to add it"
            )
        name = table.name
        pairs = self._pairs_of(name)
        old_edges = {pair: self._edges_for(pair) for pair in pairs}
        self._profiles[name] = self._profile(table)
        self._tables[name] = table
        for pair in pairs:
            self._matches[pair] = self._match_pair(*pair)
        pair_edges = {pair: self._edges_for(pair) for pair in pairs}
        delta = DrgDelta(updated=(table,), pair_edges=pair_edges)
        return self._finish(
            "update",
            name,
            old_edges=old_edges,
            pair_edges=pair_edges,
            delta=delta,
            content_changed=True,
            n_rematched=len(pairs),
        )

    def drop_table(self, name: str) -> MutationReport:
        """Remove a table: pure bookkeeping, zero matcher calls."""
        if name not in self._tables:
            raise DiscoveryError(f"unknown table {name!r}; nothing to drop")
        pairs = self._pairs_of(name)
        old_edges = {pair: self._edges_for(pair) for pair in pairs}
        del self._tables[name]
        del self._profiles[name]
        for pair in pairs:
            del self._matches[pair]
        if hasattr(self.matcher, "drop_table"):
            self.matcher.drop_table(name)
        delta = DrgDelta(dropped=(name,))
        return self._finish(
            "drop",
            name,
            old_edges=old_edges,
            pair_edges={},
            delta=delta,
            content_changed=True,
            n_rematched=0,
        )
