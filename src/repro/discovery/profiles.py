"""Column profiling for schema matching.

Matchers never touch full columns: each column is summarised once into a
:class:`ColumnProfile` — dtype, cardinality, a bounded sketch of distinct
values and a MinHash signature — and all pairwise similarity is computed on
profiles.  This mirrors how dataset-discovery systems (Aurum, Lazo, JOSIE)
scale to lakes: profile once, match many times.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..dataframe import Column, DType, Table

__all__ = ["ColumnProfile", "TableProfile", "profile_column", "profile_table"]

SKETCH_SIZE = 256
MINHASH_PERMUTATIONS = 64
_MERSENNE_PRIME = (1 << 61) - 1


def _stable_hash(token: str) -> int:
    """64-bit hash that is stable across processes (unlike ``hash``)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


#: Token-batch size for the vectorised permutation step: bounds the
#: (chunk × n_perm) uint64 scratch matrix at ~2 MiB however many distinct
#: values a column holds.
_MINHASH_CHUNK = 4096


def _minhash_signature(tokens: set[str], n_perm: int = MINHASH_PERMUTATIONS) -> np.ndarray:
    """MinHash signature of a token set under ``n_perm`` linear permutations.

    The permutation step is one outer product per token chunk instead of a
    python loop over tokens; uint64 multiplication wraps identically
    elementwise, so the signature is bit-identical to the scalar recipe.
    """
    signature = np.full(n_perm, np.iinfo(np.uint64).max, dtype=np.uint64)
    if not tokens:
        return signature
    rng = np.random.default_rng(0xDA7A)
    a = rng.integers(1, _MERSENNE_PRIME, size=n_perm, dtype=np.uint64)
    b = rng.integers(0, _MERSENNE_PRIME, size=n_perm, dtype=np.uint64)
    hashes = np.asarray([_stable_hash(t) for t in tokens], dtype=np.uint64)
    for lo in range(0, hashes.size, _MINHASH_CHUNK):
        chunk = hashes[lo : lo + _MINHASH_CHUNK]
        permuted = (chunk[:, None] * a[None, :] + b[None, :]) % _MERSENNE_PRIME
        signature = np.minimum(signature, permuted.min(axis=0))
    return signature


def _normalise(value: object) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value).strip().lower()


@dataclass(frozen=True)
class ColumnProfile:
    """Compact matching summary of a single column."""

    table_name: str
    column_name: str
    dtype: DType
    n_rows: int
    n_distinct: int
    null_ratio: float
    sketch: frozenset[str]
    minhash: np.ndarray = field(repr=False, compare=False)
    numeric_min: float | None = None
    numeric_max: float | None = None

    @property
    def uniqueness(self) -> float:
        """Distinct fraction — near 1.0 marks a key candidate."""
        non_null = self.n_rows * (1.0 - self.null_ratio)
        if non_null <= 0:
            return 0.0
        return min(1.0, self.n_distinct / non_null)


@dataclass(frozen=True)
class TableProfile:
    """Profiles for every column of one table."""

    table_name: str
    columns: tuple[ColumnProfile, ...]

    def column(self, name: str) -> ColumnProfile:
        for profile in self.columns:
            if profile.column_name == name:
                return profile
        raise KeyError(name)


def profile_column(column: Column, table_name: str, column_name: str) -> ColumnProfile:
    """Summarise one column into a :class:`ColumnProfile`.

    The sketch keeps up to :data:`SKETCH_SIZE` distinct normalised values —
    enough for containment estimates on join keys, bounded regardless of
    table size.  Values are sampled deterministically (sorted order) so
    profiling is reproducible.
    """
    distinct = column.unique()
    normalised = [_normalise(v) for v in distinct]
    sketch_values = frozenset(normalised[:SKETCH_SIZE])
    numeric_min = numeric_max = None
    if column.dtype.is_numeric:
        present = column.non_null_values().astype(np.float64)
        if present.size:
            numeric_min = float(present.min())
            numeric_max = float(present.max())
    return ColumnProfile(
        table_name=table_name,
        column_name=column_name,
        dtype=column.dtype,
        n_rows=len(column),
        n_distinct=len(distinct),
        null_ratio=column.null_ratio(),
        sketch=sketch_values,
        minhash=_minhash_signature(set(normalised)),
        numeric_min=numeric_min,
        numeric_max=numeric_max,
    )


def profile_table(table: Table) -> TableProfile:
    """Profile every column of ``table``."""
    return TableProfile(
        table_name=table.name,
        columns=tuple(
            profile_column(table.column(name), table.name, name)
            for name in table.column_names
        ),
    )
