"""Always-on discovery service: warm state, request queue, lake mutations.

Turns the batch AutoFeat pipeline into a standing server.  One
:class:`DiscoveryService` holds the profiles, pair matches, DRG,
hop cache and ranked results warm across requests; ``register_table`` /
``update_table`` / ``drop_table`` mutate the lake incrementally while
keeping every answer bit-identical to a cold full rebuild (DESIGN.md §12).
"""

from .service import DiscoveryService, RequestFuture, ServiceResponse
from .state import CachedEntry, LakeSnapshot, reachable_within

__all__ = [
    "DiscoveryService",
    "RequestFuture",
    "ServiceResponse",
    "LakeSnapshot",
    "CachedEntry",
    "reachable_within",
]
