"""The always-on DiscoveryService: warm state, a request queue, mutations.

Every pipeline invocation so far rebuilt the world from scratch — lake
profiling, O(n²) matching, DRG construction and cache warm-up were all
per-run.  :class:`DiscoveryService` turns that batch job into a standing
server, the architecture of fuzzbench's service/scheduler split applied
to feature discovery:

* **warm shared state** — one :class:`~repro.discovery
  .IncrementalMatchIndex` (profiles + pair matches + the current DRG
  snapshot), one long-lived single-flight
  :class:`~repro.engine.HopCache` shared into every run's
  :class:`~repro.engine.JoinEngine`, and a result cache of whole
  :class:`~repro.core.DiscoveryResult` / ``AugmentationResult`` objects;
* **a request queue** — :meth:`submit` enqueues ``discover``/``augment``
  requests which ``n_workers`` threads drain concurrently, each run
  multiplexed onto the existing engine/executor machinery
  (``config.parallel_backend`` still applies *within* a request);
* **incremental mutation** — :meth:`register_table` /
  :meth:`update_table` / :meth:`drop_table` re-profile and re-match only
  the affected column pairs, rebuild the DRG snapshot through
  :meth:`~repro.graph.DatasetRelationGraph.apply_delta`, and surgically
  invalidate only the dependent hop-cache entries and cached results.

Concurrency model: a readers-writer lock.  Requests hold the read side
while they resolve their snapshot and run; mutations take the write side
— they wait for in-flight requests to drain, apply the delta, invalidate,
publish the new snapshot, and release.  Requests already running keep the
snapshot (an immutable DRG) they started with, so they never observe a
half-applied mutation; requests dequeued after the mutation see the new
snapshot.  The correctness bar is the determinism contract of DESIGN.md
§11 lifted to service scope: after *any* mutation sequence, a query
answered from warm state is bit-identical to a cold full rebuild.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from ..core import AutoFeat, AutoFeatConfig
from ..core.result import AugmentationResult, DiscoveryResult
from ..dataframe import Table
from ..discovery import (
    CandidateFilteredMatcher,
    IncrementalMatchIndex,
    MutationReport,
)
from ..engine import HopCache
from ..errors import DiscoveryError, ServiceError
from ..obs import MetricsRegistry, RunManifest, build_manifest, flat_node
from ..obs.manifest import config_snapshot
from .state import CachedEntry, LakeSnapshot, reachable_within

__all__ = ["DiscoveryService", "RequestFuture", "ServiceResponse"]

REQUEST_KINDS = ("discover", "augment")

_SHUTDOWN = object()


class _RWLock:
    """Writer-priority readers-writer lock.

    Many request workers read concurrently; a mutation writer blocks new
    readers, waits for the in-flight ones to drain, and runs alone.
    Writer priority keeps a busy queue from starving mutations forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._cond:
            while self._writing or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            while self._writing or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


@dataclass(frozen=True)
class ServiceResponse:
    """One answered request: the pipeline result plus service bookkeeping."""

    kind: str
    base_table: str
    label_column: str
    model_name: str | None
    result: DiscoveryResult | AugmentationResult
    cache_hit: bool
    #: True when the run's anytime budget expired and ``result`` is the
    #: best-so-far partial answer rather than the full exploration.
    budget_exhausted: bool
    snapshot_version: int
    queue_seconds: float
    execute_seconds: float
    #: The per-request service manifest (queue wait, execution, cache
    #: disposition, snapshot version) — distinct from ``result
    #: .run_manifest``, which records the pipeline run that *produced*
    #: the result (possibly on an earlier request, when served warm).
    manifest: RunManifest


class RequestFuture:
    """Handle on one queued request; resolves to a :class:`ServiceResponse`."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._response: ServiceResponse | None = None
        self._exception: BaseException | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        if not self._done.wait(timeout):
            raise ServiceError("request did not complete within the timeout")
        if self._exception is not None:
            raise self._exception
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServiceResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._done.set()


@dataclass
class _Request:
    kind: str
    base: str
    label: str
    model_name: str | None
    config: AutoFeatConfig
    use_cache: bool
    future: RequestFuture
    submitted_at: float = field(default_factory=time.perf_counter)


def _config_key(config: AutoFeatConfig) -> tuple:
    """Hashable identity of a request config (part of the cache key)."""
    return tuple(sorted(config_snapshot(config).items()))


class DiscoveryService:
    """Long-lived feature-discovery server over a mutable lake.

    Parameters
    ----------
    tables:
        Initial lake, in canonical order.
    matcher:
        Schema matcher for edge discovery (:class:`~repro.discovery
        .ComaMatcher` by default; any ``Matcher`` works, profile-aware
        ones incrementally).  With ``config.enable_sketch_index`` the
        matcher is wrapped in a :class:`~repro.discovery
        .CandidateFilteredMatcher` so only sketch-index candidates are
        scored exactly; ``config.candidate_min_recall`` additionally
        audits the initial lake against the full quadratic scan and
        refuses to start below the floor.
    threshold:
        Edge-score threshold, as in ``from_discovery``.
    config:
        Default :class:`AutoFeatConfig` for requests that do not bring
        their own.  ``enable_hop_cache`` governs the *shared* cache.
    n_workers:
        Request-queue worker threads (concurrent requests in flight).
    enable_result_cache:
        Serve repeated identical queries from the warm result cache
        (invalidated surgically on mutation).  Disable for strict
        recompute-every-time semantics.
    """

    def __init__(
        self,
        tables=(),
        matcher=None,
        threshold: float = 0.55,
        config: AutoFeatConfig | None = None,
        n_workers: int = 2,
        enable_result_cache: bool = True,
    ):
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self.config = config or AutoFeatConfig()
        self.index = IncrementalMatchIndex(
            tables, matcher=self._resolve_matcher(matcher), threshold=threshold
        )
        self.recall_report = self._verify_candidate_recall(threshold)
        self.hop_cache = HopCache(enabled=self.config.enable_hop_cache)
        self.registry = MetricsRegistry()
        self._snapshot = LakeSnapshot(version=0, drg=self.index.drg)
        self._rw = _RWLock()
        self._enable_result_cache = enable_result_cache
        self._results: dict[tuple, CachedEntry] = {}
        self._results_lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._in_flight = 0
        self._state_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"discovery-svc-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    def _resolve_matcher(self, matcher):
        """Wrap the exact matcher in the sketch index when configured."""
        if not self.config.enable_sketch_index:
            return matcher
        if isinstance(matcher, CandidateFilteredMatcher):
            return matcher
        return CandidateFilteredMatcher(
            matcher,
            bands=self.config.sketch_bands,
            rows_per_band=self.config.sketch_rows_per_band,
        )

    def _verify_candidate_recall(self, threshold: float):
        """Audit the initial lake against the full quadratic scan.

        Only runs when ``config.candidate_min_recall`` is set and the
        index is actually a candidate filter; returns the
        :class:`~repro.discovery.RecallReport` (or None when skipped) and
        raises :class:`~repro.errors.DiscoveryError` below the floor.
        """
        floor = self.config.candidate_min_recall
        if floor is None or not isinstance(
            self.index.matcher, CandidateFilteredMatcher
        ):
            return None
        report = self.index.matcher.verify_exact(
            self.index.tables, threshold=threshold
        )
        if report.recall < floor:
            raise DiscoveryError(
                f"sketch-index candidate recall {report.recall:.6f} is "
                f"below the configured floor {floor} "
                f"({len(report.missed)} of {report.edges_expected} "
                f"would-be edges missed)"
            )
        return report

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "DiscoveryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drain the queue and stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join()

    # -- snapshot access -----------------------------------------------------

    @property
    def snapshot(self) -> LakeSnapshot:
        """The current immutable lake snapshot."""
        return self._snapshot

    @property
    def drg(self):
        return self._snapshot.drg

    @property
    def version(self) -> int:
        return self._snapshot.version

    # -- requests ------------------------------------------------------------

    def submit(
        self,
        kind: str,
        base: str,
        label: str,
        model_name: str | None = None,
        config: AutoFeatConfig | None = None,
        use_cache: bool = True,
        budget_seconds: float | None = None,
        max_hops: int | None = None,
    ) -> RequestFuture:
        """Enqueue one request; returns immediately with a future.

        ``budget_seconds`` / ``max_hops`` override the config's anytime
        budget for this request only (see DESIGN.md §14).  The wall-clock
        deadline starts ticking when a worker *begins executing* the run,
        not at submit time, so queue wait never eats the budget.  Budget
        overrides are part of the result-cache key (they live on the
        request config), so a tight-budget partial answer is never served
        to a later unbudgeted request.
        """
        if self._closed:
            raise ServiceError("service is closed; no further requests")
        if kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
            )
        resolved = config or self.config
        if budget_seconds is not None or max_hops is not None:
            overrides = {}
            if budget_seconds is not None:
                overrides["budget_seconds"] = budget_seconds
            if max_hops is not None:
                overrides["max_hops"] = max_hops
            # replace() re-runs AutoFeatConfig.__post_init__, so invalid
            # budgets are rejected here, before the request is queued.
            resolved = replace(resolved, **overrides)
        request = _Request(
            kind=kind,
            base=base,
            label=label,
            model_name=(
                (model_name or "lightgbm") if kind == "augment" else None
            ),
            config=resolved,
            use_cache=use_cache and self._enable_result_cache,
            future=RequestFuture(),
        )
        self.registry.counter("service.requests_submitted").inc()
        self._queue.put(request)
        self.registry.gauge("service.queue_depth").set(self._queue.qsize())
        return request.future

    def discover(
        self,
        base: str,
        label: str,
        config: AutoFeatConfig | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        budget_seconds: float | None = None,
        max_hops: int | None = None,
    ) -> ServiceResponse:
        """Synchronous convenience wrapper: submit + wait."""
        return self.submit(
            "discover",
            base,
            label,
            config=config,
            use_cache=use_cache,
            budget_seconds=budget_seconds,
            max_hops=max_hops,
        ).result(timeout)

    def augment(
        self,
        base: str,
        label: str,
        model_name: str = "lightgbm",
        config: AutoFeatConfig | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
        budget_seconds: float | None = None,
        max_hops: int | None = None,
    ) -> ServiceResponse:
        """Synchronous convenience wrapper: submit + wait."""
        return self.submit(
            "augment",
            base,
            label,
            model_name=model_name,
            config=config,
            use_cache=use_cache,
            budget_seconds=budget_seconds,
            max_hops=max_hops,
        ).result(timeout)

    # -- worker side ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            self.registry.gauge("service.queue_depth").set(self._queue.qsize())
            with self._state_lock:
                self._in_flight += 1
                self.registry.gauge("service.requests_in_flight").set(
                    self._in_flight
                )
            try:
                item.future._resolve(self._serve(item))
            except BaseException as exc:  # surface through the future
                self.registry.counter("service.requests_failed").inc()
                item.future._fail(exc)
            finally:
                with self._state_lock:
                    self._in_flight -= 1
                    self.registry.gauge("service.requests_in_flight").set(
                        self._in_flight
                    )

    def _serve(self, request: _Request) -> ServiceResponse:
        queue_seconds = time.perf_counter() - request.submitted_at
        started = time.perf_counter()
        with self._rw.read():
            snapshot = self._snapshot
            key = (
                request.kind,
                request.base,
                request.label,
                request.model_name,
                _config_key(request.config),
            )
            entry = self._lookup(key) if request.use_cache else None
            if entry is not None:
                result = entry.result
                cache_hit = True
            else:
                result = self._run(request, snapshot)
                cache_hit = False
                if request.use_cache and self._cacheable(request, result):
                    self._store(key, request, snapshot, result)
        execute_seconds = time.perf_counter() - started
        budget_exhausted = bool(getattr(result, "budget_exhausted", False))
        if budget_exhausted:
            self.registry.counter("service.requests_budget_exhausted").inc()
        self._count_cache(cache_hit)
        manifest = self._request_manifest(
            request, snapshot, cache_hit, queue_seconds, execute_seconds
        )
        return ServiceResponse(
            kind=request.kind,
            base_table=request.base,
            label_column=request.label,
            model_name=request.model_name,
            result=result,
            cache_hit=cache_hit,
            budget_exhausted=budget_exhausted,
            snapshot_version=snapshot.version,
            queue_seconds=queue_seconds,
            execute_seconds=execute_seconds,
            manifest=manifest,
        )

    def _run(self, request: _Request, snapshot: LakeSnapshot):
        """Execute one pipeline run against shared immutable state."""
        autofeat = AutoFeat(
            snapshot.drg, request.config, hop_cache=self.hop_cache
        )
        if request.kind == "discover":
            return autofeat.discover(request.base, request.label)
        return autofeat.augment(
            request.base, request.label, model_name=request.model_name
        )

    @staticmethod
    def _cacheable(request: _Request, result) -> bool:
        """Whether a fresh result may enter the warm result cache.

        A ``max_hops``-exhausted result is deterministic — the hop budget
        cuts the canonical exploration order at a fixed point, so a rerun
        reproduces it bit-for-bit and caching is sound.  A wall-clock
        exhausted result depends on machine load at execution time: a
        rerun could explore more (or fewer) hops, so serving the cached
        partial to a later identical request would freeze one machine's
        timing into the answer.  Those stay uncached.
        """
        if not getattr(result, "budget_exhausted", False):
            return True
        return request.config.budget_seconds is None

    def _lookup(self, key: tuple) -> CachedEntry | None:
        with self._results_lock:
            return self._results.get(key)

    def _store(
        self, key: tuple, request: _Request, snapshot: LakeSnapshot, result
    ) -> None:
        entry = CachedEntry(
            result=result,
            base=request.base,
            max_path_length=request.config.max_path_length,
            reachable=reachable_within(
                snapshot.drg, request.base, request.config.max_path_length
            ),
            version=snapshot.version,
        )
        with self._results_lock:
            self._results[key] = entry

    def _count_cache(self, hit: bool) -> None:
        hits_counter = self.registry.counter("service.result_cache_hits")
        misses_counter = self.registry.counter("service.result_cache_misses")
        (hits_counter if hit else misses_counter).inc()
        hits = hits_counter.value
        misses = misses_counter.value
        total = hits + misses
        self.registry.gauge("service.warm_hit_rate").set(
            round(hits / total, 6) if total else 0.0
        )

    def _request_manifest(
        self,
        request: _Request,
        snapshot: LakeSnapshot,
        cache_hit: bool,
        queue_seconds: float,
        execute_seconds: float,
    ) -> RunManifest:
        registry = MetricsRegistry()
        registry.counter("service.cache_hit").inc(1 if cache_hit else 0)
        registry.gauge("service.snapshot_version").set(snapshot.version)
        registry.gauge("service.queue_depth").set(self._queue.qsize())
        timing = flat_node(
            f"service.{request.kind}",
            queue_seconds + execute_seconds,
            children=[
                flat_node("queue", queue_seconds),
                flat_node("execute", execute_seconds, cache_hit=cache_hit),
            ],
            traced=False,
        )
        return build_manifest(
            f"service.{request.kind}",
            registry=registry,
            config=request.config,
            dataset=snapshot.drg,
            seed=request.config.seed,
            wall_seconds=queue_seconds + execute_seconds,
            timing=timing,
        )

    # -- mutations -----------------------------------------------------------

    def register_table(self, table: Table) -> MutationReport:
        """Add a table to the lake; re-matches only its n-1 pairs."""
        return self._mutate(lambda: self.index.register_table(table))

    def update_table(self, table: Table) -> MutationReport:
        """Replace a table's contents; re-profiles/re-matches only it."""
        return self._mutate(lambda: self.index.update_table(table))

    def drop_table(self, name: str) -> MutationReport:
        """Remove a table; zero matcher calls."""
        return self._mutate(lambda: self.index.drop_table(name))

    def _mutate(self, operation) -> MutationReport:
        """Apply one mutation under the write lock and invalidate."""
        if self._closed:
            raise ServiceError("service is closed; no further mutations")
        with self._rw.write():
            report = operation()
            new_drg = self.index.drg
            if report.content_changed:
                dropped = self.hop_cache.invalidate(report.table)
                self.registry.counter("service.hop_entries_invalidated").inc(
                    dropped
                )
            invalidated = self._invalidate_results(report, new_drg)
            self._snapshot = LakeSnapshot(
                version=self.index.version, drg=new_drg
            )
            self.registry.counter("service.mutations").inc()
            self.registry.counter("service.results_invalidated").inc(
                invalidated
            )
            self.registry.gauge("service.snapshot_version").set(
                self._snapshot.version
            )
        return report

    def _invalidate_results(self, report: MutationReport, new_drg) -> int:
        """Drop exactly the cached results the mutation can affect.

        An entry survives iff its base still exists and no affected table
        lies within its traversal radius in either the old graph (stored
        ``reachable`` envelope) or the new one — see
        :mod:`repro.service.state` for why that is sufficient.
        """
        affected = set(report.affected_tables)
        new_reach: dict[tuple[str, int], frozenset[str]] = {}
        doomed = []
        with self._results_lock:
            for key, entry in self._results.items():
                if entry.base not in new_drg.graph:
                    doomed.append(key)
                    continue
                if affected & entry.reachable:
                    doomed.append(key)
                    continue
                radius = (entry.base, entry.max_path_length)
                if radius not in new_reach:
                    new_reach[radius] = reachable_within(
                        new_drg, entry.base, entry.max_path_length
                    )
                if affected & new_reach[radius]:
                    doomed.append(key)
            for key in doomed:
                del self._results[key]
        return len(doomed)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """One JSON-safe snapshot of the whole service's warm state."""
        with self._results_lock:
            cached_results = len(self._results)
        out = {
            "snapshot_version": self._snapshot.version,
            "n_tables": self._snapshot.n_tables,
            "n_relationships": self._snapshot.drg.n_relationships,
            "cached_results": cached_results,
            "hop_cache": self.hop_cache.counters(),
            "hop_cache_entries": len(self.hop_cache),
            "hop_cache_hit_rate": round(self.hop_cache.hit_rate, 6),
            "match_index": self.index.counters.as_dict(),
            "metrics": self.registry.as_dict(),
        }
        if isinstance(self.index.matcher, CandidateFilteredMatcher):
            out["sketch_index"] = self.index.matcher.stats.as_dict()
            if self.recall_report is not None:
                out["candidate_recall"] = self.recall_report.as_dict()
        return out
