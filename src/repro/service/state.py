"""Shared immutable state of the always-on discovery service.

The service never mutates a DRG in place: every lake mutation produces a
fresh :class:`LakeSnapshot` (via :meth:`repro.graph.DatasetRelationGraph
.apply_delta`), while requests already executing keep the snapshot they
started with — the same share-immutable-state discipline the parallel
backends use within one run (DESIGN.md §11), lifted to the request level.

:func:`reachable_within` and :class:`CachedEntry` implement the surgical
result-cache invalidation rule.  A discovery traversal from ``base``
under hop budget ``L`` only ever observes tables within ``L`` hops of
``base``; a mutation can therefore only change its outcome if one of the
mutation's *affected tables* (the mutated table plus the far endpoint of
every pair whose edges changed) lies inside that radius — in the
pre-mutation graph (a path the old result used might die) or in the
post-mutation graph (a new path might open).  Entries failing both
intersection tests are provably still bit-identical to a cold rebuild
and stay served warm; the property suite in
``tests/service/test_incremental_equivalence.py`` checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import AugmentationResult, DiscoveryResult
from ..graph import DatasetRelationGraph

__all__ = ["LakeSnapshot", "CachedEntry", "reachable_within"]


def reachable_within(
    drg: DatasetRelationGraph, base: str, max_hops: int
) -> frozenset[str]:
    """Tables within ``max_hops`` edges of ``base`` (``base`` included).

    The discovery BFS enumerates paths of at most ``max_path_length``
    edges, so this is a superset of every table any ranked path — or any
    pruned attempt — can touch.
    """
    if base not in drg.graph:
        return frozenset()
    seen = {base}
    frontier = [base]
    for _ in range(max_hops):
        grown: list[str] = []
        for node in frontier:
            for neighbor in drg.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    grown.append(neighbor)
        if not grown:
            break
        frontier = grown
    return frozenset(seen)


@dataclass(frozen=True)
class LakeSnapshot:
    """One immutable version of the lake: the DRG plus its version stamp."""

    version: int
    drg: DatasetRelationGraph

    @property
    def n_tables(self) -> int:
        return self.drg.n_tables


@dataclass(frozen=True)
class CachedEntry:
    """A warm discovery/augmentation result plus its validity envelope.

    ``reachable`` is the table set the producing traversal could observe
    (computed on the snapshot it ran against); an entry survives a
    mutation iff no affected table intersects that envelope in either
    the old or the new graph.
    """

    result: DiscoveryResult | AugmentationResult
    base: str
    max_path_length: int
    reachable: frozenset[str]
    version: int
