"""JSON-schema validation for saved run manifests.

The container ships no ``jsonschema`` package, so a minimal validator for
the subset of JSON Schema the manifest needs (type / required /
properties / items / minimum) lives here.  :func:`validate_manifest`
additionally walks the timing tree recursively (every node against
:data:`SPAN_SCHEMA`) and applies the semantic checks exporters and
benchmarks rely on: stage timings present, no negative durations, and
children fitting inside their parent.
"""

from __future__ import annotations

__all__ = ["MANIFEST_SCHEMA", "SPAN_SCHEMA", "validate", "validate_manifest"]

#: Schema of one timing-tree node (applied recursively to ``children``).
SPAN_SCHEMA = {
    "type": "object",
    "required": ["name", "start_ns", "duration_ns", "attrs", "events", "children"],
    "properties": {
        "name": {"type": "string"},
        "start_ns": {"type": "integer", "minimum": 0},
        "duration_ns": {"type": "integer", "minimum": 0},
        "attrs": {"type": "object"},
        "events": {"type": "array", "items": {"type": "object"}},
        "children": {"type": "array"},
    },
}

#: Schema of a serialised :class:`repro.obs.RunManifest`.
MANIFEST_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version",
        "stage",
        "seed",
        "created_at",
        "git_rev",
        "dataset_fingerprint",
        "wall_seconds",
        "config",
        "timing",
        "metrics",
        "events",
    ],
    "properties": {
        "schema_version": {"type": "integer", "minimum": 1},
        "stage": {"type": "string"},
        "seed": {"type": "integer"},
        "created_at": {"type": "string"},
        "git_rev": {"type": "string"},
        "dataset_fingerprint": {"type": "string"},
        "wall_seconds": {"type": "number", "minimum": 0},
        "config": {"type": "object"},
        "timing": {"type": "object"},
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
            },
        },
        "events": {"type": "array", "items": {"type": "object"}},
    },
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Validate ``instance`` against the supported schema subset.

    Returns a list of human-readable error strings (empty = valid);
    never raises on invalid input.
    """
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        python_type = _TYPES[expected]
        ok = isinstance(instance, python_type)
        if expected in ("integer", "number") and isinstance(instance, bool):
            ok = False  # bool is an int subclass; schemas mean real numbers
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(instance).__name__}")
            return errors
    if expected == "object":
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                errors.extend(validate(instance[name], subschema, f"{path}.{name}"))
    elif expected == "array":
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(instance):
                errors.extend(validate(item, item_schema, f"{path}[{i}]"))
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(instance, (int, float)):
        if instance < minimum:
            errors.append(f"{path}: {instance} is below the minimum of {minimum}")
    return errors


def _validate_span_tree(node: dict, path: str) -> list[str]:
    errors = validate(node, SPAN_SCHEMA, path)
    if errors:
        return errors
    child_total = 0
    child_max = 0
    for i, child in enumerate(node["children"]):
        errors.extend(_validate_span_tree(child, f"{path}.children[{i}]"))
        duration = child.get("duration_ns", 0) if isinstance(child, dict) else 0
        child_total += duration
        child_max = max(child_max, duration)
    if node["attrs"].get("parallel"):
        # A parallel span's children ran concurrently (worker subtrees
        # grafted under a wave), so their durations legitimately sum past
        # the parent's wall time; each child must still fit individually.
        if child_max > node["duration_ns"] + 1_000_000:
            errors.append(
                f"{path}: child span of {child_max}ns exceeds the parallel "
                f"parent's {node['duration_ns']}ns"
            )
    elif child_total > node["duration_ns"] + 1_000_000:
        # Sequential children must fit inside their parent (1ms slack
        # absorbs clock granularity; synthetic roots are exact sums).
        errors.append(
            f"{path}: children sum to {child_total}ns, exceeding the "
            f"parent's {node['duration_ns']}ns"
        )
    return errors


def validate_manifest(data: dict) -> list[str]:
    """Structural plus semantic validation of a manifest dict.

    Returns all problems found (empty list = valid): schema violations,
    an empty/missing timing tree, negative stage timings, or child spans
    overrunning their parents.
    """
    errors = validate(data, MANIFEST_SCHEMA)
    if errors:
        return errors
    timing = data["timing"]
    if not timing:
        errors.append("$.timing: stage timings are missing (empty timing tree)")
        return errors
    errors.extend(_validate_span_tree(timing, "$.timing"))
    return errors
