"""Hierarchical tracing: nested wall-clock spans over the pipeline.

One :class:`Tracer` spans one logical run, exactly like
:class:`repro.engine.JoinEngine` and :class:`repro.engine.FaultManager`.
Every timed region of the pipeline enters a :class:`Span` via the context
manager returned by :meth:`Tracer.span`::

    tracer = Tracer()
    with tracer.span("discover", base="applicants"):
        with tracer.span("hop", table="loans", key="loan_id"):
            with tracer.span("join"):
                ...
            with tracer.span("selection"):
                ...

Spans nest into a tree (children attach to the innermost open span), time
with :func:`time.perf_counter_ns`, and carry structured events
(:meth:`Tracer.event` — e.g. the engine's hop-cache hits and misses).
The resulting tree is the timing backbone of a
:class:`repro.obs.RunManifest` and of the Chrome-trace export.

When disabled, :meth:`Tracer.span` returns one shared no-op span — no
allocation, no clock reads, no tree — so production runs can switch
tracing off with negligible overhead (the ``make trace-smoke`` gate
asserts the no-op cost stays under 2% of discovery wall time).

The module is dependency-free by design: it imports only :mod:`time`.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class Span:
    """One timed node of the trace tree; also its own context manager.

    ``start_ns`` / ``end_ns`` are raw :func:`time.perf_counter_ns` stamps
    (monotonic, comparable only within one process); exporters normalise
    them against the root span's start.
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "events", "_tracer")

    def __init__(self, name: str, attrs: dict | None = None, tracer: "Tracer | None" = None):
        self.name = name
        self.attrs: dict = attrs or {}
        self.start_ns = 0
        self.end_ns = 0
        self.children: list[Span] = []
        self.events: list[dict] = []
        self._tracer = tracer

    # -- timing -------------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        return max(self.end_ns - self.start_ns, 0) if self.end_ns else 0

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9

    @property
    def finished(self) -> bool:
        return self.end_ns != 0

    # -- structure ----------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Attach one timestamped structured event to this span."""
        self.events.append({"name": name, "t_ns": time.perf_counter_ns(), **attrs})

    def iter_spans(self):
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def total_named_seconds(self, name: str) -> float:
        """Summed duration of all spans named ``name`` in this subtree.

        Same-named spans are assumed not to nest inside each other (true
        for the pipeline's taxonomy), so the sum is not double-counted.
        """
        return sum(s.seconds for s in self.iter_spans() if s.name == name)

    def as_dict(self) -> dict:
        """JSON-safe tree rendering (the manifest's ``timing`` payload)."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "events": [dict(e) for e in self.events],
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Inverse of :meth:`as_dict` — rebuild a finished span tree.

        How worker span trees come back across the parallel executor's
        pool boundary: workers serialise their roots with :meth:`as_dict`
        and the coordinator grafts them into the parent trace here.
        """
        span = cls(str(data.get("name", "span")), dict(data.get("attrs", {})))
        span.start_ns = int(data.get("start_ns", 0))
        span.end_ns = span.start_ns + int(data.get("duration_ns", 0))
        span.events = [dict(event) for event in data.get("events", ())]
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def shift(self, delta_ns: int) -> "Span":
        """Shift this subtree's clock by ``delta_ns`` in place; returns self.

        ``perf_counter_ns`` stamps are only comparable within one process,
        so span trees returned by *process* workers are rebased into the
        parent's clock (durations are untouched) before grafting.
        """
        for span in self.iter_spans():
            span.start_ns += delta_ns
            span.end_ns += delta_ns
            for event in span.events:
                if "t_ns" in event:
                    event["t_ns"] += delta_ns
        return self

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            if tracer._stack:
                tracer._stack[-1].children.append(self)
            else:
                tracer.roots.append(self)
            tracer._stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            # A span that exits through an exception records it, so failed
            # joins/hops stay visible in the timing tree.
            self.attrs["error"] = exc_type.__name__
        tracer = self._tracer
        if tracer is not None and tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds:.6f}s, {len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    name = "null"
    attrs: dict = {}
    children: tuple = ()
    events: tuple = ()
    start_ns = 0
    end_ns = 0
    duration_ns = 0
    seconds = 0.0
    finished = False

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Builds one run's span tree (or does nothing when disabled).

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns a shared no-op span and
        :meth:`event` is a no-op — the cheap mode production runs use via
        ``AutoFeatConfig(enable_tracing=False)``.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs):
        """A context manager timing one named region (nestable)."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, attrs, tracer=self)

    def event(self, name: str, **attrs) -> None:
        """Attach a structured event to the innermost open span."""
        if self.enabled and self._stack:
            self._stack[-1].event(name, **attrs)

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        """The first root span recorded (a run's outermost region)."""
        return self.roots[0] if self.roots else None

    def iter_spans(self):
        """Every recorded span across all roots, pre-order."""
        for root in self.roots:
            yield from root.iter_spans()

    def n_spans(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name`` (see caveat on
        :meth:`Span.total_named_seconds`)."""
        return sum(s.seconds for s in self.iter_spans() if s.name == name)

    def timing_tree(self) -> dict:
        """The root span as a JSON-safe dict ({} when nothing was traced)."""
        return self.root.as_dict() if self.root is not None else {}


#: Shared disabled tracer for callers that want tracing to be optional.
NULL_TRACER = Tracer(enabled=False)
