"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` collects a run's numeric observability
signals under dotted names (``engine.cache_hits``,
``selection.codes_reused``, ``faults.recorded``).  The existing stats
records — :class:`repro.engine.ExecutionStats`,
:class:`repro.selection.SelectionStats` and
:class:`repro.engine.FailureReport` — publish into a registry via their
``publish()`` methods and keep their flat fields as backward-compatible
views; the registry's :meth:`MetricsRegistry.as_dict` payload is what a
:class:`repro.obs.RunManifest` embeds.

Three instrument kinds, mirroring the usual metrics vocabulary:

* **Counter** — monotonically increasing integer (``inc``);
* **Gauge** — last-written float (``set``);
* **Histogram** — streaming summary (count/total/min/max/mean) of an
  observed value distribution (``observe``), without storing samples.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic counter; negative increments are rejected."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> "Counter":
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount
        return self


class Gauge:
    """Last-value-wins float instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> "Gauge":
        self.value = float(value)
        return self


class Histogram:
    """Constant-memory streaming summary of an observed distribution."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> "Histogram":
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    A name belongs to exactly one instrument kind for the registry's
    lifetime; asking for the same name as a different kind raises, which
    catches taxonomy typos early.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_unique(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_unique(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._check_unique(name, "histogram")
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def value(self, name: str):
        """Current value of a counter or gauge (histograms: summary)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].summary()
        raise KeyError(f"unknown metric {name!r}")

    def as_dict(self) -> dict:
        """JSON-safe payload (the manifest's ``metrics`` section)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
