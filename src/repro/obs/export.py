"""Manifest exporters: Chrome trace, aligned text, JSON.

Three renderings of the same :class:`repro.obs.RunManifest`:

* :func:`to_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev (complete-event
  ``"ph": "X"`` entries per span, instant events per span event);
* :func:`render_text_report` — an aligned plain-text report (timing tree
  with per-node share of the root, metrics tables, event tally);
* JSON — the manifest's own :meth:`~repro.obs.RunManifest.to_json`.
"""

from __future__ import annotations

import json

__all__ = ["to_chrome_trace", "chrome_trace_json", "render_text_report"]


def to_chrome_trace(manifest) -> dict:
    """Convert a manifest's timing tree to a Chrome-trace payload.

    Timestamps are microseconds relative to the root span's start (the
    format's expected unit); span attributes and events ride along in
    ``args`` so they show in the trace viewer's detail pane.
    """
    timing = manifest.timing
    origin_ns = timing.get("start_ns", 0) if timing else 0
    trace_events: list[dict] = []

    def emit(node: dict, depth: int) -> None:
        start_ns = node.get("start_ns", 0)
        trace_events.append(
            {
                "name": node.get("name", "?"),
                "cat": manifest.stage,
                "ph": "X",
                "ts": (start_ns - origin_ns) / 1e3,
                "dur": node.get("duration_ns", 0) / 1e3,
                "pid": 1,
                "tid": 1,
                "args": dict(node.get("attrs", {})),
            }
        )
        for event in node.get("events", ()):
            trace_events.append(
                {
                    "name": event.get("name", "event"),
                    "cat": manifest.stage,
                    "ph": "i",
                    "ts": (event.get("t_ns", start_ns) - origin_ns) / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "s": "t",
                    "args": {k: v for k, v in event.items() if k not in ("name", "t_ns")},
                }
            )
        for child in node.get("children", ()):
            emit(child, depth + 1)

    if timing:
        emit(timing, 0)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "stage": manifest.stage,
            "seed": manifest.seed,
            "git_rev": manifest.git_rev,
            "dataset_fingerprint": manifest.dataset_fingerprint,
        },
    }


def chrome_trace_json(manifest, indent: int | None = None) -> str:
    """:func:`to_chrome_trace` as a JSON string."""
    return json.dumps(to_chrome_trace(manifest), indent=indent)


def _tree_rows(node: dict, root_ns: int, depth: int = 0, rows=None) -> list:
    if rows is None:
        rows = []
    name = node.get("name", "?")
    attrs = node.get("attrs", {})
    label = "  " * depth + name
    decor = " ".join(
        f"{k}={v}" for k, v in attrs.items() if k not in ("traced",)
    )
    if decor:
        label = f"{label} [{decor}]"
    duration_ns = node.get("duration_ns", 0)
    share = (duration_ns / root_ns * 100.0) if root_ns else 0.0
    rows.append((label, duration_ns / 1e9, share))
    for child in node.get("children", ()):
        _tree_rows(child, root_ns, depth + 1, rows)
    return rows


def render_text_report(manifest, max_tree_rows: int = 80) -> str:
    """Aligned plain-text rendering of a whole manifest."""
    lines = [
        f"run manifest — stage={manifest.stage} "
        f"(schema v{manifest.schema_version})",
        f"  created {manifest.created_at or '(unknown)'}  "
        f"git={manifest.git_rev or '(none)'}  seed={manifest.seed}  "
        f"lake={manifest.dataset_fingerprint or '(none)'}",
        f"  wall {manifest.wall_seconds:.4f}s, "
        f"{manifest.n_events()} event(s)",
    ]

    if manifest.timing:
        rows = _tree_rows(manifest.timing, manifest.timing.get("duration_ns", 0))
        shown = rows[:max_tree_rows]
        width = max(len(label) for label, *_ in shown)
        lines.append("")
        lines.append(f"  {'timing tree'.ljust(width)}   seconds      %")
        for label, seconds, share in shown:
            lines.append(f"  {label.ljust(width)}  {seconds:8.4f}  {share:5.1f}")
        if len(rows) > len(shown):
            lines.append(f"  … {len(rows) - len(shown)} more span(s)")
        stages = manifest.stage_seconds()
        lines.append("")
        lines.append(
            "  per-stage totals: "
            + " ".join(f"{k}={v:.4f}s" for k, v in stages.items())
        )

    metrics = manifest.metrics or {}
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters or gauges or histograms:
        lines.append("")
        lines.append("  metrics")
        width = max(
            (len(n) for n in (*counters, *gauges, *histograms)), default=0
        )
        for name, value in counters.items():
            lines.append(f"    {name.ljust(width)}  {value}")
        for name, value in gauges.items():
            lines.append(f"    {name.ljust(width)}  {value:.4f}")
        for name, summary in histograms.items():
            lines.append(
                f"    {name.ljust(width)}  n={summary['count']} "
                f"mean={summary['mean']:.4f} "
                f"min={summary['min']:.4f} max={summary['max']:.4f}"
            )

    if manifest.events:
        tally: dict[str, int] = {}
        for event in manifest.events:
            key = event.get("name", "event")
            tally[key] = tally.get(key, 0) + 1
        lines.append("")
        lines.append(
            "  events: "
            + ", ".join(f"{name} x{count}" for name, count in sorted(tally.items()))
        )
    return "\n".join(lines)
