"""Unified observability: tracing, metrics and run manifests.

The subsystem every layer of the pipeline reports into:

* :class:`Tracer` / :class:`Span` — hierarchical wall-clock spans
  (``discover > hop > join / selection``) with structured events and a
  cheap no-op mode (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` — named counters/gauges/histograms the
  existing stats records (``ExecutionStats``, ``SelectionStats``,
  ``FailureReport``) publish into (:mod:`repro.obs.metrics`);
* :class:`RunManifest` — the frozen reproducibility record (config,
  seed, dataset fingerprint, git revision, timing tree, metrics, event
  log) attached to every result object (:mod:`repro.obs.manifest`);
* exporters — Chrome trace, aligned text, JSON
  (:mod:`repro.obs.export`), with schema validation
  (:mod:`repro.obs.schema`) and a CLI (``python -m repro.obs``).

The package is self-contained: it imports nothing from the rest of
:mod:`repro`, so every layer can depend on it without cycles.
"""

from .export import chrome_trace_json, render_text_report, to_chrome_trace
from .manifest import (
    SCHEMA_VERSION,
    RunManifest,
    build_manifest,
    config_snapshot,
    dataset_fingerprint,
    flat_node,
    git_revision,
    synthetic_root,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .schema import MANIFEST_SCHEMA, SPAN_SCHEMA, validate, validate_manifest
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunManifest",
    "build_manifest",
    "config_snapshot",
    "dataset_fingerprint",
    "flat_node",
    "git_revision",
    "synthetic_root",
    "SCHEMA_VERSION",
    "to_chrome_trace",
    "chrome_trace_json",
    "render_text_report",
    "MANIFEST_SCHEMA",
    "SPAN_SCHEMA",
    "validate",
    "validate_manifest",
]
