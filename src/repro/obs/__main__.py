"""CLI for saved run manifests: ``python -m repro.obs MANIFEST.json``.

Pretty-prints a manifest as an aligned text report (default), re-emits it
as JSON, exports a Chrome-trace file loadable in ``chrome://tracing`` /
Perfetto, or validates it against the manifest schema::

    python -m repro.obs run_manifest.json
    python -m repro.obs run_manifest.json --format json
    python -m repro.obs run_manifest.json --chrome trace.json
    python -m repro.obs run_manifest.json --validate
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .export import chrome_trace_json, render_text_report
from .manifest import RunManifest
from .schema import validate_manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, validate or export a saved run manifest.",
    )
    parser.add_argument("manifest", type=Path, help="path to a RunManifest JSON file")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout rendering (default: text report)",
    )
    parser.add_argument(
        "--chrome",
        type=Path,
        metavar="OUT",
        help="also write a Chrome-trace JSON to OUT (chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate against the manifest schema; non-zero exit on problems",
    )
    args = parser.parse_args(argv)

    try:
        data = json.loads(args.manifest.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read manifest: {exc}", file=sys.stderr)
        return 2

    if args.validate:
        errors = validate_manifest(data)
        if errors:
            for error in errors:
                print(f"INVALID  {error}", file=sys.stderr)
            return 1
        print(f"{args.manifest}: valid (schema v{data.get('schema_version')})")

    manifest = RunManifest.from_dict(data)
    if not args.validate:
        if args.format == "json":
            print(manifest.to_json())
        else:
            print(render_text_report(manifest))

    if args.chrome is not None:
        args.chrome.write_text(chrome_trace_json(manifest, indent=2) + "\n")
        print(f"chrome trace -> {args.chrome}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
