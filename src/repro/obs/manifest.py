"""Run manifests: the reproducibility record attached to every result.

A :class:`RunManifest` freezes everything needed to trust — and re-run —
one pipeline invocation: the config snapshot, seed, a fingerprint of the
input tables, the git revision of the working tree, the tracer's timing
tree, the metrics-registry payload and the flattened structured event
log.  ``DiscoveryResult``, ``AugmentationResult`` and every
``BaselineResult`` carry one on their ``run_manifest`` field; benchmark
summaries embed them next to the figures they certify.

Manifests are plain JSON on disk (:meth:`RunManifest.save` /
:meth:`RunManifest.load`) and are validated by
:func:`repro.obs.schema.validate_manifest`; ``python -m repro.obs``
pretty-prints or re-exports a saved one.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "SCHEMA_VERSION",
    "RunManifest",
    "build_manifest",
    "config_snapshot",
    "dataset_fingerprint",
    "flat_node",
    "git_revision",
    "synthetic_root",
]

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1


def config_snapshot(config) -> dict:
    """JSON-safe snapshot of a (dataclass) configuration object.

    Values that are not JSON scalars are stringified rather than dropped,
    so the snapshot stays loadable no matter what a config grows.
    """
    if config is None:
        return {}
    if is_dataclass(config):
        items = [(f.name, getattr(config, f.name)) for f in fields(config)]
    elif isinstance(config, dict):
        items = list(config.items())
    else:
        items = [(k, v) for k, v in vars(config).items() if not k.startswith("_")]
    snapshot = {}
    for name, value in items:
        if value is None or isinstance(value, (bool, int, float, str)):
            snapshot[name] = value
        else:
            snapshot[name] = str(value)
    return snapshot


def dataset_fingerprint(tables) -> str:
    """Stable SHA-256 digest of a set of tables' shapes and schemata.

    Accepts an iterable of :class:`repro.dataframe.Table` or a
    :class:`repro.graph.DatasetRelationGraph` (fingerprinting every table
    it holds).  The digest covers names, row counts and column names —
    enough to detect "same code, different lake" mismatches cheaply
    without hashing cell data.
    """
    table_names = getattr(tables, "table_names", None)
    if table_names is not None:  # a DRG
        tables = [tables.table(name) for name in table_names]
    parts = []
    for table in tables:
        parts.append(
            f"{table.name}|{table.n_rows}|{','.join(table.column_names)}"
        )
    digest = hashlib.sha256("\n".join(sorted(parts)).encode()).hexdigest()
    return digest[:16]


def git_revision(start: Path | None = None) -> str:
    """Short git revision of the enclosing working tree ('' when absent).

    Reads ``.git/HEAD`` directly (no subprocess, no git dependency) and
    resolves one level of symbolic ref, covering the normal layouts
    including ``packed-refs``.
    """
    directory = (start or Path(__file__)).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        git_dir = candidate / ".git"
        if not git_dir.is_dir():
            continue
        try:
            head = (git_dir / "HEAD").read_text().strip()
            if not head.startswith("ref:"):
                return head[:12]
            ref = head.split(None, 1)[1]
            ref_file = git_dir / ref
            if ref_file.is_file():
                return ref_file.read_text().strip()[:12]
            packed = git_dir / "packed-refs"
            if packed.is_file():
                for line in packed.read_text().splitlines():
                    if line.endswith(ref) and not line.startswith("#"):
                        return line.split()[0][:12]
        except OSError:
            return ""
        return ""
    return ""


def flat_node(name: str, seconds: float, children: list[dict] | None = None, **attrs) -> dict:
    """A leaf (or shallow) span-tree node from a plain wall-clock total.

    Untraced runs use this to synthesise a minimal timing tree out of
    their fallback accumulators, so per-stage breakdowns never go
    missing just because tracing was off.
    """
    return {
        "name": name,
        "start_ns": 0,
        "duration_ns": max(int(seconds * 1e9), 0),
        "attrs": dict(attrs),
        "events": [],
        "children": list(children or ()),
    }


def synthetic_root(name: str, children: list[dict], **attrs) -> dict:
    """A span-tree node wrapping pre-rendered child trees.

    Used to compose one manifest out of several traced phases (e.g. the
    ``augment`` root over the ``discover`` and ``train`` trees) and to
    synthesise a minimal tree for untraced runs.  Duration is the sum of
    the children's durations; start is the earliest child start.
    """
    children = [c for c in children if c]
    duration = sum(int(c.get("duration_ns", 0)) for c in children)
    starts = [int(c["start_ns"]) for c in children if c.get("start_ns")]
    return {
        "name": name,
        "start_ns": min(starts) if starts else 0,
        "duration_ns": duration,
        "attrs": dict(attrs),
        "events": [],
        "children": children,
    }


def _iter_tree(node: dict, path: str = ""):
    """Pre-order walk over a span-tree dict, yielding (path, node)."""
    if not node:
        return
    here = f"{path}/{node.get('name', '?')}" if path else node.get("name", "?")
    yield here, node
    for child in node.get("children", ()):
        yield from _iter_tree(child, here)


@dataclass(frozen=True)
class RunManifest:
    """Frozen reproducibility record of one pipeline run.

    Attributes
    ----------
    stage:
        What ran: ``discovery``, ``augment``, or a baseline's name.
    seed:
        The run's determinism seed.
    config:
        JSON-safe snapshot of the run's configuration ({} when none).
    dataset_fingerprint:
        Digest of the input tables (see :func:`dataset_fingerprint`).
    git_rev:
        Short revision of the enclosing git tree ('' outside one).
    timing:
        The tracer's span tree as nested dicts; a synthesised flat root
        when the run executed with tracing disabled.
    metrics:
        :meth:`repro.obs.MetricsRegistry.as_dict` payload.
    events:
        Flattened structured event log: every span event with the span
        path it occurred under.
    wall_seconds:
        The run's wall-clock time as the caller measured it; the timing
        tree sums to this within tolerance for traced runs.
    """

    stage: str
    seed: int = 0
    config: dict = field(default_factory=dict)
    dataset_fingerprint: str = ""
    git_rev: str = ""
    timing: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    events: tuple = ()
    wall_seconds: float = 0.0
    created_at: str = ""
    schema_version: int = SCHEMA_VERSION

    # -- derived views ------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        """Seconds aggregated per span name over the whole timing tree.

        The per-stage cost breakdown benchmarks report: e.g.
        ``{"discover": 1.2, "hop": 0.9, "join": 0.5, "selection": 0.3}``.
        """
        totals: dict[str, float] = {}
        for __, node in _iter_tree(self.timing):
            name = node.get("name", "?")
            totals[name] = totals.get(name, 0.0) + node.get("duration_ns", 0) / 1e9
        return totals

    def stage_summary(self) -> str:
        """Compact one-line stage breakdown for report rows."""
        stages = self.stage_seconds()
        if not stages:
            return "(untraced)"
        return " ".join(f"{name}={seconds:.3f}s" for name, seconds in stages.items())

    def timing_total_seconds(self) -> float:
        """The timing-tree root's duration."""
        return self.timing.get("duration_ns", 0) / 1e9 if self.timing else 0.0

    def n_events(self) -> int:
        return len(self.events)

    # -- (de)serialisation --------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "stage": self.stage,
            "seed": self.seed,
            "created_at": self.created_at,
            "git_rev": self.git_rev,
            "dataset_fingerprint": self.dataset_fingerprint,
            "wall_seconds": self.wall_seconds,
            "config": dict(self.config),
            "timing": self.timing,
            "metrics": self.metrics,
            "events": [dict(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        return cls(
            stage=data["stage"],
            seed=int(data.get("seed", 0)),
            config=dict(data.get("config", {})),
            dataset_fingerprint=data.get("dataset_fingerprint", ""),
            git_rev=data.get("git_rev", ""),
            timing=dict(data.get("timing", {})),
            metrics=dict(data.get("metrics", {})),
            events=tuple(data.get("events", ())),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            created_at=data.get("created_at", ""),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def describe(self) -> str:
        """Aligned human-readable report (see :mod:`repro.obs.export`)."""
        from .export import render_text_report

        return render_text_report(self)


def _flatten_events(timing: dict) -> tuple:
    """Collect every span event, stamped with its span path."""
    collected = []
    for path, node in _iter_tree(timing):
        for event in node.get("events", ()):
            collected.append({"span": path, **event})
    collected.sort(key=lambda e: e.get("t_ns", 0))
    return tuple(collected)


def build_manifest(
    stage: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    config=None,
    dataset=None,
    seed: int = 0,
    wall_seconds: float | None = None,
    timing: dict | None = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from a run's observability state.

    ``dataset`` is anything :func:`dataset_fingerprint` accepts (a DRG or
    an iterable of tables); ``timing`` overrides the tracer's tree (used
    when composing multi-phase manifests).  Untraced runs get a
    synthesised single-node tree covering ``wall_seconds`` so the
    per-stage breakdown is never empty.
    """
    if timing is None:
        timing = tracer.timing_tree() if tracer is not None else {}
    if wall_seconds is None:
        wall_seconds = timing.get("duration_ns", 0) / 1e9 if timing else 0.0
    if not timing:
        timing = {
            "name": stage,
            "start_ns": 0,
            "duration_ns": int(wall_seconds * 1e9),
            "attrs": {"traced": False},
            "events": [],
            "children": [],
        }
    return RunManifest(
        stage=stage,
        seed=seed,
        config=config_snapshot(config),
        dataset_fingerprint=dataset_fingerprint(dataset) if dataset is not None else "",
        git_rev=git_revision(),
        timing=timing,
        metrics=registry.as_dict() if registry is not None else MetricsRegistry().as_dict(),
        events=_flatten_events(timing),
        wall_seconds=float(wall_seconds),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    )
