"""Join-path ranking score (paper Algorithm 2).

Algorithm 2 combines the relevance-analysis scores and the
redundancy-analysis scores of a join result into one number: each score
list is summed and weighted by the cardinality of its selected subset, and
the two sums are combined "weighted by their common divisor".  We read
that as cardinality-normalised means combined on a common scale:

    rank = (Σ rel / |rel|  +  Σ red / |red|) / 2

with an empty list contributing zero.  The normalisation keeps long paths
from winning just by accumulating many weak features — the score rewards
paths whose *average* accepted feature is strong, which is the behaviour
the paper's examples exhibit.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["compute_ranking_score", "normalised_sum"]


def normalised_sum(scores: Sequence[float]) -> float:
    """Sum of ``scores`` weighted by subset cardinality (mean); 0 if empty."""
    if not scores:
        return 0.0
    return float(sum(scores)) / len(scores)


def compute_ranking_score(
    relevance_scores: Sequence[float],
    redundancy_scores: Sequence[float],
) -> float:
    """Combine relevance and redundancy analyses into one path score.

    Both inputs are the scores of the features that *survived* the
    respective analysis stage.  Higher is better.  A path whose join
    produced no relevant, non-redundant features scores 0 — it is kept as
    a navigation stepping stone but will not be ranked above productive
    paths.
    """
    parts = []
    if relevance_scores:
        parts.append(normalised_sum(relevance_scores))
    if redundancy_scores:
        parts.append(normalised_sum(redundancy_scores))
    if not parts:
        return 0.0
    return float(sum(parts)) / len(parts)
