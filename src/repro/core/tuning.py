"""Dynamic hyper-parameter tuning (the paper's Future Work, Section VIII).

The paper fixes τ = 0.65 and κ = 15 globally and notes that "dynamic
hyper-parameter tuning, allowing the algorithm to adapt to different data
landscapes" is future work.  :class:`AutoFeatTuner` implements the obvious
instantiation: a small grid search over (τ, κ) scored by the *discovery
ranking itself* plus one cheap model evaluation per configuration on a
sampled base table, so tuning cost stays far below a full wrapper search.

Trials compose with the parallel backends: every trial's discovery and
top-1 training run through whatever ``parallel_backend`` / ``max_workers``
the ``base_config`` carries, and because parallel runs are bit-identical
to serial (DESIGN.md §11) the grid picks the same winner regardless of
backend — tuning on ``threads``/``processes`` only changes wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..graph import DatasetRelationGraph
from .autofeat import AutoFeat
from .config import AutoFeatConfig
from .result import AugmentationResult

__all__ = ["TuningTrial", "TuningOutcome", "AutoFeatTuner"]

DEFAULT_TAUS = (0.4, 0.65, 0.9)
DEFAULT_KAPPAS = (5, 10, 15)


@dataclass(frozen=True)
class TuningTrial:
    """One evaluated (τ, κ) configuration."""

    tau: float
    kappa: int
    accuracy: float
    n_paths: int
    feature_selection_seconds: float


@dataclass(frozen=True)
class TuningOutcome:
    """All trials plus the winning configuration and its final result."""

    trials: tuple[TuningTrial, ...]
    best_config: AutoFeatConfig
    best_result: AugmentationResult
    total_seconds: float

    @property
    def best_trial(self) -> TuningTrial:
        return max(self.trials, key=lambda t: t.accuracy)


class AutoFeatTuner:
    """Grid search over (τ, κ), adapting AutoFeat to the lake at hand."""

    def __init__(
        self,
        drg: DatasetRelationGraph,
        base_config: AutoFeatConfig | None = None,
        taus: Sequence[float] = DEFAULT_TAUS,
        kappas: Sequence[int] = DEFAULT_KAPPAS,
    ):
        self.drg = drg
        self.base_config = base_config or AutoFeatConfig()
        self.taus = tuple(taus)
        self.kappas = tuple(kappas)

    def tune(
        self,
        base_name: str,
        label_column: str,
        model_name: str = "lightgbm",
    ) -> TuningOutcome:
        """Evaluate the grid and return the best configuration's result.

        Each trial runs the cheap discovery phase, then trains only the
        single best-ranked path (top_k=1) to score the configuration; the
        winner is re-run with the caller's full top_k.
        """
        started = time.perf_counter()
        trials: list[TuningTrial] = []
        best: tuple[float, AutoFeatConfig] | None = None
        for tau in self.taus:
            for kappa in self.kappas:
                config = self.base_config.with_overrides(
                    tau=tau, kappa=kappa, top_k=1
                )
                autofeat = AutoFeat(self.drg, config)
                discovery = autofeat.discover(base_name, label_column)
                result = autofeat.train_top_k(discovery, model_name)
                trial = TuningTrial(
                    tau=tau,
                    kappa=kappa,
                    accuracy=result.accuracy,
                    n_paths=len(discovery.ranked_paths),
                    feature_selection_seconds=discovery.feature_selection_seconds,
                )
                trials.append(trial)
                if best is None or trial.accuracy > best[0]:
                    best = (trial.accuracy, config)

        assert best is not None  # the grids are non-empty by construction
        best_config = best[1].with_overrides(top_k=self.base_config.top_k)
        best_result = AutoFeat(self.drg, best_config).augment(
            base_name, label_column, model_name
        )
        return TuningOutcome(
            trials=tuple(trials),
            best_config=best_config,
            best_result=best_result,
            total_seconds=time.perf_counter() - started,
        )
