"""AutoFeat configuration (the paper's hyper-parameters).

The two headline knobs are τ — the data-quality (completeness) threshold of
the pruning rule — and κ — the maximum number of features the relevance
analysis keeps per table.  The paper recommends τ = 0.65 and κ = 15
(Section VII-B/VII-D); the ablation study of Figure 9 is expressed here via
``relevance_metric`` / ``redundancy_method`` / ``use_relevance`` /
``use_redundancy``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..discovery.profiles import MINHASH_PERMUTATIONS
from ..engine.faults import (
    DEFAULT_ERROR_BUDGET,
    DEFAULT_MAX_RETRIES,
    FAILURE_POLICIES,
)
from ..engine.parallel import PARALLEL_BACKENDS
from ..errors import ConfigError
from .navigation import DEFAULT_FRONTIER_EXPLORATION, FRONTIER_STRATEGIES
from ..selection.redundancy import REDUNDANCY_METHODS
from ..selection.relevance import RELEVANCE_METRICS

__all__ = ["AutoFeatConfig"]


@dataclass(frozen=True)
class AutoFeatConfig:
    """Immutable configuration for one feature-discovery run.

    Attributes
    ----------
    tau:
        Minimum completeness (1 - null ratio) a join must achieve over the
        columns it contributes; joins below it are pruned.  τ = 1 demands
        perfect key matches, τ near 0 disables quality pruning.
    kappa:
        Maximum number of features kept by the relevance analysis per
        joined table ("select κ best").
    min_relevance:
        Relevance floor below which a feature counts as irrelevant even if
        it would fit within κ — filters the near-zero correlations that
        spurious joins produce.
    top_k:
        Number of ranked join paths forwarded to model training.
    max_path_length:
        Hop budget for the BFS traversal of the DRG.
    relevance_metric / redundancy_method:
        Metric names from :mod:`repro.selection`; Spearman + MRMR is the
        published AutoFeat configuration.
    use_relevance / use_redundancy:
        Ablation switches.  Turning a stage off passes every candidate
        feature straight through it (Figure 9's "Spearman-only" and
        "MRMR-only" variants).
    sample_size:
        Stratified-sample size of the base table used during feature
        selection (training always sees the full table).
    traversal:
        ``"bfs"`` (the paper's choice, Section IV-A) or ``"dfs"`` — kept as
        a switch for the traversal ablation.
    enable_hop_cache:
        Reuse deduped right-hand tables and their join indexes across all
        paths of one run (the :class:`repro.engine.HopCache`).  Results are
        bit-identical with the cache on or off — deduplication is
        deterministic in ``(table, key, seed)`` — so this flag exists for
        exact A/B verification and for bounding memory on huge lakes.
    enable_selection_kernels:
        Score relevance/redundancy through the vectorised kernels and the
        persistent code cache of :mod:`repro.selection.kernels` instead of
        the scalar per-column path.  Scores are bit-identical either way
        (the kernels perform the same floating-point operations on the
        same buffers), so this flag exists for exact A/B verification —
        ``benchmarks/bench_selection_kernels.py`` asserts ranking parity.
    failure_policy:
        How a run reacts to hop/path failures (budget blowups, injected
        faults, and — during training — full-table materialisation
        errors).  ``"skip_and_record"`` (the default) skips the failing
        path, records it on the result's ``failure_report`` and keeps
        going; ``"fail_fast"`` propagates the first typed error (the
        pre-fault-isolation behaviour); ``"retry"`` retries each failing
        operation up to ``max_retries`` times before recording it.
        Ordinary join infeasibilities during discovery are *pruning* input
        for Algorithm 1 under every policy, exactly as before.
    error_budget:
        Recorded failures tolerated per run under ``skip_and_record`` /
        ``retry`` before the run aborts with
        :class:`~repro.errors.ErrorBudgetExceeded` — degradation is
        bounded, not unconditional.
    max_retries:
        Retries per failing operation under the ``retry`` policy.
    hop_timeout_seconds:
        Per-hop wall-clock budget enforced by the
        :class:`~repro.engine.JoinEngine` (cooperative check; a hop that
        overruns raises :class:`~repro.errors.HopBudgetExceeded`).  None
        disables the guard.
    max_hop_output_rows:
        Per-hop output-row cap enforced by the engine before any join
        work happens (exact, because left joins through deduped indexes
        preserve probe-side cardinality).  None disables the guard.
    parallel_backend:
        Execution backend for discovery hops and top-k training paths:
        ``"serial"`` (the default single-thread loop), ``"threads"`` or
        ``"processes"`` (worker pools via :mod:`concurrent.futures`,
        driven by :class:`repro.engine.PathExecutor`).  Results are
        **bit-identical** across backends — work units carry their
        enumeration index and all order-sensitive state (feature
        selection, ranking, frontier growth, failure policy) advances
        only at the canonical merge points — so this knob trades wall
        time, never correctness.  See DESIGN.md §11 for the backend
        matrix and GIL caveats.
    max_workers:
        Worker count for the parallel backends (None = automatic;
        ignored under ``serial``).
    hop_latency_seconds:
        Simulated per-hop remote-fetch latency injected by the
        :class:`~repro.engine.JoinEngine` (0.0 = off).  A benchmarking
        knob: it models a lake whose tables are fetched over a network
        and is what lets ``bench_parallel_discovery`` measure backend
        speedups machine-independently.
    enable_dict_keys:
        Build and probe join indexes on dictionary-encoded int32 key codes
        (:class:`repro.dataframe.KeyDictionary`) instead of a Python dict
        of boxed scalars.  Results are bit-identical either way — the
        encoded kernels reproduce the seed-deterministic dedup
        representatives exactly — so this flag exists for exact A/B
        verification; ``benchmarks/bench_chunked_join.py`` gates the
        speedup.
    chunk_rows:
        When set, join hops whose probe side exceeds this many rows stream
        through the out-of-core executor
        (:func:`repro.engine.chunked_left_join`) in fixed-size row
        partitions.  None (the default) keeps hops in-core.
    memory_budget_bytes:
        Resident budget for completed partitions of a chunked hop; once
        the deterministic byte estimate exceeds it, the oldest partitions
        spill to disk and are streamed back for the final concatenation.
        Only meaningful with ``chunk_rows`` set; None never spills.
    spill_dir:
        Parent directory for spill files (system temp when unset).
    enable_tracing:
        Record the run's hierarchical timing tree
        (``discover > hop > join / selection``) through
        :class:`repro.obs.Tracer` and attach a full
        :class:`repro.obs.RunManifest` to every result.  Tracing does not
        change results, only observability; disabling it swaps in the
        no-op tracer (coarse wall-clock totals are still reported, but
        the manifest's timing tree collapses to a single node and the
        per-hop spans, events and ``feature_selection_seconds`` detail
        come from cheap fallback accounting instead of spans).
    budget_seconds:
        Run-level anytime wall-clock budget for ``discover`` /
        ``train_top_k`` / ``augment`` (``augment`` shares one deadline
        across both phases).  When the deadline expires the run stops
        gracefully and returns the best-k-so-far with
        ``budget_exhausted`` set on the result — never an error.  None
        (the default) disables the budget and keeps results bit-identical
        to the reference full traversal.
    max_hops:
        Run-level cap on *executed* join hops during discovery — the
        deterministic anytime budget: the run explores exactly the first
        ``max_hops`` hops of the frontier strategy's expansion order, so
        explored sets nest as the budget grows and regret is monotone
        non-increasing.  None disables the cap.
    frontier_strategy:
        Expansion order of a *budgeted* traversal: ``"ucb"`` (the
        default) scores frontier entries by UCB1 over per-target-table
        arm statistics so the budget is spent on promising subgraphs
        first; ``"fifo"`` truncates the canonical BFS/DFS order instead.
        Unbudgeted runs always traverse in canonical order regardless —
        every path is explored anyway and canonical order is what keeps
        results bit-identical to the reference traversal (DESIGN.md §14).
    frontier_exploration:
        UCB1 exploration constant of the ``"ucb"`` frontier strategy.
    enable_sketch_index:
        Route schema matching through the sketch-index candidate
        generator (:class:`repro.discovery.index.CandidateFilteredMatcher`):
        the service wraps its exact matcher so only column pairs
        colliding in the joinability index are scored exactly.  At
        candidate recall 1.0 the DRG is bit-identical to the full
        quadratic scan — ``benchmarks/bench_sketch_index.py`` gates
        exactly that — so this flag trades matcher work, not edges.
    sketch_bands / sketch_rows_per_band:
        LSH banding layout of the joinability index's MinHash channel;
        their product must not exceed the signature length
        (:data:`~repro.discovery.profiles.MINHASH_PERMUTATIONS`).  More
        bands surface more candidates (higher recall, less pruning).
    candidate_min_recall:
        When set (and the sketch index is enabled), the service replays
        the full quadratic scan over the initial lake via
        ``verify_exact`` and refuses to start if missed-edge recall
        falls below this floor — an audited deployment mode.  None (the
        default) skips the audit; 1.0 demands provable DRG parity.
    seed:
        Seed for sampling and join-representative choices.
    """

    tau: float = 0.65
    kappa: int = 15
    min_relevance: float = 0.01
    top_k: int = 4
    max_path_length: int = 3
    relevance_metric: str = "spearman"
    redundancy_method: str = "mrmr"
    use_relevance: bool = True
    use_redundancy: bool = True
    sample_size: int = 1000
    traversal: str = "bfs"
    enable_hop_cache: bool = True
    enable_selection_kernels: bool = True
    failure_policy: str = "skip_and_record"
    error_budget: int = DEFAULT_ERROR_BUDGET
    max_retries: int = DEFAULT_MAX_RETRIES
    hop_timeout_seconds: float | None = None
    max_hop_output_rows: int | None = None
    parallel_backend: str = "serial"
    max_workers: int | None = None
    hop_latency_seconds: float = 0.0
    enable_dict_keys: bool = True
    chunk_rows: int | None = None
    memory_budget_bytes: int | None = None
    spill_dir: str | None = None
    enable_tracing: bool = True
    budget_seconds: float | None = None
    max_hops: int | None = None
    frontier_strategy: str = "ucb"
    frontier_exploration: float = DEFAULT_FRONTIER_EXPLORATION
    enable_sketch_index: bool = False
    sketch_bands: int = 16
    sketch_rows_per_band: int = 4
    candidate_min_recall: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.tau <= 1.0:
            raise ConfigError(f"tau must be in [0, 1], got {self.tau}")
        if self.kappa < 1:
            raise ConfigError(f"kappa must be >= 1, got {self.kappa}")
        if not 0.0 <= self.min_relevance < 1.0:
            raise ConfigError(
                f"min_relevance must be in [0, 1), got {self.min_relevance}"
            )
        if self.top_k < 1:
            raise ConfigError(f"top_k must be >= 1, got {self.top_k}")
        if self.max_path_length < 1:
            raise ConfigError(
                f"max_path_length must be >= 1, got {self.max_path_length}"
            )
        if self.sample_size < 10:
            raise ConfigError(f"sample_size must be >= 10, got {self.sample_size}")
        if self.traversal not in ("bfs", "dfs"):
            raise ConfigError(
                f"traversal must be 'bfs' or 'dfs', got {self.traversal!r}"
            )
        valid_relevance = set(RELEVANCE_METRICS) | {"relief"}
        if self.relevance_metric not in valid_relevance:
            raise ConfigError(
                f"unknown relevance metric {self.relevance_metric!r}; "
                f"expected one of {sorted(valid_relevance)}"
            )
        if self.failure_policy not in FAILURE_POLICIES:
            raise ConfigError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"expected one of {list(FAILURE_POLICIES)}"
            )
        if self.error_budget < 0:
            raise ConfigError(
                f"error_budget must be >= 0, got {self.error_budget}"
            )
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.hop_timeout_seconds is not None and self.hop_timeout_seconds <= 0:
            raise ConfigError(
                f"hop_timeout_seconds must be positive or None, "
                f"got {self.hop_timeout_seconds}"
            )
        if self.max_hop_output_rows is not None and self.max_hop_output_rows < 1:
            raise ConfigError(
                f"max_hop_output_rows must be >= 1 or None, "
                f"got {self.max_hop_output_rows}"
            )
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {self.parallel_backend!r}; "
                f"expected one of {list(PARALLEL_BACKENDS)}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1 or None, got {self.max_workers}"
            )
        if self.hop_latency_seconds < 0:
            raise ConfigError(
                f"hop_latency_seconds must be >= 0, "
                f"got {self.hop_latency_seconds}"
            )
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ConfigError(
                f"chunk_rows must be >= 1 or None, got {self.chunk_rows}"
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 0:
            raise ConfigError(
                f"memory_budget_bytes must be >= 0 or None, "
                f"got {self.memory_budget_bytes}"
            )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ConfigError(
                f"budget_seconds must be positive or None, "
                f"got {self.budget_seconds}"
            )
        if self.max_hops is not None and self.max_hops < 0:
            raise ConfigError(
                f"max_hops must be >= 0 or None, got {self.max_hops}"
            )
        if self.frontier_strategy not in FRONTIER_STRATEGIES:
            raise ConfigError(
                f"unknown frontier strategy {self.frontier_strategy!r}; "
                f"expected one of {list(FRONTIER_STRATEGIES)}"
            )
        if self.frontier_exploration < 0:
            raise ConfigError(
                f"frontier_exploration must be >= 0, "
                f"got {self.frontier_exploration}"
            )
        if self.sketch_bands < 1 or self.sketch_rows_per_band < 1:
            raise ConfigError(
                f"sketch_bands and sketch_rows_per_band must be >= 1, "
                f"got {self.sketch_bands}x{self.sketch_rows_per_band}"
            )
        if self.sketch_bands * self.sketch_rows_per_band > MINHASH_PERMUTATIONS:
            raise ConfigError(
                f"sketch banding {self.sketch_bands}x"
                f"{self.sketch_rows_per_band} exceeds the "
                f"{MINHASH_PERMUTATIONS}-permutation signature"
            )
        if self.candidate_min_recall is not None and not (
            0.0 < self.candidate_min_recall <= 1.0
        ):
            raise ConfigError(
                f"candidate_min_recall must be in (0, 1] or None, "
                f"got {self.candidate_min_recall}"
            )
        if self.redundancy_method not in REDUNDANCY_METHODS:
            raise ConfigError(
                f"unknown redundancy method {self.redundancy_method!r}; "
                f"expected one of {sorted(REDUNDANCY_METHODS)}"
            )

    def with_overrides(self, **kwargs) -> "AutoFeatConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **kwargs)

    @staticmethod
    def ablation(name: str, **kwargs) -> "AutoFeatConfig":
        """Named ablation configurations from Figure 9.

        ``spearman-mrmr`` (AutoFeat), ``spearman-jmi``, ``pearson-mrmr``,
        ``pearson-jmi``, ``spearman-only``, ``mrmr-only``.
        """
        presets = {
            "spearman-mrmr": {},
            "spearman-jmi": {"redundancy_method": "jmi"},
            "pearson-mrmr": {"relevance_metric": "pearson"},
            "pearson-jmi": {
                "relevance_metric": "pearson",
                "redundancy_method": "jmi",
            },
            "spearman-only": {"use_redundancy": False},
            "mrmr-only": {"use_relevance": False},
        }
        if name not in presets:
            raise ConfigError(
                f"unknown ablation {name!r}; expected one of {sorted(presets)}"
            )
        merged = {**presets[name], **kwargs}
        return AutoFeatConfig(**merged)
