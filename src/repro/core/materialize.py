"""Materialising join paths into augmented tables.

Shared by the discovery phase (which joins the *sampled* base table) and
the training phase (which joins the *full* base table), and by the
baselines.  Columns contributed by a lake table are qualified as
``table.column`` so provenance survives multi-hop joins and name
collisions cannot occur.

Execution is delegated to :class:`repro.engine.JoinEngine`; the functions
here are the stable one-shot API.  Callers that execute many hops (the
discovery BFS, the baselines' join loops) should construct one engine and
pass it in — or call the engine directly — so build-side state is shared
across hops; a fresh cache-less engine is created per call otherwise.
"""

from __future__ import annotations

from ..dataframe import Table
from ..engine import JoinEngine, qualified, source_column_name
from ..graph import DatasetRelationGraph, JoinPath, OrientedEdge

__all__ = ["qualified", "source_column_name", "apply_hop", "materialize_path"]


def apply_hop(
    current: Table,
    drg: DatasetRelationGraph,
    edge: OrientedEdge,
    base_name: str,
    seed: int,
    path: JoinPath | None = None,
    engine: JoinEngine | None = None,
) -> tuple[Table, list[str]]:
    """Left-join one hop onto the running table.

    Returns ``(joined, contributed_columns)`` where the contributed columns
    are the qualified names of everything the right table added (join key
    included — its completeness is what quality pruning inspects).

    Raises :class:`repro.errors.JoinError` when the join is unfeasible: the
    source column is missing from the running join (can happen on spurious
    discovery edges) — Algorithm 1 prunes such paths.  Pass ``path`` to get
    the hop sequence included in the error message.
    """
    if engine is None:
        engine = JoinEngine(drg, seed=seed, enable_cache=False)
    return engine.apply_hop(current, edge, base_name, path=path)


def materialize_path(
    drg: DatasetRelationGraph,
    path: JoinPath,
    base_table: Table,
    seed: int = 0,
    engine: JoinEngine | None = None,
) -> tuple[Table, list[list[str]]]:
    """Join the full path onto ``base_table``, hop by hop.

    Returns the augmented table and, per hop, the list of qualified columns
    that hop contributed.
    """
    if engine is None:
        engine = JoinEngine(drg, seed=seed, enable_cache=False)
    return engine.materialize_path(path, base_table)
