"""Materialising join paths into augmented tables.

Shared by the discovery phase (which joins the *sampled* base table) and
the training phase (which joins the *full* base table), and by the
baselines.  Columns contributed by a lake table are qualified as
``table.column`` so provenance survives multi-hop joins and name
collisions cannot occur.
"""

from __future__ import annotations

from ..dataframe import Table, left_join
from ..errors import JoinError
from ..graph import DatasetRelationGraph, JoinPath, OrientedEdge

__all__ = ["qualified", "source_column_name", "apply_hop", "materialize_path"]


def qualified(table_name: str, column_name: str) -> str:
    """The qualified feature name a hop contributes."""
    return f"{table_name}.{column_name}"


def source_column_name(edge: OrientedEdge, base_name: str) -> str:
    """Resolve the join column of ``edge.source`` inside the running join.

    Base-table columns keep their bare names; columns that arrived through
    an earlier hop are qualified with their origin table.
    """
    if edge.source == base_name:
        return edge.source_column
    return qualified(edge.source, edge.source_column)


def apply_hop(
    current: Table,
    drg: DatasetRelationGraph,
    edge: OrientedEdge,
    base_name: str,
    seed: int,
) -> tuple[Table, list[str]]:
    """Left-join one hop onto the running table.

    Returns ``(joined, contributed_columns)`` where the contributed columns
    are the qualified names of everything the right table added (join key
    included — its completeness is what quality pruning inspects).

    Raises :class:`JoinError` when the join is unfeasible: the source
    column is missing from the running join (can happen on spurious
    discovery edges) — Algorithm 1 prunes such paths.
    """
    left_col = source_column_name(edge, base_name)
    if left_col not in current:
        raise JoinError(
            f"join column {left_col!r} is not available in the running join"
        )
    right = drg.table(edge.target).prefixed(edge.target)
    right_key = qualified(edge.target, edge.target_column)
    joined = left_join(current, right, left_col, right_key, seed=seed)
    contributed = [name for name in right.column_names if name in joined]
    return joined, contributed


def materialize_path(
    drg: DatasetRelationGraph,
    path: JoinPath,
    base_table: Table,
    seed: int = 0,
) -> tuple[Table, list[list[str]]]:
    """Join the full path onto ``base_table``, hop by hop.

    Returns the augmented table and, per hop, the list of qualified columns
    that hop contributed.
    """
    current = base_table
    contributions: list[list[str]] = []
    for edge in path.edges:
        current, contributed = apply_hop(current, drg, edge, path.base, seed)
        contributions.append(contributed)
    return current, contributions
