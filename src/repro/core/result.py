"""Result types produced by feature discovery and augmentation."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataframe import Table
from ..engine import ExecutionStats, FailureReport
from ..graph import JoinPath
from ..obs import RunManifest
from ..selection.stats import SelectionStats
from .navigation import NavigationStats

__all__ = ["RankedPath", "DiscoveryResult", "TrainedPath", "AugmentationResult"]


@dataclass(frozen=True)
class RankedPath:
    """One scored join path with the features it contributes.

    ``selected_features`` are qualified names (``table.column``) accepted by
    the relevance+redundancy pipeline along the whole path; the base-table
    features are implicit (they are always kept).
    """

    path: JoinPath
    score: float
    selected_features: tuple[str, ...]
    relevance_scores: tuple[float, ...]
    redundancy_scores: tuple[float, ...]
    completeness: float
    #: Names aligned 1:1 with ``relevance_scores`` (the last hop's top-κ
    #: relevant features, before the redundancy stage).
    relevant_names: tuple[str, ...] = ()

    def describe(self) -> str:
        features = ", ".join(self.selected_features) or "(no new features)"
        return f"[{self.score:+.4f}] {self.path.describe()} :: {features}"


@dataclass(frozen=True)
class DiscoveryResult:
    """Outcome of the ranking phase (before any model is trained)."""

    base_table: str
    label_column: str
    ranked_paths: tuple[RankedPath, ...]
    n_paths_explored: int
    n_paths_pruned_quality: int
    n_joins_pruned_similarity: int
    #: Wall time spent inside the streaming selector (relevance plus
    #: redundancy scoring).  This is the quantity the paper's Figure 3/4
    #: "feature selection time" comparisons measure, and it matches how the
    #: ARDA/MAB/JoinAll+F baselines account their own selection loops.
    feature_selection_seconds: float
    #: Wall time of the whole discovery traversal (join execution, pruning
    #: and feature selection together).
    discovery_seconds: float = 0.0
    #: Join-execution counters of the discovery traversal (hops, index
    #: builds, hop-cache hits/misses, rows probed).
    engine_stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: Feature-scoring counters of the traversal (batches scored, features
    #: ranked, code-cache activity, scalar fallbacks).
    selection_stats: SelectionStats = field(default_factory=SelectionStats)
    #: Hops that joined fine but contributed no columns.  They are *not*
    #: quality-pruned (an empty contribution carries no evidence of a bad
    #: join) — the path stays traversable as a stepping stone.
    n_hops_empty_contribution: int = 0
    #: Per-path failure accounting of the traversal under the run's
    #: failure policy (empty under ``fail_fast``, and for clean runs).
    failure_report: FailureReport = field(default_factory=FailureReport)
    #: Reproducibility record of the traversal: config snapshot, seed,
    #: dataset fingerprint, git revision, timing tree, metrics, events.
    run_manifest: RunManifest | None = None
    #: True when the run's anytime budget (wall-clock deadline or
    #: ``max_hops``) expired before the frontier drained: ``ranked_paths``
    #: is the best-k-so-far, not the full traversal's ranking.
    budget_exhausted: bool = False
    #: Frontier/budget accounting of the traversal (strategy, executed
    #: hops, unexplored frontier size, best score).
    navigation: NavigationStats = field(default_factory=NavigationStats)

    def top(self, k: int) -> tuple[RankedPath, ...]:
        """The ``k`` best-scoring paths."""
        return self.ranked_paths[:k]

    @property
    def best_path(self) -> RankedPath | None:
        return self.ranked_paths[0] if self.ranked_paths else None


@dataclass(frozen=True)
class TrainedPath:
    """A ranked path after model training on its augmented table."""

    ranked: RankedPath
    accuracy: float
    n_features_used: int


@dataclass(frozen=True)
class AugmentationResult:
    """Final outcome: the best augmented table and full bookkeeping."""

    discovery: DiscoveryResult
    trained: tuple[TrainedPath, ...]
    best: TrainedPath | None
    augmented_table: Table | None
    model_name: str
    total_seconds: float
    #: Join-execution counters of the training-phase materialisations
    #: (the discovery-phase counters live on ``discovery.engine_stats``).
    engine_stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: Training-phase failures (top-k paths whose full-table
    #: materialisation failed and was skipped under the run's policy).
    failure_report: FailureReport = field(default_factory=FailureReport)
    #: Whole-run reproducibility record: the discovery timing tree and the
    #: training timing tree composed under one ``augment`` root, plus the
    #: combined metrics of both phases.
    run_manifest: RunManifest | None = None
    #: True when the run's anytime budget expired during either phase:
    #: discovery stopped early (see ``discovery.budget_exhausted``) or
    #: training covered only a prefix of the top-k paths.
    budget_exhausted: bool = False

    @property
    def accuracy(self) -> float:
        """Best achieved accuracy (0.0 when no path survived)."""
        return self.best.accuracy if self.best else 0.0

    @property
    def n_joined_tables(self) -> int:
        """Number of datasets joined on the winning path."""
        if self.best is None:
            return 0
        return self.best.ranked.path.length

    @property
    def combined_engine_stats(self) -> ExecutionStats:
        """Discovery-phase plus training-phase join-execution counters."""
        return self.discovery.engine_stats.merged(self.engine_stats)

    @property
    def combined_failure_report(self) -> FailureReport:
        """Discovery-phase plus training-phase failure records."""
        return self.discovery.failure_report.merged(self.failure_report)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"base={self.discovery.base_table} label={self.discovery.label_column}",
            f"explored {self.discovery.n_paths_explored} paths, "
            f"pruned {self.discovery.n_paths_pruned_quality} on quality, "
            f"{self.discovery.n_joins_pruned_similarity} join columns on similarity",
            f"discovery {self.discovery.discovery_seconds:.2f}s "
            f"(feature selection {self.discovery.feature_selection_seconds:.2f}s), "
            f"total {self.total_seconds:.2f}s, model {self.model_name}",
            f"engine: {self.combined_engine_stats.describe()}",
            f"selection: {self.discovery.selection_stats.describe()}",
            f"failures: {self.combined_failure_report.describe()}",
        ]
        if self.run_manifest is not None:
            lines.append(f"stages: {self.run_manifest.stage_summary()}")
        if self.budget_exhausted:
            lines.append(
                "anytime budget exhausted: "
                + self.discovery.navigation.describe()
            )
        if self.discovery.n_hops_empty_contribution:
            lines.append(
                f"{self.discovery.n_hops_empty_contribution} empty-contribution "
                f"hop(s) kept traversable"
            )
        if self.best is not None:
            lines.append(f"best accuracy {self.best.accuracy:.4f} on path:")
            lines.append("  " + self.best.ranked.describe())
        else:
            lines.append("no path survived pruning; base table unchanged")
        return "\n".join(lines)
