"""AutoFeat core: ranking-based transitive feature discovery."""

from .autofeat import AutoFeat, autofeat_augment
from .config import AutoFeatConfig
from .explain import FeatureProvenance, explain, explain_rows
from .materialize import apply_hop, materialize_path, qualified, source_column_name
from .navigation import (
    FRONTIER_STRATEGIES,
    FrontierEntry,
    NavigationFrontier,
    NavigationStats,
    RunBudget,
    UcbArm,
    UcbFrontierPolicy,
    hop_reward,
    ranking_regret,
    ucb_score,
)
from .pruning import completeness, passes_quality, similarity_pruned_count
from .ranking import compute_ranking_score, normalised_sum
from .result import AugmentationResult, DiscoveryResult, RankedPath, TrainedPath
from .streaming import StageOutcome, StreamingFeatureSelector
from .tuning import AutoFeatTuner, TuningOutcome, TuningTrial

__all__ = [
    "AutoFeatTuner",
    "TuningOutcome",
    "TuningTrial",
    "AutoFeat",
    "autofeat_augment",
    "AutoFeatConfig",
    "explain",
    "explain_rows",
    "FeatureProvenance",
    "DiscoveryResult",
    "RankedPath",
    "TrainedPath",
    "AugmentationResult",
    "StreamingFeatureSelector",
    "StageOutcome",
    "compute_ranking_score",
    "normalised_sum",
    "completeness",
    "passes_quality",
    "similarity_pruned_count",
    "materialize_path",
    "apply_hop",
    "qualified",
    "source_column_name",
    "FRONTIER_STRATEGIES",
    "FrontierEntry",
    "NavigationFrontier",
    "NavigationStats",
    "RunBudget",
    "UcbArm",
    "UcbFrontierPolicy",
    "hop_reward",
    "ranking_regret",
    "ucb_score",
]
