"""The two pruning strategies of Section IV-C.

1. **Similarity-score pruning** operates at the join-column level: when a
   dataset-discovery run proposes several join columns between the same two
   tables, only the top-scoring one(s) are explored (ties each become their
   own path).  Exposed through
   :meth:`repro.graph.DatasetRelationGraph.best_join_options`; the helper
   here just counts what was discarded for bookkeeping.

2. **Data-quality pruning** operates at the join-result level: a join whose
   contributed columns are mostly null (completeness below τ) is pruned.
"""

from __future__ import annotations

from ..dataframe import Table
from ..graph import DatasetRelationGraph, OrientedEdge

__all__ = ["completeness", "passes_quality", "similarity_pruned_count"]


def completeness(joined: Table, contributed_columns: list[str]) -> float:
    """1 - null ratio over the columns the join contributed.

    A hop that contributed no columns is vacuously complete (1.0): an
    empty contribution carries no evidence of a bad join, and scoring it
    0.0 would quality-prune stepping-stone hops that only exist to reach a
    relevant transitive table (``AutoFeat.discover`` counts such hops
    separately as ``n_hops_empty_contribution``).
    """
    present = [c for c in contributed_columns if c in joined]
    if not present:
        return 1.0
    return 1.0 - joined.null_ratio(present)


def passes_quality(
    joined: Table, contributed_columns: list[str], tau: float
) -> bool:
    """Data-quality pruning rule: keep a join iff completeness >= τ.

    τ = 1 demands a perfect key match (no nulls at all); τ near 0 keeps
    everything.  The paper recommends τ = 0.65 (Section VII-D).  Joins
    with an empty contribution always pass (vacuous completeness).
    """
    return completeness(joined, contributed_columns) >= tau


def similarity_pruned_count(
    drg: DatasetRelationGraph, table_a: str, table_b: str
) -> int:
    """How many parallel join options similarity pruning discards."""
    total = len(drg.join_options(table_a, table_b))
    kept = len(drg.best_join_options(table_a, table_b))
    return max(0, total - kept)
