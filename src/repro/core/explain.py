"""Provenance reports for augmentation results.

An augmented table is only trustworthy if you can see where each feature
came from; :func:`explain` turns an :class:`AugmentationResult` into a
per-feature provenance table — origin dataset, the join hops that fetched
it, its relevance/redundancy scores and the hop completeness — plus the
pruning bookkeeping of the discovery run.
"""

from __future__ import annotations

from dataclasses import dataclass

from .result import AugmentationResult, RankedPath

__all__ = ["FeatureProvenance", "explain_rows", "explain"]


@dataclass(frozen=True)
class FeatureProvenance:
    """Where one selected feature came from and why it survived."""

    feature: str
    origin_table: str
    hops_from_base: int
    join_route: str
    relevance_score: float | None
    redundancy_score: float | None


def _provenance_of(ranked: RankedPath) -> list[FeatureProvenance]:
    hop_of = {edge.target: i + 1 for i, edge in enumerate(ranked.path.edges)}
    route_upto = {}
    for i in range(len(ranked.path.edges)):
        hops = ranked.path.edges[: i + 1]
        route_upto[hops[-1].target] = " | ".join(
            f"{e.source}.{e.source_column} -> {e.target}.{e.target_column}"
            for e in hops
        )
    # Scores are recorded for the last hop's batch: redundancy scores align
    # with the last len(redundancy_scores) selected features, relevance
    # scores with the recorded relevant_names.  Earlier hops' scores were
    # reported in their own (ancestor) ranking entries.
    n_last = len(ranked.redundancy_scores)
    last_accepted = ranked.selected_features[len(ranked.selected_features) - n_last :]
    last_scores = dict(zip(last_accepted, ranked.redundancy_scores))
    relevance = dict(zip(ranked.relevant_names, ranked.relevance_scores))
    out = []
    for feature in ranked.selected_features:
        origin = feature.split(".", 1)[0] if "." in feature else ranked.path.base
        out.append(
            FeatureProvenance(
                feature=feature,
                origin_table=origin,
                hops_from_base=hop_of.get(origin, 0),
                join_route=route_upto.get(origin, "(base table)"),
                relevance_score=relevance.get(feature),
                redundancy_score=last_scores.get(feature),
            )
        )
    return out


def explain_rows(result: AugmentationResult) -> list[dict]:
    """Provenance of the winning path's features as report rows."""
    if result.best is None:
        return []
    rows = []
    for item in _provenance_of(result.best.ranked):
        rows.append(
            {
                "feature": item.feature,
                "origin": item.origin_table,
                "hops": item.hops_from_base,
                "route": item.join_route,
                "relevance": (
                    round(item.relevance_score, 4)
                    if item.relevance_score is not None
                    else ""
                ),
                "redundancy": (
                    round(item.redundancy_score, 4)
                    if item.redundancy_score is not None
                    else ""
                ),
            }
        )
    return rows


def explain(result: AugmentationResult) -> str:
    """Human-readable provenance report for an augmentation result."""
    from ..bench.reporting import format_table

    lines = [result.summary(), ""]
    rows = explain_rows(result)
    if rows:
        lines.append(format_table(rows, title="feature provenance"))
    else:
        lines.append("(no features were added)")
    return "\n".join(lines)
