"""Streaming feature selection (paper Sections V-A and VI).

Features arrive in groups — one group per join — against a fixed set of
rows.  Each group flows through two stages:

1. **relevance analysis** — score each new feature against the label and
   keep the top-κ with positive scores;
2. **redundancy analysis** — score each survivor against the set of
   *already selected* features (base-table features plus everything
   accepted on earlier joins) and keep those whose score stays positive.

The selected-feature set persists across the whole traversal, exactly like
the global ``R_sel`` of Algorithm 1.  Join-column features are exempt from
elimination because they carry the path (Section V-A); they are simply
never offered to the selector.

When ``config.enable_selection_kernels`` is on (the default), scoring runs
through the vectorised kernels of :mod:`repro.selection.kernels` and a
**persistent code cache**: the discretised codes (and entropy terms) of
the label and every accepted feature are stored once at acceptance time,
so the redundancy stage stops re-binning the entire selected set — an
O(|S|·n) cost that grows quadratically over a traversal — on every hop.
Scores are bit-identical with the kernels on or off; the
:class:`repro.selection.SelectionStats` counters on :attr:`stats` record
how much work the cache saved.

**Parallel-execution contract**: the selector is *order-dependent* state —
redundancy scores depend on everything accepted before — and is therefore
never shared with, or updated by, worker threads/processes.  Under
``config.parallel_backend != "serial"`` the coordinator calls
:meth:`StreamingFeatureSelector.process_batch` only at the deterministic
merge points, consuming hop outcomes in canonical enumeration order (see
:mod:`repro.engine.parallel` and DESIGN.md §11), which is what keeps the
accepted-feature sequence — and with it every downstream ranking score —
bit-identical across backends.  The selector itself needs no locks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SelectionError
from ..selection.kernels import SelectionCodeCache, batch_redundancy_scores
from ..selection.redundancy import redundancy_scores
from ..selection.select_k_best import select_k_best
from ..selection.stats import SelectionCounters, SelectionStats
from .config import AutoFeatConfig

__all__ = ["StageOutcome", "StreamingFeatureSelector"]


@dataclass(frozen=True)
class StageOutcome:
    """Result of pushing one feature batch through both stages."""

    relevant_names: tuple[str, ...]
    relevance_scores: tuple[float, ...]
    accepted_names: tuple[str, ...]
    redundancy_scores: tuple[float, ...]

    @property
    def all_irrelevant(self) -> bool:
        return not self.relevant_names

    @property
    def all_redundant(self) -> bool:
        return bool(self.relevant_names) and not self.accepted_names


class StreamingFeatureSelector:
    """Stateful two-stage selector shared by a whole discovery run."""

    def __init__(self, config: AutoFeatConfig, label: np.ndarray):
        self._config = config
        label = np.asarray(label, dtype=np.float64)
        if label.ndim != 1:
            raise SelectionError("label must be a 1-D vector")
        self._label = label
        self._selected_names: list[str] = []
        self._selected_set: set[str] = set()
        self._selected_columns: list[np.ndarray] = []
        self._counters = SelectionCounters()
        self._use_kernels = config.enable_selection_kernels
        self._code_cache = (
            SelectionCodeCache(label, self._counters)
            if self._use_kernels
            else None
        )

    @property
    def selected_names(self) -> list[str]:
        """Names of every feature accepted so far (insertion order)."""
        return list(self._selected_names)

    @property
    def n_selected(self) -> int:
        return len(self._selected_names)

    @property
    def stats(self) -> SelectionStats:
        """Frozen snapshot of the run's scoring counters."""
        return self._counters.snapshot()

    def is_selected(self, name: str) -> bool:
        """Whether ``name`` is already in the persistent selected set."""
        return name in self._selected_set

    def _accept(self, name: str, column: np.ndarray) -> None:
        self._selected_names.append(name)
        self._selected_set.add(name)
        self._selected_columns.append(column)
        if self._code_cache is not None:
            self._code_cache.add(column)

    def seed_with(self, names: list[str], matrix: np.ndarray) -> None:
        """Initialise the selected set with the base table's features."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (len(self._label), len(names)):
            raise SelectionError(
                f"seed matrix shape {matrix.shape} does not match "
                f"{len(self._label)} rows x {len(names)} features"
            )
        for i, name in enumerate(names):
            self._accept(name, matrix[:, i])

    def _selected_matrix(self) -> np.ndarray | None:
        if not self._selected_columns:
            return None
        return np.column_stack(self._selected_columns)

    def process_batch(self, names: list[str], matrix: np.ndarray) -> StageOutcome:
        """Run relevance then redundancy on one batch of new features.

        Features accepted by both stages are added to the persistent
        selected set.  Returns the per-stage survivors and their scores.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(names):
            raise SelectionError(
                f"batch matrix shape {matrix.shape} does not match "
                f"{len(names)} feature names"
            )
        if matrix.shape[0] != len(self._label):
            raise SelectionError(
                f"batch has {matrix.shape[0]} rows, label has {len(self._label)}"
            )
        if not names:
            return StageOutcome((), (), (), ())

        config = self._config
        self._counters.batches_scored += 1
        if config.use_relevance:
            outcome = select_k_best(
                matrix,
                self._label,
                k=config.kappa,
                metric=config.relevance_metric,
                min_score=config.min_relevance,
                seed=config.seed,
                use_kernels=self._use_kernels,
                counters=self._counters,
            )
            relevant_idx = list(outcome.indices)
            relevant_scores = list(outcome.scores)
        else:
            relevant_idx = list(range(len(names)))[: config.kappa]
            relevant_scores = [0.0] * len(relevant_idx)

        relevant_names = tuple(names[j] for j in relevant_idx)
        if not relevant_idx:
            return StageOutcome((), (), (), ())

        candidate_matrix = matrix[:, relevant_idx]
        if config.use_redundancy:
            if self._code_cache is not None:
                scores = batch_redundancy_scores(
                    candidate_matrix,
                    self._code_cache,
                    method=config.redundancy_method,
                    counters=self._counters,
                )
            else:
                scores = redundancy_scores(
                    candidate_matrix,
                    self._selected_matrix(),
                    self._label,
                    method=config.redundancy_method,
                )
            scored_keep = [
                (i, float(s)) for i, s in enumerate(scores) if s > 0.0
            ]
        else:
            scored_keep = [
                (i, float(relevant_scores[i])) for i in range(len(relevant_idx))
            ]

        # A candidate can reach this point even though it is already in
        # the selected set — two paths landing on the same table offer the
        # same qualified column twice, and with redundancy disabled
        # (ablation) nothing downstream rejects the rerun.  R_sel is
        # global (Algorithm 1), so acceptance dedupes: an already-selected
        # name is never added to the matrix or the outcome again.
        accepted_names: list[str] = []
        accepted_scores: list[float] = []
        for i, score in scored_keep:
            name = relevant_names[i]
            if name in self._selected_set:
                continue
            accepted_names.append(name)
            accepted_scores.append(score)
            self._accept(name, candidate_matrix[:, i])

        return StageOutcome(
            relevant_names=relevant_names,
            relevance_scores=tuple(relevant_scores),
            accepted_names=tuple(accepted_names),
            redundancy_scores=tuple(accepted_scores),
        )
