"""Budgeted anytime path navigation: UCB frontier + run budgets.

The paper's BFS enumerates every acyclic join path, which a traffic-serving
deployment cannot afford: path count is exponential in lake density, and a
latency-bounded query needs the *best paths it can find in time*, not all
of them.  This module supplies the three pieces that turn the discovery
traversal into an *anytime* algorithm (FeatNavigator / Hippasus direction,
see PAPERS.md):

* :class:`RunBudget` — a run-level wall-clock deadline and/or executed-hop
  cap, threaded from :class:`~repro.core.AutoFeatConfig` through
  ``discover`` / ``train_top_k``, the parallel wave scheduler and the
  :class:`~repro.service.DiscoveryService` per-request path;
* :class:`NavigationFrontier` — the traversal frontier, either in
  canonical FIFO order (the bit-parity baseline: exactly the paper's BFS /
  the DFS ablation) or as a priority queue scored by
  :class:`UcbFrontierPolicy`;
* :class:`UcbFrontierPolicy` — UCB1 arm statistics over hop-level
  features: one arm per hop *target table*, pulled every time a hop joins
  into that table, rewarded with the hop's bounded relevance/redundancy
  ranking signal (:func:`hop_reward`).  Frontier entries are scored
  ``observed value + exploration bonus``, so budgeted runs spend their
  hops on the transitively-promising parts of the join graph first.

Determinism contract (DESIGN.md §14):

* **No budget set** — navigation degenerates to the canonical FIFO order
  regardless of ``frontier_strategy``: every path is explored anyway, and
  canonical order is the one that keeps results bit-identical to the
  reference BFS across all three parallel backends.  (A priority order
  would reshuffle the streaming selector's batch sequence and change
  scores without changing the explored set — pure downside when nothing
  is pruned by the budget.)
* **Hop budget (`max_hops`)** — fully deterministic: the executed set is
  the first ``max_hops`` hops of the strategy's expansion order, which is
  itself budget-independent, so explored sets *nest* as the budget grows
  and regret (:func:`ranking_regret`) is monotonically non-increasing.
  Serial, threads and processes backends execute the identical prefix.
* **Wall-clock budget (`budget_seconds`)** — anytime, not bit-reproducible:
  where the deadline lands depends on machine speed.  The run still
  returns within budget plus one hop's slack (one wave's slack on the
  parallel backends), marks ``budget_exhausted`` and reports what it
  explored.

Deadlines are ``time.monotonic`` timestamps.  On the platforms this repo
targets (Linux) the monotonic clock is system-wide, so a deadline computed
on the coordinator is meaningful inside process-pool workers too; worker
checks are a best-effort early abort and the coordinator re-checks
authoritatively between waves either way.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..obs.metrics import MetricsRegistry

__all__ = [
    "FRONTIER_STRATEGIES",
    "DEFAULT_FRONTIER_EXPLORATION",
    "ucb_score",
    "UcbArm",
    "UcbFrontierPolicy",
    "FrontierEntry",
    "NavigationFrontier",
    "RunBudget",
    "NavigationStats",
    "hop_reward",
    "ranking_regret",
]

#: The two frontier orderings a *budgeted* run can use.
#:
#: * ``ucb`` — priority queue scored by :class:`UcbFrontierPolicy`
#:   (the default: spend the budget on promising subgraphs first);
#: * ``fifo`` — canonical order (BFS levels, or LIFO under the DFS
#:   ablation): the budget simply truncates the reference traversal.
#:
#: Unbudgeted runs always traverse in canonical order — see the module
#: docstring for why.
FRONTIER_STRATEGIES = ("fifo", "ucb")

#: UCB1 exploration constant (the classic √(2·ln t / n) weight).
DEFAULT_FRONTIER_EXPLORATION = 0.5


def ucb_score(
    pulls: int, total_reward: float, total_pulls: int, exploration: float
) -> float:
    """UCB1 upper confidence bound of one arm.

    Unpulled arms score ``+inf`` — cold-start optimism with ties broken
    deterministically by the *caller's* stable ordering, never by float
    noise.  The exploration bonus uses ``log(total_pulls + 1)`` so it is
    strictly positive from the very first pull: the classic
    ``log(max(total_pulls, 1))`` form zeroes the bonus while
    ``total_pulls <= 1``, which collapses early tie-breaking onto raw
    means computed from a single sample (the cold-start bug this replaces
    in :mod:`repro.baselines.mab`).
    """
    if pulls <= 0:
        return math.inf
    mean = total_reward / pulls
    return mean + exploration * math.sqrt(
        2.0 * math.log(total_pulls + 1) / pulls
    )


@dataclass
class UcbArm:
    """Running reward statistics of one bandit arm.

    The shared arm record behind both the MAB baseline's (source, target)
    join actions and the navigation frontier's per-target-table arms.
    """

    key: str = ""
    #: Stable insertion index — the deterministic tie-break among arms
    #: with equal (possibly infinite) UCB scores: earliest wins.
    order: int = 0
    pulls: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.pulls if self.pulls else 0.0

    def pull(self, reward: float) -> None:
        """Record one pull of this arm with its observed reward."""
        self.pulls += 1
        self.total_reward += reward

    def ucb(self, total_pulls: int, exploration: float) -> float:
        return ucb_score(self.pulls, self.total_reward, total_pulls, exploration)


def hop_reward(score: float, completeness: float) -> float:
    """Bounded [0, 1] reward of one executed hop.

    ``score`` is the hop's Algorithm-2 ranking signal (cardinality-
    normalised relevance/redundancy means, roughly in [-1, 1]);
    ``completeness`` is the join-quality fraction the pruning rule
    inspects.  Both are pure functions of the hop's own data, so the
    reward — and therefore the UCB expansion order — is independent of
    the budget that truncates the run (the nesting property the anytime
    regret guarantee rests on).  Pruned and infeasible hops reward 0.
    """
    squashed = 0.5 * (1.0 + max(-1.0, min(1.0, score)))
    return max(0.0, min(1.0, completeness)) * squashed


@dataclass
class FrontierEntry:
    """One expandable node of the traversal: a path and its joined sample."""

    #: Canonical insertion index (merge order) — the FIFO key and the
    #: deterministic tie-break under priority ordering.
    order: int
    path: object
    table: object
    features: tuple[str, ...] = ()
    #: Observed value of the hop that created this node (0 for the root).
    reward: float = 0.0


class UcbFrontierPolicy:
    """UCB1 scoring of frontier entries over per-target-table arms.

    One arm per hop target table; every *executed* hop into a table pulls
    its arm (pruned hops reward 0, surviving hops :func:`hop_reward`).
    A frontier entry's priority is::

        entry.reward + arm(entry.path.terminal).ucb(total_pulls, c)

    — the observed value of reaching the node plus optimism about tables
    whose joins have been productive (or never tried: unpulled arms are
    ``+inf``, so the root expands first and freshly-reached tables are
    probed before well-known ones are milked).
    """

    def __init__(self, exploration: float = DEFAULT_FRONTIER_EXPLORATION):
        self.exploration = exploration
        self.total_pulls = 0
        self._arms: dict[str, UcbArm] = {}

    def arm(self, table: str) -> UcbArm:
        if table not in self._arms:
            self._arms[table] = UcbArm(key=table, order=len(self._arms))
        return self._arms[table]

    def update(self, table: str, reward: float) -> None:
        """Record one executed hop into ``table`` with its reward."""
        self.arm(table).pull(reward)
        self.total_pulls += 1

    def priority(self, entry: FrontierEntry) -> float:
        terminal = entry.path.terminal
        bonus = ucb_score(
            self._arms[terminal].pulls if terminal in self._arms else 0,
            self._arms[terminal].total_reward if terminal in self._arms else 0.0,
            self.total_pulls,
            self.exploration,
        )
        return entry.reward + bonus

    @property
    def n_arms(self) -> int:
        return len(self._arms)


class NavigationFrontier:
    """The traversal frontier under a pluggable expansion order.

    ``strategy="fifo"`` reproduces the reference orders exactly: pop the
    oldest entry under BFS, the newest under the DFS ablation.
    ``strategy="ucb"`` pops the entry with the highest
    :meth:`UcbFrontierPolicy.priority`; ties break on the lowest
    canonical ``order`` (the entry serial BFS would have reached first),
    so the expansion order is a deterministic function of the arm
    statistics alone.  Priorities are recomputed at every pop — arms move
    with each merged hop, and a linear scan over the (small) frontier is
    both simpler and stricter about determinism than a staleness-prone
    heap.
    """

    def __init__(
        self,
        traversal: str = "bfs",
        strategy: str = "fifo",
        policy: UcbFrontierPolicy | None = None,
    ):
        if strategy not in FRONTIER_STRATEGIES:
            raise ConfigError(
                f"unknown frontier strategy {strategy!r}; "
                f"expected one of {list(FRONTIER_STRATEGIES)}"
            )
        if strategy == "ucb" and policy is None:
            raise ConfigError("the 'ucb' frontier strategy needs a policy")
        self.traversal = traversal
        self.strategy = strategy
        self.policy = policy
        self._entries: list[FrontierEntry] = []
        self._next_order = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(
        self,
        path,
        table,
        features: tuple[str, ...] = (),
        reward: float = 0.0,
    ) -> FrontierEntry:
        """Append a node in canonical (merge) order."""
        entry = FrontierEntry(
            order=self._next_order,
            path=path,
            table=table,
            features=features,
            reward=reward,
        )
        self._next_order += 1
        self._entries.append(entry)
        return entry

    def pop(self) -> FrontierEntry:
        """Remove and return the next entry to expand."""
        if self.strategy == "ucb":
            best = max(
                range(len(self._entries)),
                key=lambda i: (
                    self.policy.priority(self._entries[i]),
                    -self._entries[i].order,
                ),
            )
            return self._entries.pop(best)
        if self.traversal == "bfs":
            return self._entries.pop(0)
        return self._entries.pop()

    def drain_level(self) -> list[FrontierEntry]:
        """Remove and return the whole current frontier, canonical order.

        The level-synchronous wave the parallel BFS scheduler dispatches.
        """
        entries, self._entries = self._entries, []
        return entries


class RunBudget:
    """One run's anytime budget: a wall-clock deadline and/or a hop cap.

    ``deadline`` is an absolute ``time.monotonic`` timestamp (or None);
    ``max_hops`` caps *executed* hops — enumerated-but-never-executed hops
    (similarity-pruned options, fan-out cut short by expiry) do not count.
    An inactive budget (both None) never trips, so the unbudgeted paths
    stay byte-for-byte on the reference traversal.
    """

    def __init__(
        self, deadline: float | None = None, max_hops: int | None = None
    ):
        self.deadline = deadline
        self.max_hops = max_hops

    @staticmethod
    def compute_deadline(budget_seconds: float | None) -> float | None:
        """An absolute monotonic deadline ``budget_seconds`` from now."""
        if budget_seconds is None:
            return None
        return time.monotonic() + budget_seconds

    @classmethod
    def start(
        cls,
        budget_seconds: float | None,
        max_hops: int | None,
        deadline: float | None = None,
    ) -> "RunBudget":
        """Begin a run's budget; an explicit ``deadline`` (e.g. the shared
        discover+train deadline of ``augment``, or a service request's)
        takes precedence over a fresh ``budget_seconds`` countdown."""
        if deadline is None:
            deadline = cls.compute_deadline(budget_seconds)
        return cls(deadline=deadline, max_hops=max_hops)

    @property
    def active(self) -> bool:
        return self.deadline is not None or self.max_hops is not None

    def expired(self) -> bool:
        """True once the wall-clock deadline has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def exhausted(self, hops_executed: int) -> bool:
        """True once either limit would be violated by one more hop."""
        if self.max_hops is not None and hops_executed >= self.max_hops:
            return True
        return self.expired()

    def hops_remaining(self, hops_executed: int) -> int | None:
        if self.max_hops is None:
            return None
        return max(0, self.max_hops - hops_executed)

    def remaining_seconds(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


@dataclass(frozen=True)
class NavigationStats:
    """Frozen per-run navigation accounting, carried on results.

    ``frontier_unexplored`` counts the frontier entries (expandable nodes)
    the budget left behind — 0 on complete runs.  ``best_score`` is the
    top ranking score among the paths actually ranked, the anytime
    "best-k-so-far" headline number.
    """

    strategy: str = "fifo"
    budget_seconds: float | None = None
    max_hops: int | None = None
    hops_executed: int = 0
    budget_exhausted: bool = False
    frontier_unexplored: int = 0
    best_score: float = 0.0
    arms_tracked: int = 0

    def publish(
        self, registry: MetricsRegistry, prefix: str = "navigation"
    ) -> MetricsRegistry:
        """Publish the budget gauges into ``registry``."""
        registry.gauge(f"{prefix}.budget_exhausted").set(
            1 if self.budget_exhausted else 0
        )
        registry.gauge(f"{prefix}.hops_executed").set(self.hops_executed)
        registry.gauge(f"{prefix}.frontier_unexplored").set(
            self.frontier_unexplored
        )
        registry.gauge(f"{prefix}.best_score").set(round(self.best_score, 6))
        if self.max_hops is not None:
            registry.gauge(f"{prefix}.max_hops").set(self.max_hops)
        if self.budget_seconds is not None:
            registry.gauge(f"{prefix}.budget_seconds").set(self.budget_seconds)
        return registry

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "budget_seconds": self.budget_seconds,
            "max_hops": self.max_hops,
            "hops_executed": self.hops_executed,
            "budget_exhausted": self.budget_exhausted,
            "frontier_unexplored": self.frontier_unexplored,
            "best_score": round(self.best_score, 6),
            "arms_tracked": self.arms_tracked,
        }

    def describe(self) -> str:
        state = "exhausted" if self.budget_exhausted else "complete"
        return (
            f"{self.strategy} navigation, {self.hops_executed} hops, "
            f"budget {state}, {self.frontier_unexplored} frontier entries "
            f"unexplored"
        )


def ranking_regret(full, partial) -> float:
    """Regret of a budgeted discovery run against the full reference run.

    Every path the budgeted run found is scored *by the full run's score
    for that path identity* — the streaming selector's state differs
    between orderings, so comparing a path's own in-run scores across
    runs would conflate navigation regret with selection-order noise.
    Regret is the full run's best score minus the best full-run score
    among the paths the budgeted run discovered, normalised by the full
    best (0 = the budget found a best-scoring path, 1 = it found nothing
    of value).  Monotone non-increasing in the discovered set, hence in
    the hop budget.
    """
    full_scores = {r.path.describe(): r.score for r in full.ranked_paths}
    if not full_scores:
        return 0.0
    best_full = max(full_scores.values())
    found = [
        full_scores[r.path.describe()]
        for r in partial.ranked_paths
        if r.path.describe() in full_scores
    ]
    best_found = max(found) if found else 0.0
    denom = max(abs(best_full), 1e-12)
    return max(0.0, (best_full - best_found) / denom)
