"""AutoFeat — ranking-based transitive feature discovery (Algorithm 1).

The online component of the paper: starting from the base table, traverse
the Dataset Relation Graph breadth-first; at every hop, join, prune on
similarity score and data quality, push the new features through streaming
relevance/redundancy selection, and score the path (Algorithm 2).  The
top-k ranked paths are then materialised in full and evaluated by training
the target model, and the most accurate path wins.

Typical use::

    drg = DatasetRelationGraph.from_discovery(tables, ComaMatcher())
    autofeat = AutoFeat(drg, AutoFeatConfig(tau=0.65, kappa=15))
    result = autofeat.augment("applicants", "loan_approval")
    print(result.summary())
"""

from __future__ import annotations

import time
from collections import deque

from ..dataframe import Table, stratified_sample
from ..engine import FaultInjector, FaultManager, JoinEngine
from ..errors import FaultError, JoinError
from ..graph import DatasetRelationGraph, JoinPath
from ..ml import evaluate_accuracy
from ..obs import (
    MetricsRegistry,
    Tracer,
    build_manifest,
    flat_node,
    synthetic_root,
)
from .config import AutoFeatConfig
from .materialize import qualified
from .pruning import completeness, similarity_pruned_count
from .ranking import compute_ranking_score
from .result import AugmentationResult, DiscoveryResult, RankedPath, TrainedPath
from .streaming import StreamingFeatureSelector

__all__ = ["AutoFeat", "autofeat_augment"]


class AutoFeat:
    """Feature discovery over a Dataset Relation Graph.

    ``fault_injector`` installs a deterministic
    :class:`~repro.engine.FaultInjector` on every engine the pipeline
    creates, so graceful degradation under ``config.failure_policy`` is
    testable end to end.
    """

    def __init__(
        self,
        drg: DatasetRelationGraph,
        config: AutoFeatConfig | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.drg = drg
        self.config = config or AutoFeatConfig()
        self.fault_injector = fault_injector

    def _engine(self, tracer: Tracer | None = None) -> JoinEngine:
        """One per-run engine carrying the config's hop budgets."""
        config = self.config
        return JoinEngine(
            self.drg,
            seed=config.seed,
            enable_cache=config.enable_hop_cache,
            hop_timeout_seconds=config.hop_timeout_seconds,
            max_output_rows=config.max_hop_output_rows,
            fault_injector=self.fault_injector,
            tracer=tracer,
        )

    def _tracer(self) -> Tracer:
        """One per-run tracer honouring ``config.enable_tracing``."""
        return Tracer(enabled=self.config.enable_tracing)

    def _faults(self, stage: str) -> FaultManager:
        """One per-run fault manager applying the config's policy."""
        config = self.config
        return FaultManager(
            policy=config.failure_policy,
            error_budget=config.error_budget,
            max_retries=config.max_retries,
            stage=stage,
        )

    # -- discovery (ranking) phase ---------------------------------------------

    def discover(self, base_name: str, label_column: str) -> DiscoveryResult:
        """Rank all surviving join paths from ``base_name``.

        Runs entirely on a stratified sample of the base table; no ML model
        is trained.  Returns paths sorted by ranking score (descending).

        All hops execute through one :class:`JoinEngine`, so a right-hand
        table reached by many paths is deduped and indexed only once per
        run (when ``config.enable_hop_cache`` is on); the engine's counters
        are returned on ``DiscoveryResult.engine_stats``.  Feature scoring
        likewise runs through one :class:`StreamingFeatureSelector` whose
        vectorised kernels and persistent code cache
        (``config.enable_selection_kernels``) amortise discretisation and
        ranking across all hops; its counters are returned on
        ``DiscoveryResult.selection_stats``.

        With ``config.enable_tracing`` on, the whole traversal runs under
        one :class:`repro.obs.Tracer` (``discover > hop > join /
        selection`` spans); ``discovery_seconds`` and
        ``feature_selection_seconds`` are derived from those spans — one
        timing source, not parallel bookkeeping — and the run's
        :class:`repro.obs.RunManifest` lands on
        ``DiscoveryResult.run_manifest``.
        """
        config = self.config
        tracer = self._tracer()
        started = time.perf_counter()
        engine = self._engine(tracer)
        faults = self._faults("discovery")

        base = self.drg.table(base_name)
        if label_column not in base:
            raise JoinError(
                f"base table {base_name!r} has no label column {label_column!r}"
            )

        # The single selection-timing site: traced runs get a span per
        # scored batch, untraced runs one fallback accumulator.
        fallback_selection = 0.0

        def scored(fn, **attrs):
            nonlocal fallback_selection
            if tracer.enabled:
                with tracer.span("selection", **attrs):
                    return fn()
            scoring_started = time.perf_counter()
            try:
                return fn()
            finally:
                fallback_selection += time.perf_counter() - scoring_started

        ranked: list[RankedPath] = []
        explored = 0
        pruned_quality = 0
        pruned_similarity = 0
        empty_contribution = 0

        with tracer.span("discover", base=base_name, label=label_column) as root:
            with tracer.span("sample", size=config.sample_size):
                sample = stratified_sample(
                    base, label_column, config.sample_size, seed=config.seed
                )
            label = sample.column(label_column).to_float()

            selector = StreamingFeatureSelector(config, label)
            base_features = [n for n in sample.column_names if n != label_column]
            if base_features:
                scored(
                    lambda: selector.seed_with(
                        base_features, sample.numeric_matrix(base_features)
                    ),
                    batch="seed",
                )

            # Each frontier entry carries the partially-joined sample and
            # the qualified features accepted along the path so far.
            frontier: deque[tuple[JoinPath, Table, tuple[str, ...]]] = deque(
                [(JoinPath(base_name), sample, ())]
            )
            while frontier:
                # BFS pops the oldest path (level order); the DFS ablation
                # pops the newest, diving deep before finishing a level.
                if config.traversal == "bfs":
                    path, current, path_features = frontier.popleft()
                else:
                    path, current, path_features = frontier.pop()
                if path.length >= config.max_path_length:
                    continue
                visited = set(path.nodes)
                for neighbor in self.drg.neighbors(path.terminal):
                    if neighbor in visited:
                        continue
                    pruned_similarity += similarity_pruned_count(
                        self.drg, path.terminal, neighbor
                    )
                    for edge in self.drg.best_join_options(path.terminal, neighbor):
                        explored += 1
                        with tracer.span(
                            "hop", table=edge.target, key=edge.target_column
                        ):
                            # Ordinary JoinError is Algorithm 1's pruning
                            # input and is handled below under every
                            # policy; only the fault family (budgets,
                            # injected faults) goes through the failure
                            # policy — fail_fast propagates it, the other
                            # policies record the hop and skip it.
                            try:
                                hop = faults.execute(
                                    lambda: engine.apply_hop(
                                        current, edge, base_name, path=path
                                    ),
                                    base=base_name,
                                    path=path,
                                    edge=edge,
                                    kinds=(FaultError,),
                                )
                            except JoinError:
                                pruned_quality += 1
                                continue
                            if hop is None:
                                continue
                            joined, contributed = hop
                            comp = completeness(joined, contributed)
                            if not contributed:
                                # A hop may contribute no columns at all;
                                # that is not poor join quality — keep it
                                # traversable (see the stepping-stone note
                                # below) and count it.
                                empty_contribution += 1
                            elif comp < config.tau:
                                pruned_quality += 1
                                continue

                            join_key = qualified(edge.target, edge.target_column)
                            candidates = [c for c in contributed if c != join_key]
                            outcome = scored(
                                lambda: selector.process_batch(
                                    candidates, joined.numeric_matrix(candidates)
                                ),
                                features=len(candidates),
                            )
                            score = compute_ranking_score(
                                outcome.relevance_scores, outcome.redundancy_scores
                            )
                            new_path = path.extend(edge)
                            new_features = path_features + outcome.accepted_names
                            ranked.append(
                                RankedPath(
                                    path=new_path,
                                    score=score,
                                    selected_features=new_features,
                                    relevance_scores=outcome.relevance_scores,
                                    redundancy_scores=outcome.redundancy_scores,
                                    completeness=comp,
                                    relevant_names=outcome.relevant_names,
                                )
                            )
                            # Even an all-irrelevant join stays in the
                            # frontier: it may be the gateway to a relevant
                            # transitive table.
                            frontier.append((new_path, joined, new_features))

        # Both timings come from the span tree on traced runs; the
        # untraced fallback is one wall-clock pair plus the single
        # selection accumulator above.
        if tracer.enabled:
            discovery_seconds = root.seconds
            selection_seconds = tracer.total_seconds("selection")
        else:
            discovery_seconds = time.perf_counter() - started
            selection_seconds = fallback_selection

        ranked.sort(key=lambda r: (-r.score, r.path.length, r.path.describe()))
        engine_stats = engine.snapshot()
        selection_stats = selector.stats
        failure_report = faults.report()
        manifest = self._discovery_manifest(
            tracer,
            engine_stats,
            selection_stats,
            failure_report,
            discovery_seconds=discovery_seconds,
            selection_seconds=selection_seconds,
            counters={
                "discovery.paths_explored": explored,
                "discovery.paths_ranked": len(ranked),
                "discovery.pruned_quality": pruned_quality,
                "discovery.pruned_similarity": pruned_similarity,
                "discovery.hops_empty_contribution": empty_contribution,
            },
        )
        return DiscoveryResult(
            base_table=base_name,
            label_column=label_column,
            ranked_paths=tuple(ranked),
            n_paths_explored=explored,
            n_paths_pruned_quality=pruned_quality,
            n_joins_pruned_similarity=pruned_similarity,
            feature_selection_seconds=selection_seconds,
            discovery_seconds=discovery_seconds,
            engine_stats=engine_stats,
            selection_stats=selection_stats,
            n_hops_empty_contribution=empty_contribution,
            failure_report=failure_report,
            run_manifest=manifest,
        )

    def _discovery_manifest(
        self,
        tracer: Tracer,
        engine_stats,
        selection_stats,
        failure_report,
        discovery_seconds: float,
        selection_seconds: float,
        counters: dict[str, int],
    ):
        """Assemble the discovery-phase :class:`repro.obs.RunManifest`."""
        registry = MetricsRegistry()
        engine_stats.publish(registry)
        selection_stats.publish(registry)
        failure_report.publish(registry)
        for name, value in counters.items():
            registry.counter(name).inc(value)
        timing = None
        if not tracer.enabled:
            # Untraced runs still get a minimal two-node tree so stage
            # breakdowns are never missing.
            timing = flat_node(
                "discover",
                discovery_seconds,
                children=[flat_node("selection", selection_seconds)],
                traced=False,
            )
        return build_manifest(
            "discovery",
            tracer=tracer,
            registry=registry,
            config=self.config,
            dataset=self.drg,
            seed=self.config.seed,
            wall_seconds=discovery_seconds,
            timing=timing,
        )

    # -- training phase -----------------------------------------------------------

    def train_top_k(
        self,
        discovery: DiscoveryResult,
        model_name: str = "lightgbm",
    ) -> AugmentationResult:
        """Materialise and evaluate the top-k ranked paths; keep the best.

        Training uses the *full* base table (sampling only ever affected
        feature selection) and only the features accepted along each path,
        plus all base-table features.  The top-k paths often share hops, so
        materialisation runs through one cached :class:`JoinEngine`; its
        counters land on ``AugmentationResult.engine_stats``.

        Full-table materialisation can fail even though the sampled
        discovery pass succeeded (the sample may have dodged the rows that
        break a join).  Under ``skip_and_record`` /``retry`` such a path is
        recorded on ``AugmentationResult.failure_report`` and skipped, and
        the remaining top-k paths still train; ``fail_fast`` propagates.

        When tracing is on, the training phase runs under a ``train`` span
        tree (``train > path > evaluate``) that is composed with the
        discovery phase's tree into one ``augment`` manifest on
        ``AugmentationResult.run_manifest``.
        """
        started = time.perf_counter()
        config = self.config
        tracer = self._tracer()
        engine = self._engine(tracer)
        faults = self._faults("training")
        base = self.drg.table(discovery.base_table)
        base_features = [
            n for n in base.column_names if n != discovery.label_column
        ]

        trained: list[TrainedPath] = []
        tables: list[Table] = []
        with tracer.span(
            "train", base=discovery.base_table, model=model_name
        ) as root:
            for ranked in discovery.top(config.top_k):
                with tracer.span("path", path=ranked.path.describe()):
                    materialised = faults.execute(
                        lambda: engine.materialize_path(ranked.path, base),
                        base=discovery.base_table,
                        path=ranked.path,
                    )
                    if materialised is None:
                        continue
                    table, __ = materialised
                    features = base_features + [
                        f for f in ranked.selected_features if f in table
                    ]
                    with tracer.span(
                        "evaluate", model=model_name, features=len(features)
                    ):
                        acc = evaluate_accuracy(
                            table,
                            discovery.label_column,
                            model_name=model_name,
                            feature_names=features,
                            seed=config.seed,
                        )
                    trained.append(
                        TrainedPath(
                            ranked=ranked,
                            accuracy=acc,
                            n_features_used=len(features),
                        )
                    )
                    tables.append(table)

        best = None
        augmented = None
        if trained:
            best_idx = max(range(len(trained)), key=lambda i: trained[i].accuracy)
            best = trained[best_idx]
            keep = (
                base_features
                + [f for f in best.ranked.selected_features if f in tables[best_idx]]
                + [discovery.label_column]
            )
            augmented = tables[best_idx].select(keep)

        # Span-derived when traced, wall-clock fallback when not, so
        # there is a single timing source either way (satellite 1).
        if tracer.enabled:
            train_seconds = root.seconds
        else:
            train_seconds = time.perf_counter() - started
        total_seconds = discovery.discovery_seconds + train_seconds
        engine_stats = engine.snapshot()
        failure_report = faults.report()
        manifest = self._augment_manifest(
            discovery,
            tracer,
            engine_stats,
            failure_report,
            train_seconds=train_seconds,
            total_seconds=total_seconds,
            n_trained=len(trained),
            best=best,
        )

        return AugmentationResult(
            discovery=discovery,
            trained=tuple(trained),
            best=best,
            augmented_table=augmented,
            model_name=model_name,
            total_seconds=total_seconds,
            engine_stats=engine_stats,
            failure_report=failure_report,
            run_manifest=manifest,
        )

    def _augment_manifest(
        self,
        discovery: DiscoveryResult,
        tracer: Tracer,
        engine_stats,
        failure_report,
        train_seconds: float,
        total_seconds: float,
        n_trained: int,
        best,
    ):
        """Compose discovery + training into one ``augment`` manifest."""
        registry = MetricsRegistry()
        discovery.engine_stats.merged(engine_stats).publish(registry)
        discovery.selection_stats.publish(registry)
        discovery.failure_report.merged(failure_report).publish(registry)
        registry.counter("train.paths_trained").inc(n_trained)
        if best is not None:
            registry.gauge("train.best_accuracy").set(round(best.accuracy, 6))

        if tracer.enabled:
            train_tree = tracer.timing_tree()
        else:
            train_tree = flat_node("train", train_seconds, traced=False)
        discovery_tree = (
            discovery.run_manifest.timing
            if discovery.run_manifest is not None
            else flat_node("discover", discovery.discovery_seconds, traced=False)
        )
        timing = synthetic_root("augment", [discovery_tree, train_tree])
        return build_manifest(
            "augment",
            registry=registry,
            config=self.config,
            dataset=self.drg,
            seed=self.config.seed,
            wall_seconds=total_seconds,
            timing=timing,
        )

    def augment(
        self,
        base_name: str,
        label_column: str,
        model_name: str = "lightgbm",
    ) -> AugmentationResult:
        """Full pipeline: discover, rank, train top-k, return the best."""
        discovery = self.discover(base_name, label_column)
        return self.train_top_k(discovery, model_name=model_name)


def autofeat_augment(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    config: AutoFeatConfig | None = None,
    model_name: str = "lightgbm",
    fault_injector: FaultInjector | None = None,
) -> AugmentationResult:
    """One-call convenience wrapper around :class:`AutoFeat`."""
    return AutoFeat(drg, config, fault_injector=fault_injector).augment(
        base_name, label_column, model_name
    )
