"""AutoFeat — ranking-based transitive feature discovery (Algorithm 1).

The online component of the paper: starting from the base table, traverse
the Dataset Relation Graph breadth-first; at every hop, join, prune on
similarity score and data quality, push the new features through streaming
relevance/redundancy selection, and score the path (Algorithm 2).  The
top-k ranked paths are then materialised in full and evaluated by training
the target model, and the most accurate path wins.

Typical use::

    drg = DatasetRelationGraph.from_discovery(tables, ComaMatcher())
    autofeat = AutoFeat(drg, AutoFeatConfig(tau=0.65, kappa=15))
    result = autofeat.augment("applicants", "loan_approval")
    print(result.summary())
"""

from __future__ import annotations

import time

from ..dataframe import Table, stratified_sample
from ..engine import (
    FaultInjector,
    FaultManager,
    HopTask,
    JoinEngine,
    PathExecutor,
    PathTask,
    plan_hop_faults,
    plan_path_faults,
    settle_managed_failure,
)
from ..engine.engine import _hop_context
from ..engine.parallel import simulate_injector_check, walk_injected_faults
from ..errors import FaultError, JoinError, RunBudgetExceeded
from ..graph import DatasetRelationGraph, JoinPath
from ..ml import evaluate_accuracy
from ..obs import (
    MetricsRegistry,
    Span,
    Tracer,
    build_manifest,
    flat_node,
    synthetic_root,
)
from .config import AutoFeatConfig
from .materialize import qualified
from .navigation import (
    NavigationFrontier,
    NavigationStats,
    RunBudget,
    UcbFrontierPolicy,
    hop_reward,
)
from .pruning import completeness, similarity_pruned_count
from .ranking import compute_ranking_score
from .result import AugmentationResult, DiscoveryResult, RankedPath, TrainedPath
from .streaming import StreamingFeatureSelector

__all__ = ["AutoFeat", "autofeat_augment"]


class AutoFeat:
    """Feature discovery over a Dataset Relation Graph.

    ``fault_injector`` installs a deterministic
    :class:`~repro.engine.FaultInjector` on every engine the pipeline
    creates, so graceful degradation under ``config.failure_policy`` is
    testable end to end.
    """

    def __init__(
        self,
        drg: DatasetRelationGraph,
        config: AutoFeatConfig | None = None,
        fault_injector: FaultInjector | None = None,
        hop_cache=None,
    ):
        self.drg = drg
        self.config = config or AutoFeatConfig()
        self.fault_injector = fault_injector
        #: Optional service-owned :class:`repro.engine.HopCache` shared
        #: across many runs.  When set, every engine this pipeline
        #: creates reuses it instead of building a fresh per-run cache —
        #: the warm-state lever of :class:`repro.service.DiscoveryService`.
        #: Results are bit-identical either way (a cached JoinIndex is
        #: deterministic in its ``(table, key, seed)`` key and the owner
        #: invalidates per-table on mutation); only per-run cache
        #: hit/miss counters reflect the pre-warmed state.
        self.hop_cache = hop_cache

    def _engine(
        self,
        tracer: Tracer | None = None,
        install_injector: bool = True,
        run_deadline: float | None = None,
    ) -> JoinEngine:
        """One per-run engine carrying the config's hop budgets.

        Parallel runs pass ``install_injector=False``: injected faults
        are resolved canonically at work-unit *generation* time (see
        :mod:`repro.engine.parallel`), so the engine — and every worker
        view derived from it — must not consult the injector again.
        ``run_deadline`` threads the run's anytime wall-clock budget into
        every hop for cooperative mid-hop aborts.
        """
        config = self.config
        return JoinEngine(
            self.drg,
            seed=config.seed,
            enable_cache=config.enable_hop_cache,
            hop_timeout_seconds=config.hop_timeout_seconds,
            max_output_rows=config.max_hop_output_rows,
            fault_injector=self.fault_injector if install_injector else None,
            tracer=tracer,
            hop_latency_seconds=config.hop_latency_seconds,
            cache=self.hop_cache,
            use_dict_keys=config.enable_dict_keys,
            chunk_rows=config.chunk_rows,
            memory_budget_bytes=config.memory_budget_bytes,
            spill_dir=config.spill_dir,
            run_deadline=run_deadline,
        )

    def _navigation(
        self, deadline: float | None
    ) -> tuple[RunBudget, NavigationFrontier]:
        """The run's anytime budget and traversal frontier.

        An explicit ``deadline`` (a shared ``augment`` deadline or a
        service request's) overrides a fresh ``config.budget_seconds``
        countdown.  Unbudgeted runs always get the canonical FIFO
        frontier regardless of ``config.frontier_strategy`` — every path
        is explored anyway, and canonical order is the bit-parity
        contract with the reference traversal (DESIGN.md §14); the UCB
        priority order engages only when there is a budget to spend
        wisely.
        """
        config = self.config
        budget = RunBudget.start(
            config.budget_seconds, config.max_hops, deadline=deadline
        )
        strategy = config.frontier_strategy if budget.active else "fifo"
        policy = (
            UcbFrontierPolicy(config.frontier_exploration)
            if strategy == "ucb"
            else None
        )
        frontier = NavigationFrontier(
            traversal=config.traversal, strategy=strategy, policy=policy
        )
        return budget, frontier

    def _tracer(self) -> Tracer:
        """One per-run tracer honouring ``config.enable_tracing``."""
        return Tracer(enabled=self.config.enable_tracing)

    def _faults(self, stage: str) -> FaultManager:
        """One per-run fault manager applying the config's policy."""
        config = self.config
        return FaultManager(
            policy=config.failure_policy,
            error_budget=config.error_budget,
            max_retries=config.max_retries,
            stage=stage,
        )

    # -- discovery (ranking) phase ---------------------------------------------

    def discover(
        self,
        base_name: str,
        label_column: str,
        deadline: float | None = None,
    ) -> DiscoveryResult:
        """Rank all surviving join paths from ``base_name``.

        Runs entirely on a stratified sample of the base table; no ML model
        is trained.  Returns paths sorted by ranking score (descending).

        All hops execute through one :class:`JoinEngine`, so a right-hand
        table reached by many paths is deduped and indexed only once per
        run (when ``config.enable_hop_cache`` is on); the engine's counters
        are returned on ``DiscoveryResult.engine_stats``.  Feature scoring
        likewise runs through one :class:`StreamingFeatureSelector` whose
        vectorised kernels and persistent code cache
        (``config.enable_selection_kernels``) amortise discretisation and
        ranking across all hops; its counters are returned on
        ``DiscoveryResult.selection_stats``.

        With ``config.enable_tracing`` on, the whole traversal runs under
        one :class:`repro.obs.Tracer` (``discover > hop > join /
        selection`` spans); ``discovery_seconds`` and
        ``feature_selection_seconds`` are derived from those spans — one
        timing source, not parallel bookkeeping — and the run's
        :class:`repro.obs.RunManifest` lands on
        ``DiscoveryResult.run_manifest``.

        With ``config.parallel_backend`` set to ``"threads"`` or
        ``"processes"``, frontier hops execute on a worker pool and merge
        deterministically — the result is bit-identical to the serial
        traversal (same ranked paths, scores, selected features, failure
        report); see :meth:`_discover_parallel`.

        With an anytime budget set (``config.budget_seconds`` /
        ``config.max_hops``, or an explicit ``deadline`` — an absolute
        ``time.monotonic`` timestamp, as passed by :meth:`augment` and
        the discovery service), the traversal becomes *anytime*: the
        frontier expands in ``config.frontier_strategy`` order and the
        run stops gracefully when the budget expires, returning the
        best-k-so-far with ``budget_exhausted`` set and the navigation
        accounting on ``DiscoveryResult.navigation``.
        """
        if self.config.parallel_backend != "serial":
            return self._discover_parallel(base_name, label_column, deadline)
        return self._discover_serial(base_name, label_column, deadline)

    def _discover_serial(
        self, base_name: str, label_column: str, deadline: float | None = None
    ) -> DiscoveryResult:
        """The single-threaded reference traversal (the parity baseline)."""
        config = self.config
        tracer = self._tracer()
        started = time.perf_counter()
        budget, frontier = self._navigation(deadline)
        engine = self._engine(tracer, run_deadline=budget.deadline)
        faults = self._faults("discovery")

        base = self.drg.table(base_name)
        if label_column not in base:
            raise JoinError(
                f"base table {base_name!r} has no label column {label_column!r}"
            )

        # The single selection-timing site: traced runs get a span per
        # scored batch, untraced runs one fallback accumulator.
        fallback_selection = 0.0

        def scored(fn, **attrs):
            nonlocal fallback_selection
            if tracer.enabled:
                with tracer.span("selection", **attrs):
                    return fn()
            scoring_started = time.perf_counter()
            try:
                return fn()
            finally:
                fallback_selection += time.perf_counter() - scoring_started

        ranked: list[RankedPath] = []
        explored = 0
        pruned_quality = 0
        pruned_similarity = 0
        empty_contribution = 0
        budget_exhausted = False

        def record_pull(table: str, reward: float) -> None:
            # Every *executed* hop into a table pulls its UCB arm —
            # pruned/failed hops with reward 0, ranked hops with their
            # bounded ranking reward.  No-op under the FIFO frontier.
            if frontier.policy is not None:
                frontier.policy.update(table, reward)

        with tracer.span("discover", base=base_name, label=label_column) as root:
            with tracer.span("sample", size=config.sample_size):
                sample = stratified_sample(
                    base, label_column, config.sample_size, seed=config.seed
                )
            label = sample.column(label_column).to_float()

            selector = StreamingFeatureSelector(config, label)
            base_features = [n for n in sample.column_names if n != label_column]
            if base_features:
                scored(
                    lambda: selector.seed_with(
                        base_features, sample.numeric_matrix(base_features)
                    ),
                    batch="seed",
                )

            # Each frontier entry carries the partially-joined sample and
            # the qualified features accepted along the path so far.
            frontier.push(JoinPath(base_name), sample, ())
            while frontier:
                if budget.exhausted(explored):
                    budget_exhausted = True
                    break
                # The frontier pops in the strategy's order: canonical
                # FIFO (BFS level order, or newest-first under the DFS
                # ablation) or highest UCB priority on budgeted runs.
                entry = frontier.pop()
                path, current = entry.path, entry.table
                path_features = entry.features
                if path.length >= config.max_path_length:
                    continue
                visited = set(path.nodes)
                for neighbor in self.drg.neighbors(path.terminal):
                    if neighbor in visited:
                        continue
                    pruned_similarity += similarity_pruned_count(
                        self.drg, path.terminal, neighbor
                    )
                    for edge in self.drg.best_join_options(path.terminal, neighbor):
                        if budget.exhausted(explored):
                            budget_exhausted = True
                            break
                        explored += 1
                        with tracer.span(
                            "hop", table=edge.target, key=edge.target_column
                        ):
                            # Ordinary JoinError is Algorithm 1's pruning
                            # input and is handled below under every
                            # policy; only the fault family (budgets,
                            # injected faults) goes through the failure
                            # policy — fail_fast propagates it, the other
                            # policies record the hop and skip it.
                            try:
                                hop = faults.execute(
                                    lambda: engine.apply_hop(
                                        current, edge, base_name, path=path
                                    ),
                                    base=base_name,
                                    path=path,
                                    edge=edge,
                                    kinds=(FaultError,),
                                )
                            except JoinError:
                                pruned_quality += 1
                                record_pull(edge.target, 0.0)
                                continue
                            except RunBudgetExceeded:
                                # The wall-clock deadline landed inside
                                # the hop: graceful anytime exhaustion,
                                # never a recorded failure.
                                budget_exhausted = True
                                break
                            if hop is None:
                                record_pull(edge.target, 0.0)
                                continue
                            joined, contributed = hop
                            comp = completeness(joined, contributed)
                            if not contributed:
                                # A hop may contribute no columns at all;
                                # that is not poor join quality — keep it
                                # traversable (see the stepping-stone note
                                # below) and count it.
                                empty_contribution += 1
                            elif comp < config.tau:
                                pruned_quality += 1
                                record_pull(edge.target, 0.0)
                                continue

                            join_key = qualified(edge.target, edge.target_column)
                            candidates = [c for c in contributed if c != join_key]
                            outcome = scored(
                                lambda: selector.process_batch(
                                    candidates, joined.numeric_matrix(candidates)
                                ),
                                features=len(candidates),
                            )
                            score = compute_ranking_score(
                                outcome.relevance_scores, outcome.redundancy_scores
                            )
                            reward = hop_reward(score, comp)
                            record_pull(edge.target, reward)
                            new_path = path.extend(edge)
                            new_features = path_features + outcome.accepted_names
                            ranked.append(
                                RankedPath(
                                    path=new_path,
                                    score=score,
                                    selected_features=new_features,
                                    relevance_scores=outcome.relevance_scores,
                                    redundancy_scores=outcome.redundancy_scores,
                                    completeness=comp,
                                    relevant_names=outcome.relevant_names,
                                )
                            )
                            # Even an all-irrelevant join stays in the
                            # frontier: it may be the gateway to a relevant
                            # transitive table.
                            frontier.push(new_path, joined, new_features, reward)
                    if budget_exhausted:
                        break
                if budget_exhausted:
                    break
            if budget_exhausted:
                tracer.event(
                    "budget_exhausted",
                    hops=explored,
                    frontier_unexplored=len(frontier),
                )

        # Both timings come from the span tree on traced runs; the
        # untraced fallback is one wall-clock pair plus the single
        # selection accumulator above.
        if tracer.enabled:
            discovery_seconds = root.seconds
            selection_seconds = tracer.total_seconds("selection")
        else:
            discovery_seconds = time.perf_counter() - started
            selection_seconds = fallback_selection

        ranked.sort(key=lambda r: (-r.score, r.path.length, r.path.describe()))
        engine_stats = engine.snapshot()
        selection_stats = selector.stats
        failure_report = faults.report()
        navigation = NavigationStats(
            strategy=frontier.strategy,
            budget_seconds=config.budget_seconds,
            max_hops=config.max_hops,
            hops_executed=explored,
            budget_exhausted=budget_exhausted,
            frontier_unexplored=len(frontier),
            best_score=ranked[0].score if ranked else 0.0,
            arms_tracked=frontier.policy.n_arms if frontier.policy else 0,
        )
        manifest = self._discovery_manifest(
            tracer,
            engine_stats,
            selection_stats,
            failure_report,
            discovery_seconds=discovery_seconds,
            selection_seconds=selection_seconds,
            counters={
                "discovery.paths_explored": explored,
                "discovery.paths_ranked": len(ranked),
                "discovery.pruned_quality": pruned_quality,
                "discovery.pruned_similarity": pruned_similarity,
                "discovery.hops_empty_contribution": empty_contribution,
            },
            navigation=navigation,
        )
        return DiscoveryResult(
            base_table=base_name,
            label_column=label_column,
            ranked_paths=tuple(ranked),
            n_paths_explored=explored,
            n_paths_pruned_quality=pruned_quality,
            n_joins_pruned_similarity=pruned_similarity,
            feature_selection_seconds=selection_seconds,
            discovery_seconds=discovery_seconds,
            engine_stats=engine_stats,
            selection_stats=selection_stats,
            n_hops_empty_contribution=empty_contribution,
            failure_report=failure_report,
            run_manifest=manifest,
            budget_exhausted=budget_exhausted,
            navigation=navigation,
        )

    # -- parallel discovery ---------------------------------------------------

    def _attempts(self) -> int:
        """Attempts per managed operation, mirroring ``FaultManager.execute``."""
        if self.config.failure_policy == "retry":
            return 1 + self.config.max_retries
        return 1

    @staticmethod
    def _graft_worker_spans(tracer: Tracer, wave, outcome, rebase: bool) -> None:
        """Attach a work unit's span tree under the open wave span.

        Process workers time against their own ``perf_counter_ns`` clock,
        so their trees are rebased onto the wave's start before grafting;
        thread workers share the parent's clock and graft verbatim.
        """
        if not tracer.enabled or not outcome.spans:
            return
        for data in outcome.spans:
            span = Span.from_dict(data)
            if rebase:
                span.shift(wave.start_ns - span.start_ns)
            wave.children.append(span)

    def _discover_parallel(
        self, base_name: str, label_column: str, deadline: float | None = None
    ) -> DiscoveryResult:
        """Wave-parallel Algorithm 1 with a deterministic merge.

        The traversal advances in *waves*: under BFS one wave is the whole
        current frontier level (draining the frontier reproduces the
        serial pop order exactly), under DFS — and under the UCB priority
        frontier of a budgeted run — it is one popped entry's edge
        fan-out (what serial expands before popping again).  Work units
        are enumerated in canonical order — the same ``neighbors`` /
        ``best_join_options`` loops as serial, with similarity pruning and
        fault planning done here on the coordinating thread — executed on
        the configured backend, and merged back **in enumeration order**:
        quality pruning, streaming feature selection, ranking, frontier
        growth, UCB arm updates and the failure policy (with its shared
        error budget) all happen at the merge point only.  That ordering
        is the entire determinism argument: every order-sensitive
        decision consumes worker output in exactly the sequence serial
        would have produced it, so ranked paths, scores, selected
        features and failure reports are bit-identical across backends.

        Budget semantics mirror serial: a ``max_hops`` cap truncates
        work-unit *generation* at exactly the serial cut point (the
        executed hop set is the identical prefix on every backend); the
        wall-clock deadline is checked between waves and cooperatively
        inside workers, so an expiring run overshoots by at most one
        wave.
        """
        config = self.config
        tracer = self._tracer()
        started = time.perf_counter()
        budget, frontier = self._navigation(deadline)
        engine = self._engine(
            tracer, install_injector=False, run_deadline=budget.deadline
        )
        injector = self.fault_injector
        faults = self._faults("discovery")
        attempts = self._attempts()
        fail_fast = config.failure_policy == "fail_fast"

        base = self.drg.table(base_name)
        if label_column not in base:
            raise JoinError(
                f"base table {base_name!r} has no label column {label_column!r}"
            )

        fallback_selection = 0.0

        def scored(fn, **attrs):
            nonlocal fallback_selection
            if tracer.enabled:
                with tracer.span("selection", **attrs):
                    return fn()
            scoring_started = time.perf_counter()
            try:
                return fn()
            finally:
                fallback_selection += time.perf_counter() - scoring_started

        ranked: list[RankedPath] = []
        explored = 0
        pruned_quality = 0
        pruned_similarity = 0
        empty_contribution = 0
        waves = 0
        budget_exhausted = False

        def record_pull(table: str, reward: float) -> None:
            # Arm updates happen only here, at the canonical merge point,
            # mirroring the serial pull sequence exactly.
            if frontier.policy is not None:
                frontier.policy.update(table, reward)

        executor = PathExecutor(
            engine,
            backend=config.parallel_backend,
            max_workers=config.max_workers,
            trace_spans=tracer.enabled,
        )
        try:
            with tracer.span(
                "discover", base=base_name, label=label_column
            ) as root:
                with tracer.span("sample", size=config.sample_size):
                    sample = stratified_sample(
                        base, label_column, config.sample_size, seed=config.seed
                    )
                label = sample.column(label_column).to_float()

                selector = StreamingFeatureSelector(config, label)
                base_features = [
                    n for n in sample.column_names if n != label_column
                ]
                if base_features:
                    scored(
                        lambda: selector.seed_with(
                            base_features, sample.numeric_matrix(base_features)
                        ),
                        batch="seed",
                    )

                frontier.push(JoinPath(base_name), sample, ())
                while frontier:
                    if budget.exhausted(explored):
                        budget_exhausted = True
                        break
                    # One wave: the whole frontier level (BFS — level-
                    # synchronous draining reproduces serial pop order),
                    # or one popped entry's fan-out (DFS — serial fully
                    # fans an entry out before descending into its last
                    # child — and likewise the UCB priority frontier,
                    # whose arm statistics must advance before the next
                    # pop is chosen).
                    if frontier.strategy != "ucb" and config.traversal == "bfs":
                        entries = frontier.drain_level()
                    else:
                        entries = [frontier.pop()]

                    tasks: list[HopTask] = []
                    leftover: list = []
                    for position, entry in enumerate(entries):
                        path, current = entry.path, entry.table
                        path_features = entry.features
                        if path.length >= config.max_path_length:
                            continue
                        visited = set(path.nodes)
                        for neighbor in self.drg.neighbors(path.terminal):
                            if neighbor in visited:
                                continue
                            pruned_similarity += similarity_pruned_count(
                                self.drg, path.terminal, neighbor
                            )
                            for edge in self.drg.best_join_options(
                                path.terminal, neighbor
                            ):
                                # The serial per-hop budget check, at the
                                # identical canonical position — a
                                # max_hops run generates exactly serial's
                                # executed-hop prefix on every backend.
                                if budget.exhausted(explored):
                                    budget_exhausted = True
                                    break
                                explored += 1
                                plan = plan_hop_faults(
                                    injector,
                                    edge,
                                    attempts=attempts,
                                    base_name=base_name,
                                    path=path,
                                )
                                tasks.append(
                                    HopTask(
                                        index=len(tasks),
                                        path=path,
                                        edge=edge,
                                        table=current,
                                        base_name=base_name,
                                        features=path_features,
                                        plan=plan,
                                    )
                                )
                            if budget_exhausted:
                                break
                        if budget_exhausted:
                            # Level entries the cut never reached go back
                            # on the frontier so the unexplored count
                            # matches serial's (which only consumed the
                            # entry it stopped inside).
                            leftover = entries[position + 1 :]
                            break
                    for entry in leftover:
                        frontier.push(
                            entry.path, entry.table, entry.features, entry.reward
                        )
                    if not tasks:
                        if budget_exhausted:
                            break
                        continue
                    waves += 1
                    with tracer.span(
                        "wave",
                        parallel=True,
                        backend=executor.backend,
                        workers=executor.workers_used,
                        units=len(tasks),
                    ) as wave:
                        outcomes = executor.run_hops(tasks)
                        for task, outcome in zip(tasks, outcomes):
                            self._graft_worker_spans(
                                tracer, wave, outcome, executor.rebase_spans
                            )
                            if outcome.stats is not None:
                                engine.stats.absorb(outcome.stats)
                            if not outcome.dispatched:
                                # Injector exhausted every attempt at plan
                                # time; serial would never execute the join.
                                if fail_fast:
                                    raise task.plan.exception
                                faults.record(
                                    task.plan.exception,
                                    base=base_name,
                                    path=task.path,
                                    edge=task.edge,
                                    retries=task.plan.retries,
                                )
                                record_pull(task.edge.target, 0.0)
                                continue
                            hop = None
                            if outcome.error is None:
                                hop = (outcome.joined, outcome.contributed)
                            elif isinstance(outcome.error, RunBudgetExceeded):
                                # The deadline tripped inside a worker:
                                # graceful anytime exhaustion — the run
                                # stops after this wave's merge, and the
                                # aborted unit is neither a failure nor a
                                # pruned path.
                                budget_exhausted = True
                                continue
                            elif isinstance(outcome.error, FaultError):
                                if fail_fast:
                                    raise outcome.error
                                passed_at = (
                                    task.plan.passed_at
                                    if task.plan is not None
                                    else 0
                                )

                                def simulate(task=task):
                                    exc = simulate_injector_check(
                                        injector, task.edge
                                    )
                                    if exc is None:
                                        return None
                                    return type(exc)(
                                        f"{exc}; "
                                        f"{_hop_context(base_name, task.path, task.edge)}"
                                    )

                                def rerun(task=task):
                                    return engine.apply_hop(
                                        task.table,
                                        task.edge,
                                        base_name,
                                        path=task.path,
                                    )

                                try:
                                    hop, recorded = settle_managed_failure(
                                        attempts=attempts,
                                        passed_at=passed_at,
                                        first_exc=outcome.error,
                                        simulate=simulate,
                                        rerun=rerun,
                                        kinds=(FaultError,),
                                    )
                                except JoinError:
                                    pruned_quality += 1
                                    record_pull(task.edge.target, 0.0)
                                    continue
                                except RunBudgetExceeded:
                                    budget_exhausted = True
                                    continue
                                if recorded is not None:
                                    last, retries = recorded
                                    faults.record(
                                        last,
                                        base=base_name,
                                        path=task.path,
                                        edge=task.edge,
                                        retries=retries,
                                    )
                                    record_pull(task.edge.target, 0.0)
                                    continue
                            else:
                                # Ordinary JoinError: Algorithm 1's pruning
                                # input, identical handling to serial.
                                pruned_quality += 1
                                record_pull(task.edge.target, 0.0)
                                continue

                            joined, contributed = hop
                            comp = completeness(joined, contributed)
                            if not contributed:
                                empty_contribution += 1
                            elif comp < config.tau:
                                pruned_quality += 1
                                record_pull(task.edge.target, 0.0)
                                continue

                            join_key = qualified(
                                task.edge.target, task.edge.target_column
                            )
                            candidates = [
                                c for c in contributed if c != join_key
                            ]
                            outcome_batch = scored(
                                lambda: selector.process_batch(
                                    candidates, joined.numeric_matrix(candidates)
                                ),
                                features=len(candidates),
                            )
                            score = compute_ranking_score(
                                outcome_batch.relevance_scores,
                                outcome_batch.redundancy_scores,
                            )
                            reward = hop_reward(score, comp)
                            record_pull(task.edge.target, reward)
                            new_path = task.path.extend(task.edge)
                            new_features = (
                                task.features + outcome_batch.accepted_names
                            )
                            ranked.append(
                                RankedPath(
                                    path=new_path,
                                    score=score,
                                    selected_features=new_features,
                                    relevance_scores=outcome_batch.relevance_scores,
                                    redundancy_scores=outcome_batch.redundancy_scores,
                                    completeness=comp,
                                    relevant_names=outcome_batch.relevant_names,
                                )
                            )
                            frontier.push(
                                new_path, joined, new_features, reward
                            )
                    if budget_exhausted:
                        break
                if budget_exhausted:
                    tracer.event(
                        "budget_exhausted",
                        hops=explored,
                        frontier_unexplored=len(frontier),
                    )
        finally:
            executor.close()

        if tracer.enabled:
            discovery_seconds = root.seconds
            selection_seconds = tracer.total_seconds("selection")
        else:
            discovery_seconds = time.perf_counter() - started
            selection_seconds = fallback_selection

        ranked.sort(key=lambda r: (-r.score, r.path.length, r.path.describe()))
        engine_stats = engine.snapshot()
        selection_stats = selector.stats
        failure_report = faults.report()
        navigation = NavigationStats(
            strategy=frontier.strategy,
            budget_seconds=config.budget_seconds,
            max_hops=config.max_hops,
            hops_executed=explored,
            budget_exhausted=budget_exhausted,
            frontier_unexplored=len(frontier),
            best_score=ranked[0].score if ranked else 0.0,
            arms_tracked=frontier.policy.n_arms if frontier.policy else 0,
        )
        manifest = self._discovery_manifest(
            tracer,
            engine_stats,
            selection_stats,
            failure_report,
            discovery_seconds=discovery_seconds,
            selection_seconds=selection_seconds,
            counters={
                "discovery.paths_explored": explored,
                "discovery.paths_ranked": len(ranked),
                "discovery.pruned_quality": pruned_quality,
                "discovery.pruned_similarity": pruned_similarity,
                "discovery.hops_empty_contribution": empty_contribution,
                "discovery.waves": waves,
            },
            gauges=self._parallel_gauges(executor),
            navigation=navigation,
        )
        return DiscoveryResult(
            base_table=base_name,
            label_column=label_column,
            ranked_paths=tuple(ranked),
            n_paths_explored=explored,
            n_paths_pruned_quality=pruned_quality,
            n_joins_pruned_similarity=pruned_similarity,
            feature_selection_seconds=selection_seconds,
            discovery_seconds=discovery_seconds,
            engine_stats=engine_stats,
            selection_stats=selection_stats,
            n_hops_empty_contribution=empty_contribution,
            failure_report=failure_report,
            run_manifest=manifest,
            budget_exhausted=budget_exhausted,
            navigation=navigation,
        )

    @staticmethod
    def _parallel_gauges(executor: PathExecutor) -> dict:
        """The parallel-execution gauges a worker-pool run reports."""
        return {
            "parallel.workers_used": executor.workers_used,
            "parallel.speedup": round(executor.effective_speedup, 4),
            "parallel.busy_seconds": round(executor.busy_seconds, 6),
            "parallel.wall_seconds": round(executor.parallel_wall_seconds, 6),
        }

    def _discovery_manifest(
        self,
        tracer: Tracer,
        engine_stats,
        selection_stats,
        failure_report,
        discovery_seconds: float,
        selection_seconds: float,
        counters: dict[str, int],
        gauges: dict | None = None,
        navigation: NavigationStats | None = None,
    ):
        """Assemble the discovery-phase :class:`repro.obs.RunManifest`."""
        registry = MetricsRegistry()
        engine_stats.publish(registry)
        selection_stats.publish(registry)
        failure_report.publish(registry)
        for name, value in counters.items():
            registry.counter(name).inc(value)
        for name, value in (gauges or {}).items():
            registry.gauge(name).set(value)
        if navigation is not None:
            navigation.publish(registry)
        timing = None
        if not tracer.enabled:
            # Untraced runs still get a minimal two-node tree so stage
            # breakdowns are never missing.
            timing = flat_node(
                "discover",
                discovery_seconds,
                children=[flat_node("selection", selection_seconds)],
                traced=False,
            )
        return build_manifest(
            "discovery",
            tracer=tracer,
            registry=registry,
            config=self.config,
            dataset=self.drg,
            seed=self.config.seed,
            wall_seconds=discovery_seconds,
            timing=timing,
        )

    # -- training phase -----------------------------------------------------------

    def train_top_k(
        self,
        discovery: DiscoveryResult,
        model_name: str = "lightgbm",
        deadline: float | None = None,
    ) -> AugmentationResult:
        """Materialise and evaluate the top-k ranked paths; keep the best.

        Training uses the *full* base table (sampling only ever affected
        feature selection) and only the features accepted along each path,
        plus all base-table features.  The top-k paths often share hops, so
        materialisation runs through one cached :class:`JoinEngine`; its
        counters land on ``AugmentationResult.engine_stats``.

        Full-table materialisation can fail even though the sampled
        discovery pass succeeded (the sample may have dodged the rows that
        break a join).  Under ``skip_and_record`` /``retry`` such a path is
        recorded on ``AugmentationResult.failure_report`` and skipped, and
        the remaining top-k paths still train; ``fail_fast`` propagates.

        When tracing is on, the training phase runs under a ``train`` span
        tree (``train > path > evaluate``) that is composed with the
        discovery phase's tree into one ``augment`` manifest on
        ``AugmentationResult.run_manifest``.

        With ``config.parallel_backend`` set to ``"threads"`` or
        ``"processes"``, the top-k paths materialise and train on a
        worker pool and merge deterministically in ranked order; see
        :meth:`_train_parallel`.

        With an anytime deadline active (``config.budget_seconds``, or
        the explicit ``deadline`` that :meth:`augment` shares across
        both phases), training stops gracefully once it expires: the
        trained prefix of the top-k still competes and the result is
        returned with ``budget_exhausted`` set.  ``config.max_hops``
        applies to discovery only.
        """
        if self.config.parallel_backend != "serial":
            return self._train_parallel(discovery, model_name, deadline)
        return self._train_serial(discovery, model_name, deadline)

    def _train_serial(
        self,
        discovery: DiscoveryResult,
        model_name: str = "lightgbm",
        deadline: float | None = None,
    ) -> AugmentationResult:
        """The single-threaded reference training pass (parity baseline)."""
        started = time.perf_counter()
        config = self.config
        tracer = self._tracer()
        budget = RunBudget.start(config.budget_seconds, None, deadline=deadline)
        engine = self._engine(tracer, run_deadline=budget.deadline)
        faults = self._faults("training")
        base = self.drg.table(discovery.base_table)
        base_features = [
            n for n in base.column_names if n != discovery.label_column
        ]

        trained: list[TrainedPath] = []
        tables: list[Table] = []
        budget_exhausted = False
        with tracer.span(
            "train", base=discovery.base_table, model=model_name
        ) as root:
            for ranked in discovery.top(config.top_k):
                if budget.expired():
                    budget_exhausted = True
                    break
                with tracer.span("path", path=ranked.path.describe()):
                    try:
                        materialised = faults.execute(
                            lambda: engine.materialize_path(ranked.path, base),
                            base=discovery.base_table,
                            path=ranked.path,
                        )
                    except RunBudgetExceeded:
                        # Deadline landed mid-materialisation: the
                        # trained prefix still competes below.
                        budget_exhausted = True
                        break
                    if materialised is None:
                        continue
                    table, __ = materialised
                    features = base_features + [
                        f for f in ranked.selected_features if f in table
                    ]
                    with tracer.span(
                        "evaluate", model=model_name, features=len(features)
                    ):
                        acc = evaluate_accuracy(
                            table,
                            discovery.label_column,
                            model_name=model_name,
                            feature_names=features,
                            seed=config.seed,
                        )
                    trained.append(
                        TrainedPath(
                            ranked=ranked,
                            accuracy=acc,
                            n_features_used=len(features),
                        )
                    )
                    tables.append(table)

        best = None
        augmented = None
        if trained:
            best_idx = max(range(len(trained)), key=lambda i: trained[i].accuracy)
            best = trained[best_idx]
            keep = (
                base_features
                + [f for f in best.ranked.selected_features if f in tables[best_idx]]
                + [discovery.label_column]
            )
            augmented = tables[best_idx].select(keep)

        # Span-derived when traced, wall-clock fallback when not, so
        # there is a single timing source either way (satellite 1).
        if tracer.enabled:
            train_seconds = root.seconds
        else:
            train_seconds = time.perf_counter() - started
        total_seconds = discovery.discovery_seconds + train_seconds
        engine_stats = engine.snapshot()
        failure_report = faults.report()
        budget_exhausted = budget_exhausted or discovery.budget_exhausted
        manifest = self._augment_manifest(
            discovery,
            tracer,
            engine_stats,
            failure_report,
            train_seconds=train_seconds,
            total_seconds=total_seconds,
            n_trained=len(trained),
            best=best,
            budget_exhausted=budget_exhausted,
        )

        return AugmentationResult(
            discovery=discovery,
            trained=tuple(trained),
            best=best,
            augmented_table=augmented,
            model_name=model_name,
            total_seconds=total_seconds,
            engine_stats=engine_stats,
            failure_report=failure_report,
            run_manifest=manifest,
            budget_exhausted=budget_exhausted,
        )

    def _train_parallel(
        self,
        discovery: DiscoveryResult,
        model_name: str = "lightgbm",
        deadline: float | None = None,
    ) -> AugmentationResult:
        """Worker-pool top-k training with a deterministic merge.

        The top-k paths are independent work units (materialise + train),
        dispatched as one wave and merged back in ranked order: trained
        paths, failure records and the best-path tie-break (first index
        wins on equal accuracy) consume outcomes exactly as the serial
        loop would, so the result is bit-identical across backends.
        Injected faults are pre-resolved per path at task-generation time
        (the injector walks each path's edges in canonical order); a real
        materialisation failure on a dispatched unit continues the serial
        retry loop at the merge point.
        """
        started = time.perf_counter()
        config = self.config
        tracer = self._tracer()
        budget = RunBudget.start(config.budget_seconds, None, deadline=deadline)
        engine = self._engine(
            tracer, install_injector=False, run_deadline=budget.deadline
        )
        injector = self.fault_injector
        faults = self._faults("training")
        attempts = self._attempts()
        fail_fast = config.failure_policy == "fail_fast"
        base = self.drg.table(discovery.base_table)
        base_features = [
            n for n in base.column_names if n != discovery.label_column
        ]

        trained: list[TrainedPath] = []
        tables: list[Table] = []
        budget_exhausted = False
        executor = PathExecutor(
            engine,
            backend=config.parallel_backend,
            max_workers=config.max_workers,
            trace_spans=tracer.enabled,
        )
        try:
            with tracer.span(
                "train", base=discovery.base_table, model=model_name
            ) as root:
                top = list(discovery.top(config.top_k))
                if budget.expired():
                    # Nothing left to spend: return the anytime result
                    # with zero trained paths rather than dispatching a
                    # wave that would only abort inside the workers.
                    budget_exhausted = True
                    top = []
                tasks: list[PathTask] = []
                for i, ranked in enumerate(top):
                    plan = plan_path_faults(
                        injector,
                        ranked.path,
                        attempts=attempts,
                        base_name=discovery.base_table,
                    )
                    tasks.append(
                        PathTask(
                            index=i,
                            path=ranked.path,
                            selected_features=ranked.selected_features,
                            base_name=discovery.base_table,
                            label_column=discovery.label_column,
                            model_name=model_name,
                            seed=config.seed,
                            plan=plan,
                        )
                    )
                if tasks:
                    with tracer.span(
                        "wave",
                        parallel=True,
                        backend=executor.backend,
                        workers=executor.workers_used,
                        units=len(tasks),
                    ) as wave:
                        outcomes = executor.run_paths(tasks)
                        for task, ranked, outcome in zip(tasks, top, outcomes):
                            self._graft_worker_spans(
                                tracer, wave, outcome, executor.rebase_spans
                            )
                            if outcome.stats is not None:
                                engine.stats.absorb(outcome.stats)
                            if not outcome.dispatched:
                                if fail_fast:
                                    raise task.plan.exception
                                faults.record(
                                    task.plan.exception,
                                    base=discovery.base_table,
                                    path=task.path,
                                    retries=task.plan.retries,
                                )
                                continue
                            if isinstance(outcome.error, RunBudgetExceeded):
                                # Deadline tripped inside this unit's
                                # worker: graceful exhaustion, not a
                                # training failure — the remaining
                                # outcomes (already computed) still merge.
                                budget_exhausted = True
                                continue
                            if outcome.error is not None:
                                if fail_fast:
                                    raise outcome.error
                                passed_at = (
                                    task.plan.passed_at
                                    if task.plan is not None
                                    else 0
                                )

                                def simulate(task=task):
                                    return walk_injected_faults(
                                        injector, task.path, discovery.base_table
                                    )

                                def rerun(task=task):
                                    table, __ = engine.materialize_path(
                                        task.path, base
                                    )
                                    features = base_features + [
                                        f
                                        for f in task.selected_features
                                        if f in table
                                    ]
                                    acc = evaluate_accuracy(
                                        table,
                                        discovery.label_column,
                                        model_name=model_name,
                                        feature_names=features,
                                        seed=config.seed,
                                    )
                                    return table, acc, len(features)

                                try:
                                    result, recorded = settle_managed_failure(
                                        attempts=attempts,
                                        passed_at=passed_at,
                                        first_exc=outcome.error,
                                        simulate=simulate,
                                        rerun=rerun,
                                        kinds=(JoinError, FaultError),
                                    )
                                except RunBudgetExceeded:
                                    budget_exhausted = True
                                    continue
                                if recorded is not None:
                                    last, retries = recorded
                                    faults.record(
                                        last,
                                        base=discovery.base_table,
                                        path=task.path,
                                        retries=retries,
                                    )
                                    continue
                                table, acc, n_features = result
                            else:
                                table = outcome.table
                                acc = outcome.accuracy
                                n_features = outcome.n_features_used
                            trained.append(
                                TrainedPath(
                                    ranked=ranked,
                                    accuracy=acc,
                                    n_features_used=n_features,
                                )
                            )
                            tables.append(table)
        finally:
            executor.close()

        best = None
        augmented = None
        if trained:
            best_idx = max(
                range(len(trained)), key=lambda i: trained[i].accuracy
            )
            best = trained[best_idx]
            keep = (
                base_features
                + [
                    f
                    for f in best.ranked.selected_features
                    if f in tables[best_idx]
                ]
                + [discovery.label_column]
            )
            augmented = tables[best_idx].select(keep)

        if tracer.enabled:
            train_seconds = root.seconds
        else:
            train_seconds = time.perf_counter() - started
        total_seconds = discovery.discovery_seconds + train_seconds
        engine_stats = engine.snapshot()
        failure_report = faults.report()
        budget_exhausted = budget_exhausted or discovery.budget_exhausted
        manifest = self._augment_manifest(
            discovery,
            tracer,
            engine_stats,
            failure_report,
            train_seconds=train_seconds,
            total_seconds=total_seconds,
            n_trained=len(trained),
            best=best,
            gauges=self._parallel_gauges(executor),
            budget_exhausted=budget_exhausted,
        )

        return AugmentationResult(
            discovery=discovery,
            trained=tuple(trained),
            best=best,
            augmented_table=augmented,
            model_name=model_name,
            total_seconds=total_seconds,
            engine_stats=engine_stats,
            failure_report=failure_report,
            run_manifest=manifest,
            budget_exhausted=budget_exhausted,
        )

    def _augment_manifest(
        self,
        discovery: DiscoveryResult,
        tracer: Tracer,
        engine_stats,
        failure_report,
        train_seconds: float,
        total_seconds: float,
        n_trained: int,
        best,
        gauges: dict | None = None,
        budget_exhausted: bool = False,
    ):
        """Compose discovery + training into one ``augment`` manifest."""
        registry = MetricsRegistry()
        discovery.engine_stats.merged(engine_stats).publish(registry)
        discovery.selection_stats.publish(registry)
        discovery.failure_report.merged(failure_report).publish(registry)
        registry.counter("train.paths_trained").inc(n_trained)
        if best is not None:
            registry.gauge("train.best_accuracy").set(round(best.accuracy, 6))
        for name, value in (gauges or {}).items():
            registry.gauge(name).set(value)
        discovery.navigation.publish(registry)
        registry.gauge("navigation.budget_exhausted").set(
            1 if budget_exhausted else 0
        )

        if tracer.enabled:
            train_tree = tracer.timing_tree()
        else:
            train_tree = flat_node("train", train_seconds, traced=False)
        discovery_tree = (
            discovery.run_manifest.timing
            if discovery.run_manifest is not None
            else flat_node("discover", discovery.discovery_seconds, traced=False)
        )
        timing = synthetic_root("augment", [discovery_tree, train_tree])
        return build_manifest(
            "augment",
            registry=registry,
            config=self.config,
            dataset=self.drg,
            seed=self.config.seed,
            wall_seconds=total_seconds,
            timing=timing,
        )

    def augment(
        self,
        base_name: str,
        label_column: str,
        model_name: str = "lightgbm",
        deadline: float | None = None,
    ) -> AugmentationResult:
        """Full pipeline: discover, rank, train top-k, return the best.

        ``config.budget_seconds`` (or an explicit ``deadline``) is one
        budget for the *whole* pipeline: the deadline is computed once
        here and shared by both phases, so a discovery phase that uses
        most of it leaves only the remainder for training.
        """
        if deadline is None:
            deadline = RunBudget.compute_deadline(self.config.budget_seconds)
        discovery = self.discover(base_name, label_column, deadline=deadline)
        return self.train_top_k(discovery, model_name=model_name, deadline=deadline)


def autofeat_augment(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    config: AutoFeatConfig | None = None,
    model_name: str = "lightgbm",
    fault_injector: FaultInjector | None = None,
) -> AugmentationResult:
    """One-call convenience wrapper around :class:`AutoFeat`."""
    return AutoFeat(drg, config, fault_injector=fault_injector).augment(
        base_name, label_column, model_name
    )
