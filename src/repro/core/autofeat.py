"""AutoFeat — ranking-based transitive feature discovery (Algorithm 1).

The online component of the paper: starting from the base table, traverse
the Dataset Relation Graph breadth-first; at every hop, join, prune on
similarity score and data quality, push the new features through streaming
relevance/redundancy selection, and score the path (Algorithm 2).  The
top-k ranked paths are then materialised in full and evaluated by training
the target model, and the most accurate path wins.

Typical use::

    drg = DatasetRelationGraph.from_discovery(tables, ComaMatcher())
    autofeat = AutoFeat(drg, AutoFeatConfig(tau=0.65, kappa=15))
    result = autofeat.augment("applicants", "loan_approval")
    print(result.summary())
"""

from __future__ import annotations

import time
from collections import deque

from ..dataframe import Table, stratified_sample
from ..engine import FaultInjector, FaultManager, JoinEngine
from ..errors import FaultError, JoinError
from ..graph import DatasetRelationGraph, JoinPath
from ..ml import evaluate_accuracy
from .config import AutoFeatConfig
from .materialize import qualified
from .pruning import completeness, similarity_pruned_count
from .ranking import compute_ranking_score
from .result import AugmentationResult, DiscoveryResult, RankedPath, TrainedPath
from .streaming import StreamingFeatureSelector

__all__ = ["AutoFeat", "autofeat_augment"]


class AutoFeat:
    """Feature discovery over a Dataset Relation Graph.

    ``fault_injector`` installs a deterministic
    :class:`~repro.engine.FaultInjector` on every engine the pipeline
    creates, so graceful degradation under ``config.failure_policy`` is
    testable end to end.
    """

    def __init__(
        self,
        drg: DatasetRelationGraph,
        config: AutoFeatConfig | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.drg = drg
        self.config = config or AutoFeatConfig()
        self.fault_injector = fault_injector

    def _engine(self) -> JoinEngine:
        """One per-run engine carrying the config's hop budgets."""
        config = self.config
        return JoinEngine(
            self.drg,
            seed=config.seed,
            enable_cache=config.enable_hop_cache,
            hop_timeout_seconds=config.hop_timeout_seconds,
            max_output_rows=config.max_hop_output_rows,
            fault_injector=self.fault_injector,
        )

    def _faults(self, stage: str) -> FaultManager:
        """One per-run fault manager applying the config's policy."""
        config = self.config
        return FaultManager(
            policy=config.failure_policy,
            error_budget=config.error_budget,
            max_retries=config.max_retries,
            stage=stage,
        )

    # -- discovery (ranking) phase ---------------------------------------------

    def discover(self, base_name: str, label_column: str) -> DiscoveryResult:
        """Rank all surviving join paths from ``base_name``.

        Runs entirely on a stratified sample of the base table; no ML model
        is trained.  Returns paths sorted by ranking score (descending).

        All hops execute through one :class:`JoinEngine`, so a right-hand
        table reached by many paths is deduped and indexed only once per
        run (when ``config.enable_hop_cache`` is on); the engine's counters
        are returned on ``DiscoveryResult.engine_stats``.  Feature scoring
        likewise runs through one :class:`StreamingFeatureSelector` whose
        vectorised kernels and persistent code cache
        (``config.enable_selection_kernels``) amortise discretisation and
        ranking across all hops; its counters are returned on
        ``DiscoveryResult.selection_stats``.
        """
        config = self.config
        started = time.perf_counter()
        engine = self._engine()
        faults = self._faults("discovery")

        base = self.drg.table(base_name)
        if label_column not in base:
            raise JoinError(
                f"base table {base_name!r} has no label column {label_column!r}"
            )
        sample = stratified_sample(
            base, label_column, config.sample_size, seed=config.seed
        )
        label = sample.column(label_column).to_float()

        selector = StreamingFeatureSelector(config, label)
        selection_seconds = 0.0
        base_features = [n for n in sample.column_names if n != label_column]
        if base_features:
            scoring_started = time.perf_counter()
            selector.seed_with(base_features, sample.numeric_matrix(base_features))
            selection_seconds += time.perf_counter() - scoring_started

        ranked: list[RankedPath] = []
        explored = 0
        pruned_quality = 0
        pruned_similarity = 0
        empty_contribution = 0

        # Each frontier entry carries the partially-joined sample and the
        # qualified features accepted along the path so far.
        frontier: deque[tuple[JoinPath, Table, tuple[str, ...]]] = deque(
            [(JoinPath(base_name), sample, ())]
        )
        while frontier:
            # BFS pops the oldest path (level order); the DFS ablation pops
            # the newest, diving deep before finishing a level.
            if config.traversal == "bfs":
                path, current, path_features = frontier.popleft()
            else:
                path, current, path_features = frontier.pop()
            if path.length >= config.max_path_length:
                continue
            visited = set(path.nodes)
            for neighbor in self.drg.neighbors(path.terminal):
                if neighbor in visited:
                    continue
                pruned_similarity += similarity_pruned_count(
                    self.drg, path.terminal, neighbor
                )
                for edge in self.drg.best_join_options(path.terminal, neighbor):
                    explored += 1
                    # Ordinary JoinError is Algorithm 1's pruning input and
                    # is handled below under every policy; only the fault
                    # family (budgets, injected faults) goes through the
                    # failure policy — fail_fast propagates it, the other
                    # policies record the hop and skip it.
                    try:
                        hop = faults.execute(
                            lambda: engine.apply_hop(
                                current, edge, base_name, path=path
                            ),
                            base=base_name,
                            path=path,
                            edge=edge,
                            kinds=(FaultError,),
                        )
                    except JoinError:
                        pruned_quality += 1
                        continue
                    if hop is None:
                        continue
                    joined, contributed = hop
                    comp = completeness(joined, contributed)
                    if not contributed:
                        # A hop may contribute no columns at all; that is
                        # not poor join quality — keep it traversable (see
                        # the stepping-stone note below) and count it.
                        empty_contribution += 1
                    elif comp < config.tau:
                        pruned_quality += 1
                        continue

                    join_key = qualified(edge.target, edge.target_column)
                    candidates = [c for c in contributed if c != join_key]
                    scoring_started = time.perf_counter()
                    outcome = selector.process_batch(
                        candidates, joined.numeric_matrix(candidates)
                    )
                    selection_seconds += time.perf_counter() - scoring_started
                    score = compute_ranking_score(
                        outcome.relevance_scores, outcome.redundancy_scores
                    )
                    new_path = path.extend(edge)
                    new_features = path_features + outcome.accepted_names
                    ranked.append(
                        RankedPath(
                            path=new_path,
                            score=score,
                            selected_features=new_features,
                            relevance_scores=outcome.relevance_scores,
                            redundancy_scores=outcome.redundancy_scores,
                            completeness=comp,
                            relevant_names=outcome.relevant_names,
                        )
                    )
                    # Even an all-irrelevant join stays in the frontier: it
                    # may be the gateway to a relevant transitive table.
                    frontier.append((new_path, joined, new_features))

        ranked.sort(key=lambda r: (-r.score, r.path.length, r.path.describe()))
        return DiscoveryResult(
            base_table=base_name,
            label_column=label_column,
            ranked_paths=tuple(ranked),
            n_paths_explored=explored,
            n_paths_pruned_quality=pruned_quality,
            n_joins_pruned_similarity=pruned_similarity,
            feature_selection_seconds=selection_seconds,
            discovery_seconds=time.perf_counter() - started,
            engine_stats=engine.snapshot(),
            selection_stats=selector.stats,
            n_hops_empty_contribution=empty_contribution,
            failure_report=faults.report(),
        )

    # -- training phase -----------------------------------------------------------

    def train_top_k(
        self,
        discovery: DiscoveryResult,
        model_name: str = "lightgbm",
    ) -> AugmentationResult:
        """Materialise and evaluate the top-k ranked paths; keep the best.

        Training uses the *full* base table (sampling only ever affected
        feature selection) and only the features accepted along each path,
        plus all base-table features.  The top-k paths often share hops, so
        materialisation runs through one cached :class:`JoinEngine`; its
        counters land on ``AugmentationResult.engine_stats``.

        Full-table materialisation can fail even though the sampled
        discovery pass succeeded (the sample may have dodged the rows that
        break a join).  Under ``skip_and_record`` /``retry`` such a path is
        recorded on ``AugmentationResult.failure_report`` and skipped, and
        the remaining top-k paths still train; ``fail_fast`` propagates.
        """
        started = time.perf_counter()
        config = self.config
        engine = self._engine()
        faults = self._faults("training")
        base = self.drg.table(discovery.base_table)
        base_features = [
            n for n in base.column_names if n != discovery.label_column
        ]

        trained: list[TrainedPath] = []
        tables: list[Table] = []
        for ranked in discovery.top(config.top_k):
            materialised = faults.execute(
                lambda: engine.materialize_path(ranked.path, base),
                base=discovery.base_table,
                path=ranked.path,
            )
            if materialised is None:
                continue
            table, __ = materialised
            features = base_features + [
                f for f in ranked.selected_features if f in table
            ]
            acc = evaluate_accuracy(
                table,
                discovery.label_column,
                model_name=model_name,
                feature_names=features,
                seed=config.seed,
            )
            trained.append(
                TrainedPath(
                    ranked=ranked, accuracy=acc, n_features_used=len(features)
                )
            )
            tables.append(table)

        best = None
        augmented = None
        if trained:
            best_idx = max(range(len(trained)), key=lambda i: trained[i].accuracy)
            best = trained[best_idx]
            keep = (
                base_features
                + [f for f in best.ranked.selected_features if f in tables[best_idx]]
                + [discovery.label_column]
            )
            augmented = tables[best_idx].select(keep)

        return AugmentationResult(
            discovery=discovery,
            trained=tuple(trained),
            best=best,
            augmented_table=augmented,
            model_name=model_name,
            total_seconds=discovery.discovery_seconds
            + (time.perf_counter() - started),
            engine_stats=engine.snapshot(),
            failure_report=faults.report(),
        )

    def augment(
        self,
        base_name: str,
        label_column: str,
        model_name: str = "lightgbm",
    ) -> AugmentationResult:
        """Full pipeline: discover, rank, train top-k, return the best."""
        discovery = self.discover(base_name, label_column)
        return self.train_top_k(discovery, model_name=model_name)


def autofeat_augment(
    drg: DatasetRelationGraph,
    base_name: str,
    label_column: str,
    config: AutoFeatConfig | None = None,
    model_name: str = "lightgbm",
    fault_injector: FaultInjector | None = None,
) -> AugmentationResult:
    """One-call convenience wrapper around :class:`AutoFeat`."""
    return AutoFeat(drg, config, fault_injector=fault_injector).augment(
        base_name, label_column, model_name
    )
