"""Selection micro-benchmark: discovery with the scoring kernels on vs off.

For each lake, runs ``AutoFeat.discover`` with
``enable_selection_kernels=True`` and ``False`` and reports the
feature-selection wall time plus the selector's counters.  Two properties
are verified and recorded:

* **parity** — the ranked paths (descriptions, scores, selected features
  and the per-path relevance/redundancy score tuples) are bit-identical
  with the kernels on and off — the kernels are an exact A/B switch, not
  an approximation;
* **reuse** — with the kernels on, the persistent code cache serves the
  selected set's discretised codes to the redundancy stage instead of
  re-binning them on every hop (``codes_reused`` > 0).

The data-lake setting is used for the same reason as the engine-cache
bench: its dense rediscovered multigraph yields many surviving hops, so
the selected set — and with it the scalar path's per-hop re-binning cost —
keeps growing over the traversal.

Usage::

    PYTHONPATH=src python benchmarks/bench_selection_kernels.py [--smoke]

Writes a JSON summary to ``BENCH_selection_kernels.json`` at the repo root
and exits non-zero if parity is violated, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _util import assert_no_failures, write_summary

from repro.core import AutoFeat, AutoFeatConfig
from repro.datasets import build_dataset, datalake_drg

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_selection_kernels.json"

#: (dataset, sample_size) per mode; covertype's wide satellites make the
#: relevance/redundancy stages the dominant cost (paper Figure 3).
SMOKE_LAKES = [("covertype", 300)]
FULL_LAKES = [("credit", 500), ("covertype", 1000)]

#: Timing runs per configuration in full mode (best-of); parity is checked
#: on every run.
FULL_REPEATS = 3


def ranking_fingerprint(discovery):
    return [
        (
            r.path.describe(),
            r.score,
            r.selected_features,
            r.relevance_scores,
            r.redundancy_scores,
        )
        for r in discovery.ranked_paths
    ]


def bench_lake(name: str, sample_size: int, repeats: int) -> tuple[dict, list]:
    bundle = build_dataset(name)
    drg = datalake_drg(bundle)
    runs = {}
    fingerprints = {}
    manifests = []
    for kernels in (True, False):
        config = AutoFeatConfig(
            sample_size=sample_size, enable_selection_kernels=kernels, seed=0
        )
        autofeat = AutoFeat(drg, config)
        best_seconds = None
        discovery = None
        for __ in range(repeats):
            discovery = autofeat.discover(bundle.base_name, bundle.label_column)
            assert_no_failures(discovery)
            seconds = discovery.feature_selection_seconds
            if best_seconds is None or seconds < best_seconds:
                best_seconds = seconds
            key = "kernels_on" if kernels else "kernels_off"
            fingerprint = ranking_fingerprint(discovery)
            if key in fingerprints and fingerprints[key] != fingerprint:
                print(
                    f"ERROR: {name} non-deterministic across repeats", file=sys.stderr
                )
                fingerprints[key] = None
            else:
                fingerprints.setdefault(key, fingerprint)
        manifests.append(discovery.run_manifest)
        runs[key] = {
            "feature_selection_seconds": round(best_seconds, 4),
            "n_paths_ranked": len(discovery.ranked_paths),
            **discovery.selection_stats.as_dict(),
            "stages": {
                stage: round(s, 4)
                for stage, s in discovery.run_manifest.stage_seconds().items()
            },
        }
    on, off = runs["kernels_on"], runs["kernels_off"]
    return {
        "dataset": name,
        "sample_size": sample_size,
        "kernels_on": on,
        "kernels_off": off,
        "identical_rankings": (
            fingerprints["kernels_on"] is not None
            and fingerprints["kernels_on"] == fingerprints["kernels_off"]
        ),
        "codes_reused": on["codes_reused"],
        "speedup": round(
            off["feature_selection_seconds"]
            / max(on["feature_selection_seconds"], 1e-9),
            3,
        ),
    }, manifests


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small lake; the fast configuration scripts/check.sh runs",
    )
    args = parser.parse_args(argv)

    lakes = SMOKE_LAKES if args.smoke else FULL_LAKES
    repeats = 1 if args.smoke else FULL_REPEATS
    results = []
    manifests = []
    for name, sample in lakes:
        result, run_manifests = bench_lake(name, sample, repeats)
        results.append(result)
        manifests.extend(run_manifests)
    summary = {
        "benchmark": "selection_kernels",
        "mode": "smoke" if args.smoke else "full",
        "lakes": results,
        "all_rankings_identical": all(r["identical_rankings"] for r in results),
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    for r in results:
        on, off = r["kernels_on"], r["kernels_off"]
        print(
            f"{r['dataset']:<12} features={on['features_ranked']:<5} "
            f"codes cached {on['codes_cached']} / reused {on['codes_reused']} "
            f"fallbacks {on['scalar_fallbacks']} "
            f"fs time {off['feature_selection_seconds']:.3f}s -> "
            f"{on['feature_selection_seconds']:.3f}s ({r['speedup']:.2f}x) "
            f"parity={'ok' if r['identical_rankings'] else 'BROKEN'}"
        )
    print(f"summary -> {SUMMARY_PATH}")

    if not summary["all_rankings_identical"]:
        print(
            "ERROR: kernels-on and kernels-off discovery disagree", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
