"""Equation 3 — the factorial explosion of JoinAll orderings."""

from math import factorial

from _util import emit, run_once

from repro.bench import format_table, joinall_explosion


def test_eq3_joinall_explosion(benchmark):
    rows = run_once(benchmark, joinall_explosion)
    emit(
        "eq3_joinall",
        format_table(rows, title="Equation 3: JoinAll ordering counts"),
    )
    by_key = {(r["dataset"], r["setting"]): r for r in rows}
    # school is near-star with 16 satellites: orderings reach the
    # "did not finish" regime the paper reports (15! for their split).
    assert by_key[("school", "benchmark")]["joinall_orderings"] >= factorial(10)
    # credit's small snowflake stays tractable.
    assert by_key[("credit", "benchmark")]["joinall_orderings"] < 10_000
