"""Micro-benchmarks of the substrates (real repeated-timing benchmarks).

Not a paper artefact: these keep the performance of the building blocks —
hash join, relevance scoring, boosting, schema matching — visible so
regressions in the substrates don't silently masquerade as algorithm
slowdowns in the figure benchmarks.
"""

import numpy as np

from repro.dataframe import Table, left_join
from repro.discovery import ComaMatcher
from repro.ml import LightGBMClassifier
from repro.selection import redundancy_scores, relevance_scores

RNG = np.random.default_rng(0)
N = 5000

LEFT = Table(
    {"id": np.arange(N), "x": RNG.normal(size=N)}, name="left"
)
RIGHT = Table(
    {"id": RNG.permutation(N), "y": RNG.normal(size=N)}, name="right"
)
X = RNG.normal(size=(2000, 30))
Y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)


def test_left_join_throughput(benchmark):
    result = benchmark(lambda: left_join(LEFT, RIGHT, "id", "id"))
    assert result.n_rows == N


def test_spearman_scoring_throughput(benchmark):
    scores = benchmark(lambda: relevance_scores(X, Y, metric="spearman"))
    assert scores.shape == (30,)


def test_mrmr_scoring_throughput(benchmark):
    selected = X[:, :5]
    scores = benchmark(
        lambda: redundancy_scores(X[:, 5:15], selected, Y, method="mrmr")
    )
    assert scores.shape == (10,)


def test_lightgbm_fit_throughput(benchmark):
    def fit():
        return LightGBMClassifier(n_estimators=20).fit(X, Y.astype(int))

    model = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert np.mean(model.predict(X) == Y) > 0.8


def test_coma_match_throughput(benchmark):
    a = Table({"key": np.arange(1000), "v": RNG.normal(size=1000)}, name="a")
    b = Table({"key": np.arange(1000), "w": RNG.normal(size=1000)}, name="b")

    def match():
        return ComaMatcher().match(a, b)  # fresh matcher: no profile cache

    matches = benchmark(match)
    assert matches
