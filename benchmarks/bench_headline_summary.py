"""Section VII headline — speedups and accuracy deltas vs the baselines."""

from _util import emit, run_once

from repro.bench import (
    BenchProfile,
    compare_methods,
    format_table,
    headline_summary,
)


def test_headline_summary(benchmark):
    profile = BenchProfile.from_env()

    def run():
        rows = compare_methods(profile, "benchmark")
        rows += compare_methods(profile, "datalake")
        return rows, headline_summary(rows)

    rows, summary = run_once(benchmark, run)
    emit(
        "headline_summary",
        format_table(
            summary,
            title="Headline: per-method means, AutoFeat speedup and accuracy delta",
        ),
    )
    by_method = {r["method"]: r for r in summary}
    # Paper headline shape: AutoFeat's selection is multiples faster than
    # the model-in-the-loop baselines and at least as accurate on average.
    assert by_method["ARDA"]["autofeat_speedup"] > 3
    assert by_method["MAB"]["autofeat_speedup"] > 3
    assert by_method["BASE"]["autofeat_acc_delta"] > 0.05
