"""Figure 8 — sensitivity to the hyper-parameters kappa and tau."""

from _util import emit, run_once

from repro.bench import fig8_kappa_sensitivity, fig8_tau_sensitivity, format_table


def test_fig8a_kappa_sensitivity(benchmark):
    rows = run_once(benchmark, fig8_kappa_sensitivity)
    emit(
        "fig8a_kappa",
        format_table(rows, title="Figure 8a: sensitivity to kappa"),
    )
    # Paper shape: accuracy is non-decreasing-ish in kappa; the knee means
    # large kappa never *hurts* much relative to tiny kappa.
    assert rows[-1]["mean_accuracy"] >= rows[0]["mean_accuracy"] - 0.02


def test_fig8bcd_tau_sensitivity(benchmark):
    rows = run_once(benchmark, fig8_tau_sensitivity)
    emit(
        "fig8bcd_tau",
        format_table(rows, title="Figure 8b-d: sensitivity to tau (per dataset)"),
    )
    # Paper shape: at tau = 1 the low-match-rate school lake yields no
    # surviving paths (accuracy collapses to the no-augmentation outcome).
    school_tau1 = [r for r in rows if r["dataset"] == "school" and r["tau"] == 1.0]
    school_mid = [r for r in rows if r["dataset"] == "school" and r["tau"] == 0.65]
    assert school_tau1 and school_mid
    assert school_tau1[0]["accuracy"] <= school_mid[0]["accuracy"]
