"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one paper artefact, prints the rows and also
persists them under ``benchmarks/results/`` so the output survives
pytest's output capture (EXPERIMENTS.md is written from these files).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def assert_no_failures(*results) -> None:
    """Fail loudly when a benchmark run degraded instead of completing.

    Under the default ``skip_and_record`` policy a run that hits join
    failures still returns — with paths silently missing from its numbers.
    Benchmark figures must come from complete runs, so every result's
    ``failure_report`` (and, for AutoFeat results, the discovery-phase
    report underneath) must be empty.
    """
    for result in results:
        if result is None:
            continue
        reports = []
        report = getattr(result, "failure_report", None)
        if report is not None:
            reports.append(report)
        discovery = getattr(result, "discovery", None)
        if discovery is not None:
            inner = getattr(discovery, "failure_report", None)
            if inner is not None:
                reports.append(inner)
        for report in reports:
            if not report.ok:
                raise AssertionError(
                    f"benchmark run recorded failures: {report.describe()}"
                )


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    These experiments take seconds to minutes; repeated rounds would add
    nothing but wall-clock, so every figure benchmark is pedantic(1, 1).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
