"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one paper artefact, prints the rows and also
persists them under ``benchmarks/results/`` so the output survives
pytest's output capture (EXPERIMENTS.md is written from these files).
Every ``BENCH_*.json`` summary also embeds the run manifests of the runs
behind its figures, so a summary certifies *how* its numbers were
produced (config, seed, dataset fingerprint, per-stage timings).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import validate_manifest

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def _check_manifest(manifest) -> None:
    """Refuse a figure whose run manifest is missing or broken.

    A ``BENCH_*.json`` row without per-stage timings — or with a negative
    one — means the observability layer was bypassed or mis-assembled;
    figures must not be published from such runs.
    """
    if manifest is None:
        raise AssertionError(
            "benchmark run carries no run_manifest; figures must record "
            "per-stage timings"
        )
    errors = validate_manifest(manifest.as_dict())
    if errors:
        raise AssertionError(
            f"benchmark run manifest is invalid: {'; '.join(errors)}"
        )
    stages = manifest.stage_seconds()
    if not stages:
        raise AssertionError("benchmark run manifest has no stage timings")
    negative = {name: s for name, s in stages.items() if s < 0}
    if negative:
        raise AssertionError(
            f"benchmark run manifest has negative stage timings: {negative}"
        )


def assert_no_failures(*results) -> None:
    """Fail loudly when a benchmark run degraded instead of completing.

    Under the default ``skip_and_record`` policy a run that hits join
    failures still returns — with paths silently missing from its numbers.
    Benchmark figures must come from complete runs, so every result's
    ``failure_report`` (and, for AutoFeat results, the discovery-phase
    report underneath) must be empty.  Results that carry a
    ``run_manifest`` must additionally carry valid, non-negative per-stage
    timings in it.
    """
    for result in results:
        if result is None:
            continue
        reports = []
        report = getattr(result, "failure_report", None)
        if report is not None:
            reports.append(report)
        discovery = getattr(result, "discovery", None)
        if discovery is not None:
            inner = getattr(discovery, "failure_report", None)
            if inner is not None:
                reports.append(inner)
        for report in reports:
            if not report.ok:
                raise AssertionError(
                    f"benchmark run recorded failures: {report.describe()}"
                )
        if hasattr(result, "run_manifest"):
            _check_manifest(result.run_manifest)


def write_summary(path: Path, summary: dict, manifests=()) -> None:
    """Write one ``BENCH_*.json`` with the runs' manifests embedded.

    Every manifest is re-validated on the way out, so a summary file with
    missing or negative stage timings can never be produced.
    """
    manifests = [m for m in manifests if m is not None]
    for manifest in manifests:
        _check_manifest(manifest)
    summary = dict(summary)
    summary["run_manifests"] = [m.as_dict() for m in manifests]
    path.write_text(json.dumps(summary, indent=2) + "\n")


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    These experiments take seconds to minutes; repeated rounds would add
    nothing but wall-clock, so every figure benchmark is pedantic(1, 1).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
