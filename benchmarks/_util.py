"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one paper artefact, prints the rows and also
persists them under ``benchmarks/results/`` so the output survives
pytest's output capture (EXPERIMENTS.md is written from these files).
Every ``BENCH_*.json`` summary also embeds the run manifests of the runs
behind its figures, so a summary certifies *how* its numbers were
produced (config, seed, dataset fingerprint, per-stage timings).

The manifest/summary gates themselves live in
:mod:`repro.bench.manifests` (shared with the harness and the experiment
store); this module re-exports them for the ``bench_*`` scripts plus the
benchmark-only output helpers.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.manifests import (  # noqa: F401  (re-exported for bench_* scripts)
    assert_no_failures,
    manifest_problems,
    require_valid_manifest,
    write_summary,
)

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it to benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    These experiments take seconds to minutes; repeated rounds would add
    nothing but wall-clock, so every figure benchmark is pedantic(1, 1).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
