"""Extension ablation — batch two-stage pipeline vs fully-online selectors.

The paper's future work asks for "more complex feature selection
strategies"; this bench compares AutoFeat's Spearman+MRMR batch pipeline
with two classic online selectors (alpha-investing, fast-OSFS) on a
feature stream.
"""

from _util import emit, run_once

from repro.bench import format_table, streaming_selector_comparison


def test_streaming_selector_comparison(benchmark):
    rows = run_once(benchmark, streaming_selector_comparison)
    emit(
        "streaming_selectors",
        format_table(rows, title="Streaming selector comparison"),
    )
    by_strategy = {}
    for row in rows:
        by_strategy.setdefault(row["strategy"], []).append(row)
    mean = lambda vals, key: sum(r[key] for r in vals) / len(vals)
    # Every strategy keeps a usable feature set, and the AutoFeat pipeline
    # stays competitive with the online selectors in accuracy.
    for strategy, rows_of in by_strategy.items():
        assert all(r["n_selected"] >= 1 for r in rows_of), strategy
    autofeat_acc = mean(by_strategy["two-stage (AutoFeat)"], "accuracy")
    best = max(mean(v, "accuracy") for v in by_strategy.values())
    assert autofeat_acc >= best - 0.08
