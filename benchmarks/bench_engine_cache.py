"""Engine micro-benchmark: discovery with the hop cache on vs off.

For each lake, runs ``AutoFeat.discover`` twice — ``enable_hop_cache=True``
and ``False`` — and reports wall time plus the engine's build/probe/cache
counters.  Two properties are verified and recorded:

* **parity** — the ranked paths (descriptions, scores, selected features)
  are bit-identical with the cache on and off;
* **reuse** — with the cache on, index builds are strictly fewer than the
  frontier hops executed (cache hit rate > 0) on non-tree lakes.

The data-lake setting (COMA-rediscovered edges, Section VII-C2) is used
because its dense multigraph is where cross-path reuse actually occurs; a
pure snowflake reaches every table along exactly one path.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_cache.py [--smoke]

Writes a JSON summary to ``BENCH_engine_cache.json`` at the repo root and
exits non-zero if parity is violated, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from _util import assert_no_failures, write_summary

from repro.core import AutoFeat, AutoFeatConfig
from repro.datasets import build_dataset, datalake_drg

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_engine_cache.json"

#: (dataset, sample_size) per mode; covertype's 12 satellites under the
#: noisy rediscovered multigraph produce heavy cross-path table reuse.
SMOKE_LAKES = [("covertype", 300)]
FULL_LAKES = [("credit", 500), ("covertype", 1000), ("jannis", 1000)]


def ranking_fingerprint(discovery):
    return [
        (r.path.describe(), r.score, r.selected_features)
        for r in discovery.ranked_paths
    ]


def bench_lake(name: str, sample_size: int) -> tuple[dict, list]:
    bundle = build_dataset(name)
    drg = datalake_drg(bundle)
    runs = {}
    fingerprints = {}
    manifests = []
    for cached in (True, False):
        config = AutoFeatConfig(
            sample_size=sample_size, enable_hop_cache=cached, seed=0
        )
        autofeat = AutoFeat(drg, config)
        started = time.perf_counter()
        discovery = autofeat.discover(bundle.base_name, bundle.label_column)
        seconds = time.perf_counter() - started
        assert_no_failures(discovery)
        manifests.append(discovery.run_manifest)
        key = "cache_on" if cached else "cache_off"
        runs[key] = {
            "discovery_seconds": round(seconds, 4),
            "n_paths_ranked": len(discovery.ranked_paths),
            **discovery.engine_stats.as_dict(),
            "stages": {
                stage: round(s, 4)
                for stage, s in discovery.run_manifest.stage_seconds().items()
            },
        }
        fingerprints[key] = ranking_fingerprint(discovery)
    on, off = runs["cache_on"], runs["cache_off"]
    return {
        "dataset": name,
        "sample_size": sample_size,
        "cache_on": on,
        "cache_off": off,
        "identical_rankings": fingerprints["cache_on"] == fingerprints["cache_off"],
        "builds_saved": off["index_builds"] - on["index_builds"],
        "speedup": round(
            off["discovery_seconds"] / max(on["discovery_seconds"], 1e-9), 3
        ),
    }, manifests


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small lake; the fast configuration scripts/check.sh runs",
    )
    args = parser.parse_args(argv)

    lakes = SMOKE_LAKES if args.smoke else FULL_LAKES
    results = []
    manifests = []
    for name, sample in lakes:
        result, run_manifests = bench_lake(name, sample)
        results.append(result)
        manifests.extend(run_manifests)
    summary = {
        "benchmark": "engine_hop_cache",
        "mode": "smoke" if args.smoke else "full",
        "lakes": results,
        "all_rankings_identical": all(r["identical_rankings"] for r in results),
        "total_builds_saved": sum(r["builds_saved"] for r in results),
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    for r in results:
        on, off = r["cache_on"], r["cache_off"]
        print(
            f"{r['dataset']:<12} hops={on['hops_executed']:<4} "
            f"builds {off['index_builds']} -> {on['index_builds']} "
            f"(hit rate {on['cache_hit_rate']:.0%}) "
            f"time {off['discovery_seconds']:.3f}s -> {on['discovery_seconds']:.3f}s "
            f"({r['speedup']:.2f}x) "
            f"parity={'ok' if r['identical_rankings'] else 'BROKEN'}"
        )
    print(f"summary -> {SUMMARY_PATH}")

    if not summary["all_rankings_identical"]:
        print("ERROR: cached and uncached discovery disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
