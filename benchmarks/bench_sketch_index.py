"""Sketch-index benchmark: exact-DRG parity + sub-quadratic scaling.

Two segments, both gated:

* **parity** — on paper-style evaluation lakes (the benchmark-named split
  and the renamed data-lake variant), the DRG built through the
  :class:`~repro.discovery.CandidateFilteredMatcher` must be
  **bit-identical** to the full quadratic scan's — same edges, same
  weights, same insertion order — for both exact matchers (COMA and
  value-overlap), and ``verify_exact`` must report candidate recall 1.0;
* **scale** — over synthetic wide lakes
  (:func:`repro.datasets.make_wide_lake`) of 100–2000 tables, the number
  of column pairs handed to the exact scorer must grow sub-quadratically
  (log-log slope vs table count <= 1.5) and undercut the full scan's
  pair count by at least 5x on the 500-table lake; the smallest lake is
  additionally checked for bit-parity against a real quadratic scan.

Usage::

    PYTHONPATH=src python benchmarks/bench_sketch_index.py [--smoke]

Writes a JSON summary (with embedded, validated per-scale run manifests
carrying the ``drg.index_build`` / ``drg.match`` spans) to
``BENCH_sketch_index.json`` at the repo root and exits non-zero if a
gate fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

from _util import write_summary

from repro import AutoFeatConfig
from repro.datasets import (
    make_classification,
    make_wide_lake,
    rename_for_lake,
    split_into_lake,
)
from repro.datasets.splitter import SplitPlan
from repro.discovery import (
    CandidateFilteredMatcher,
    ComaMatcher,
    ValueOverlapMatcher,
)
from repro.graph import DatasetRelationGraph
from repro.obs import MetricsRegistry, Tracer, build_manifest

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_sketch_index.json"

PRUNE_GATE = 5.0
#: Upper bound on the log-log growth rate of pairs-scored vs tables; a
#: quadratic scan sits at 2.0, the planted join tree at ~1.0.
SLOPE_GATE = 1.5
#: The lake size the >=5x pruning gate is read at (largest size in smoke).
PRUNE_GATE_TABLES = 500

FULL_SIZES = (100, 250, 500, 1000, 2000)
SMOKE_SIZES = (60, 120, 240)


def ordered_edges(drg: DatasetRelationGraph):
    """Every edge with its weight, in adjacency insertion order."""
    return [
        (e.node_a, e.column_a, e.node_b, e.column_b, e.weight)
        for e in drg.graph.all_edges()
    ]


def paper_lakes(smoke: bool):
    """The two paper-setting lakes the parity gate replays."""
    flat = make_classification(
        n_rows=160 if smoke else 320,
        n_informative=5,
        n_redundant=2,
        n_noise=3,
        n_categorical=2,
        seed=11,
    )
    plan = SplitPlan(
        name="sketch-parity",
        n_satellites=5 if smoke else 7,
        n_base_features=2,
        seed=11,
    )
    bundle = split_into_lake(flat, plan)
    return [
        ("benchmark-named", list(bundle.tables)),
        ("datalake-renamed", rename_for_lake(bundle)),
    ]


def parity_segment(smoke: bool) -> list[dict]:
    """Exact-vs-filtered bit parity on the paper lakes, both matchers."""
    rows = []
    for lake_name, tables in paper_lakes(smoke):
        for matcher_name, make_matcher in (
            ("coma", ComaMatcher),
            ("value-overlap", ValueOverlapMatcher),
        ):
            reference = DatasetRelationGraph.from_discovery(
                tables, make_matcher(), threshold=0.55
            )
            wrapped = CandidateFilteredMatcher(make_matcher())
            filtered = DatasetRelationGraph.from_discovery(
                tables, wrapped, threshold=0.55
            )
            recall = wrapped.verify_exact(tables, threshold=0.55)
            rows.append(
                {
                    "lake": lake_name,
                    "matcher": matcher_name,
                    "n_tables": len(tables),
                    "n_edges": reference.n_relationships,
                    "bit_identical": (
                        ordered_edges(reference) == ordered_edges(filtered)
                        and reference.table_names == filtered.table_names
                    ),
                    "fingerprint_equal": (
                        reference.edge_fingerprint()
                        == filtered.edge_fingerprint()
                    ),
                    "recall": recall.recall,
                    "edges_expected": recall.edges_expected,
                    "missed": len(recall.missed),
                    "pairs_considered": wrapped.stats.pairs_considered,
                    "pairs_scored": wrapped.stats.pairs_scored,
                }
            )
    return rows


def scale_segment(sizes, check_exact_at: int):
    """Filtered DRG construction over growing wide lakes, with manifests."""
    config = AutoFeatConfig(enable_sketch_index=True)
    rows = []
    manifests = []
    for n_tables in sizes:
        lake = make_wide_lake(n_tables, seed=n_tables)
        wrapped = CandidateFilteredMatcher(
            ComaMatcher(),
            bands=config.sketch_bands,
            rows_per_band=config.sketch_rows_per_band,
        )
        tracer = Tracer()
        started = time.perf_counter()
        with tracer.span("bench.sketch_index.scale", n_tables=n_tables):
            drg = DatasetRelationGraph.from_discovery(
                lake.tables, wrapped, threshold=0.55, tracer=tracer
            )
        wall = time.perf_counter() - started

        planted = {
            tuple(edge) for edge in lake.expected_key_edges
        }
        recovered = {
            (a, ca, b, cb) for a, ca, b, cb, _ in drg.edge_fingerprint()
        }
        stats = wrapped.stats
        row = {
            "n_tables": n_tables,
            "n_columns": lake.n_columns,
            "n_edges": drg.n_relationships,
            "planted_edges": len(planted),
            "planted_recovered": planted <= recovered,
            "pairs_considered": stats.pairs_considered,
            "pairs_scored": stats.pairs_scored,
            "candidates_pruned": stats.candidates_pruned,
            "prune_ratio": round(stats.prune_ratio, 6),
            "index_build_seconds": round(
                tracer.total_seconds("drg.index_build"), 4
            ),
            "match_seconds": round(tracer.total_seconds("drg.match"), 4),
            "wall_seconds": round(wall, 4),
        }
        if n_tables == check_exact_at:
            reference = DatasetRelationGraph.from_discovery(
                lake.tables, ComaMatcher(), threshold=0.55
            )
            row["exact_bit_identical"] = (
                ordered_edges(reference) == ordered_edges(drg)
                and reference.table_names == drg.table_names
            )
        registry = MetricsRegistry()
        stats.publish(registry)
        manifests.append(
            build_manifest(
                "bench.sketch_index.scale",
                tracer=tracer,
                registry=registry,
                config=config,
                dataset=lake.tables,
                seed=n_tables,
                wall_seconds=wall,
            )
        )
        rows.append(row)
        print(
            f"  {n_tables:5d} tables  {lake.n_columns:6d} cols  "
            f"considered {stats.pairs_considered:>10d}  "
            f"scored {stats.pairs_scored:>7d}  "
            f"({stats.pairs_considered / max(stats.pairs_scored, 1):7.1f}x)  "
            f"{wall:7.2f}s"
        )
    return rows, manifests


def loglog_slope(points: list[tuple[int, int]]) -> float:
    """Least-squares slope of log(pairs_scored) against log(n_tables)."""
    xs = [math.log(n) for n, _ in points]
    ys = [math.log(max(scored, 1)) for _, scored in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0.0:
        return 0.0
    return sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denom


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller lakes; same gates — what scripts/check.sh runs",
    )
    args = parser.parse_args(argv)

    print("parity (paper lakes):")
    parity_rows = parity_segment(args.smoke)
    for row in parity_rows:
        print(
            f"  {row['lake']:>17s} x {row['matcher']:<13s} "
            f"edges {row['n_edges']:3d}  bit-identical "
            f"{row['bit_identical']}  recall {row['recall']:.3f}"
        )

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    gate_tables = sizes[-1] if args.smoke else PRUNE_GATE_TABLES
    print("scale (wide lakes):")
    scale_rows, manifests = scale_segment(sizes, check_exact_at=sizes[0])

    slope = loglog_slope(
        [(row["n_tables"], row["pairs_scored"]) for row in scale_rows]
    )
    gate_row = next(r for r in scale_rows if r["n_tables"] == gate_tables)
    prune_factor = gate_row["pairs_considered"] / max(
        gate_row["pairs_scored"], 1
    )

    parity_ok = all(
        row["bit_identical"]
        and row["fingerprint_equal"]
        and row["recall"] == 1.0
        for row in parity_rows
    )
    scale_exact_ok = all(
        row.get("exact_bit_identical", True) for row in scale_rows
    )
    planted_ok = all(row["planted_recovered"] for row in scale_rows)

    summary = {
        "benchmark": "sketch_index",
        "mode": "smoke" if args.smoke else "full",
        "parity": parity_rows,
        "scale": scale_rows,
        "pairs_scored_loglog_slope": round(slope, 4),
        "slope_gate": SLOPE_GATE,
        "prune_factor_at_gate": round(prune_factor, 2),
        "prune_gate": PRUNE_GATE,
        "prune_gate_tables": gate_tables,
        "gates": {
            "paper_lake_parity": parity_ok,
            "scale_exact_parity": scale_exact_ok,
            "planted_edges_recovered": planted_ok,
            "sub_quadratic_slope": slope <= SLOPE_GATE,
            "prune_factor": prune_factor >= PRUNE_GATE,
        },
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    print(
        f"pairs-scored slope {slope:.3f} (gate <= {SLOPE_GATE}), "
        f"pruning {prune_factor:.1f}x at {gate_tables} tables "
        f"(gate >= {PRUNE_GATE}x)"
    )
    print(f"summary -> {SUMMARY_PATH}")

    failed = [name for name, ok in summary["gates"].items() if not ok]
    for name in failed:
        print(f"ERROR: gate {name} failed", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
