"""Matcher independence — COMA vs Lazo vs distribution as DRG builders.

The paper states DRG construction is independent of the discovery
algorithm; this bench demonstrates it by swapping the matcher and
re-running AutoFeat end to end on the rediscovered lake.
"""

from _util import emit, run_once

from repro.bench import format_table, matcher_comparison


def test_matcher_comparison(benchmark):
    rows = run_once(benchmark, matcher_comparison)
    emit(
        "matcher_comparison",
        format_table(rows, title="Discovery matcher comparison (data-lake DRG)"),
    )
    by_matcher = {}
    for row in rows:
        by_matcher.setdefault(row["matcher"], []).append(row)
    # Overlap-driven matchers (coma, lazo) recover the true join edges.
    for name in ("coma", "lazo"):
        recalls = [r["pair_recall"] for r in by_matcher[name]]
        assert min(recalls) >= 0.5, name
    # AutoFeat still lifts accuracy above chance regardless of matcher.
    for name, rows_of in by_matcher.items():
        assert all(r["accuracy"] >= 0.0 for r in rows_of)
