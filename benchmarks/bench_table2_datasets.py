"""Table II — dataset overview: paper shape vs generated synthetic lakes."""

from _util import emit, run_once

from repro.bench import format_table, table2_overview


def test_table2_dataset_overview(benchmark):
    rows = run_once(benchmark, table2_overview)
    emit("table2_datasets", format_table(rows, title="Table II: dataset overview"))
    assert len(rows) == 8
