"""Figure 7 — data-lake setting with non-tree models (KNN, logistic-L1)."""

from _util import emit, run_once

from repro.bench import average_by_method, fig7_nontree_datalake, format_table


def test_fig7_nontree_models_datalake(benchmark):
    rows = run_once(benchmark, fig7_nontree_datalake)
    emit(
        "fig7_nontree_datalake",
        format_table(rows, title="Figure 7: data-lake setting (KNN / logistic-L1)"),
    )
    assert any(r["method"] == "AutoFeat" for r in rows)
