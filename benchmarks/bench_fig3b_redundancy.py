"""Figure 3b — redundancy methods: aggregated accuracy and runtime."""

from _util import emit, run_once

from repro.bench import fig3b_redundancy_comparison, format_table


def test_fig3b_redundancy_methods(benchmark):
    rows = run_once(benchmark, fig3b_redundancy_comparison)
    emit(
        "fig3b_redundancy",
        format_table(rows, title="Figure 3b: redundancy method comparison"),
    )
    by_method = {r["method"]: r for r in rows}
    # Paper shape: MIFS/MRMR skip the conditional-MI term and are the
    # fast group; the conditional methods pay for it in runtime.
    fast = min(
        by_method["mifs"]["mean_selection_seconds"],
        by_method["mrmr"]["mean_selection_seconds"],
    )
    slow = max(
        by_method["cife"]["mean_selection_seconds"],
        by_method["jmi"]["mean_selection_seconds"],
        by_method["cmim"]["mean_selection_seconds"],
    )
    assert slow > fast
