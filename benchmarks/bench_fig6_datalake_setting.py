"""Figure 6 — data-lake setting (discovered edges at threshold 0.55)."""

from _util import emit, run_once

from repro.bench import average_by_method, fig6_datalake_setting, format_table


def test_fig6_datalake_setting(benchmark):
    rows = run_once(benchmark, fig6_datalake_setting)
    emit(
        "fig6_datalake_setting",
        format_table(rows, title="Figure 6: data-lake setting (tree models)")
        + "\n\n"
        + format_table(
            average_by_method(rows), title="Figure 6: mean accuracy per method"
        ),
    )
    means = {r["method"]: r["mean_accuracy"] for r in average_by_method(rows)}
    assert means["AutoFeat"] > means["BASE"]
    assert means["AutoFeat"] >= means["ARDA"] - 0.02
    assert means["AutoFeat"] >= means["MAB"] - 0.02
    fs = {r["method"]: r["mean_fs_seconds"] for r in average_by_method(rows, "fs_seconds")}
    assert fs["AutoFeat"] < fs["MAB"]
