"""Figure 3a — relevance metrics: aggregated accuracy and runtime."""

from _util import emit, run_once

from repro.bench import fig3a_relevance_comparison, format_table


def test_fig3a_relevance_metrics(benchmark):
    rows = run_once(benchmark, fig3a_relevance_comparison)
    emit(
        "fig3a_relevance",
        format_table(rows, title="Figure 3a: relevance metric comparison"),
    )
    by_metric = {r["metric"]: r for r in rows}
    # Paper shape: the correlation metrics are the cheap ones, and Spearman
    # is the accuracy recommendation.
    assert by_metric["pearson"]["mean_selection_seconds"] <= min(
        by_metric["information_gain"]["mean_selection_seconds"],
        by_metric["symmetrical_uncertainty"]["mean_selection_seconds"],
    ) * 3
    best = max(rows, key=lambda r: r["mean_accuracy"])
    assert best["metric"] in ("spearman", "pearson")
