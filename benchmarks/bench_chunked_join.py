"""Dictionary-encoded join kernels + chunked out-of-core execution benchmark.

Three gated measurements back the PR-7 tentpole:

* **kernel** — ``JoinIndex.build`` + ``probe`` over every usable edge of a
  covertype-scale lake, scalar path vs dictionary-encoded path.  Gate:
  bit-identical build tables and probe gathers, and encoded build+probe at
  least ``MIN_SPEEDUP``× faster.
* **discovery parity** — full ``AutoFeat.discover`` with
  ``enable_dict_keys`` on vs off: ranked paths must be bit-identical.
* **bounded memory** — a synthetic lake whose hop outputs exceed
  ``memory_budget_bytes`` runs chunked end to end; the gate demands
  nonzero spill counters (partitions actually went to disk) and a
  successful, parity-clean completion.

Usage::

    PYTHONPATH=src python benchmarks/bench_chunked_join.py [--smoke]

Writes ``BENCH_chunked_join.json`` (manifests embedded) at the repo root
and exits non-zero if any gate fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from _util import assert_no_failures, write_summary

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import DType, JoinIndex
from repro.datasets import build_dataset, datalake_drg, make_classification, split_into_lake
from repro.datasets.splitter import SplitPlan
from repro.engine import qualified

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_chunked_join.json"

#: Required build+probe speedup of the encoded kernels over scalar.
MIN_SPEEDUP = 2.0


def table_fingerprint(table):
    out = []
    for name in table.column_names:
        column = table.column(name)
        if column.dtype is DType.STRING:
            payload = tuple(
                None if m else v for v, m in zip(column.values, column.mask)
            )
        else:
            payload = tuple(
                None if m else v
                for v, m in zip(column.values.tolist(), column.mask)
            )
        out.append((name, column.dtype.name, payload))
    return tuple(out)


def ranking_fingerprint(discovery):
    return [
        (r.path.describe(), r.score, r.selected_features)
        for r in discovery.ranked_paths
    ]


def _lake_edges(bundle, drg):
    """Every (probe column, right table, key column) pair of the lake."""
    base = drg.table(bundle.base_name)
    edges = []
    for tname in drg.table_names:
        if tname == bundle.base_name:
            continue
        for edge in drg.best_join_options(bundle.base_name, tname):
            key_column = qualified(edge.target, edge.target_column)
            right = drg.table(edge.target).prefixed(edge.target)
            if key_column in right and edge.source_column in base:
                edges.append((base.column(edge.source_column), right, key_column))
    return edges


def bench_kernels(dataset: str, reps: int) -> dict:
    """Build+probe over every usable lake edge, scalar vs encoded."""
    bundle = build_dataset(dataset)
    drg = datalake_drg(bundle)
    edges = _lake_edges(bundle, drg)

    def run(use_dict_keys: bool) -> tuple[float, list]:
        best = float("inf")
        gathers = []
        for _ in range(reps):
            gathers = []
            started = time.perf_counter()
            for probe, right, key_column in edges:
                index = JoinIndex.build(
                    right, key_column, seed=0, use_dict_keys=use_dict_keys
                )
                gathers.append((index, index.probe(probe)))
            best = min(best, time.perf_counter() - started)
        return best, gathers

    scalar_seconds, scalar_runs = run(False)
    encoded_seconds, encoded_runs = run(True)
    parity = all(
        np.array_equal(gs, ge)
        and table_fingerprint(s.build_table) == table_fingerprint(e.build_table)
        for (s, gs), (e, ge) in zip(scalar_runs, encoded_runs)
    )
    speedup = scalar_seconds / max(encoded_seconds, 1e-9)
    return {
        "dataset": dataset,
        "edges": len(edges),
        "reps": reps,
        "scalar_seconds": round(scalar_seconds, 5),
        "encoded_seconds": round(encoded_seconds, 5),
        "speedup": round(speedup, 2),
        "bit_identical": parity,
    }


def bench_discovery_parity(dataset: str, sample_size: int) -> tuple[dict, list]:
    """Full discover with dict keys on vs off; rankings must agree."""
    bundle = build_dataset(dataset)
    drg = datalake_drg(bundle)
    runs = {}
    fingerprints = {}
    manifests = []
    for encoded in (False, True):
        config = AutoFeatConfig(
            sample_size=sample_size, enable_dict_keys=encoded, seed=0
        )
        autofeat = AutoFeat(drg, config)
        started = time.perf_counter()
        discovery = autofeat.discover(bundle.base_name, bundle.label_column)
        seconds = time.perf_counter() - started
        assert_no_failures(discovery)
        manifests.append(discovery.run_manifest)
        key = "encoded" if encoded else "scalar"
        runs[key] = {
            "discovery_seconds": round(seconds, 4),
            "n_paths_ranked": len(discovery.ranked_paths),
            **discovery.engine_stats.as_dict(),
        }
        fingerprints[key] = ranking_fingerprint(discovery)
    return {
        "dataset": dataset,
        "sample_size": sample_size,
        "scalar": runs["scalar"],
        "encoded": runs["encoded"],
        "identical_rankings": fingerprints["scalar"] == fingerprints["encoded"],
        "discovery_speedup": round(
            runs["scalar"]["discovery_seconds"]
            / max(runs["encoded"]["discovery_seconds"], 1e-9),
            3,
        ),
    }, manifests


def bench_bounded_memory(
    n_rows: int, chunk_rows: int, memory_budget_bytes: int
) -> tuple[dict, list]:
    """Discovery over a lake whose hop outputs exceed the memory budget.

    ``sample_size=n_rows`` keeps every hop at full height, so the chunked
    executor engages and must spill; the scalar in-core reference run
    certifies bit-identical rankings.
    """
    flat = make_classification(
        n_rows=n_rows, n_informative=5, n_redundant=2, n_noise=2, seed=11
    )
    plan = SplitPlan(
        name=f"spill{n_rows}",
        n_satellites=3,
        n_base_features=2,
        max_depth=1,
        match_rate_range=(0.9, 1.0),
        seed=11,
    )
    bundle = split_into_lake(flat, plan)
    drg = bundle.benchmark_drg()
    base_config = AutoFeatConfig(sample_size=n_rows, seed=0)

    reference = AutoFeat(drg, base_config).discover(
        bundle.base_name, bundle.label_column
    )
    chunked_config = base_config.with_overrides(
        chunk_rows=chunk_rows, memory_budget_bytes=memory_budget_bytes
    )
    started = time.perf_counter()
    chunked = AutoFeat(drg, chunked_config).discover(
        bundle.base_name, bundle.label_column
    )
    seconds = time.perf_counter() - started
    assert_no_failures(reference, chunked)
    stats = chunked.engine_stats
    return {
        "n_rows": n_rows,
        "chunk_rows": chunk_rows,
        "memory_budget_bytes": memory_budget_bytes,
        "chunked_seconds": round(seconds, 4),
        "chunks_executed": stats.chunks_executed,
        "partitions_spilled": stats.partitions_spilled,
        "spill_bytes_written": stats.spill_bytes_written,
        "spill_bytes_read": stats.spill_bytes_read,
        "peak_resident_bytes": stats.peak_resident_bytes,
        "within_budget": stats.peak_resident_bytes
        <= memory_budget_bytes + chunk_rows * 512,
        "identical_rankings": ranking_fingerprint(reference)
        == ranking_fingerprint(chunked),
    }, [reference.run_manifest, chunked.run_manifest]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes; the fast configuration scripts/check.sh runs",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        kernel_datasets, reps = ["covertype"], 3
        parity_lakes = [("covertype", 300)]
        bounded_args = (20_000, 4_096, 512 * 1024)
    else:
        kernel_datasets, reps = ["credit", "covertype", "jannis"], 5
        parity_lakes = [("covertype", 1000), ("jannis", 1000)]
        bounded_args = (100_000, 8_192, 2 * 1024 * 1024)

    kernels = [bench_kernels(name, reps) for name in kernel_datasets]
    parity_results = []
    manifests = []
    for name, sample in parity_lakes:
        result, run_manifests = bench_discovery_parity(name, sample)
        parity_results.append(result)
        manifests.extend(run_manifests)
    bounded, bounded_manifests = bench_bounded_memory(*bounded_args)
    manifests.extend(bounded_manifests)

    gates = {
        "kernel_bit_identical": all(k["bit_identical"] for k in kernels),
        "kernel_speedup_ok": all(k["speedup"] >= MIN_SPEEDUP for k in kernels),
        "discovery_rankings_identical": all(
            r["identical_rankings"] for r in parity_results
        ),
        "bounded_run_spilled": bounded["partitions_spilled"] > 0
        and bounded["spill_bytes_written"] > 0
        and bounded["chunks_executed"] > 0,
        "bounded_rankings_identical": bounded["identical_rankings"],
    }
    summary = {
        "benchmark": "chunked_join",
        "mode": "smoke" if args.smoke else "full",
        "min_speedup": MIN_SPEEDUP,
        "kernels": kernels,
        "discovery_parity": parity_results,
        "bounded_memory": bounded,
        "gates": gates,
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    for k in kernels:
        print(
            f"kernel {k['dataset']:<12} {k['edges']} edges "
            f"{k['scalar_seconds']:.4f}s -> {k['encoded_seconds']:.4f}s "
            f"({k['speedup']:.1f}x, need >={MIN_SPEEDUP}x) "
            f"parity={'ok' if k['bit_identical'] else 'BROKEN'}"
        )
    for r in parity_results:
        print(
            f"discover {r['dataset']:<10} encoded {r['discovery_speedup']:.2f}x "
            f"parity={'ok' if r['identical_rankings'] else 'BROKEN'}"
        )
    print(
        f"bounded  {bounded['n_rows']} rows, budget "
        f"{bounded['memory_budget_bytes']} B: "
        f"{bounded['chunks_executed']} chunks, "
        f"{bounded['partitions_spilled']} spilled "
        f"({bounded['spill_bytes_written']} B), peak resident "
        f"{bounded['peak_resident_bytes']} B, "
        f"parity={'ok' if bounded['identical_rankings'] else 'BROKEN'}"
    )
    print(f"summary -> {SUMMARY_PATH}")

    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"ERROR: gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
