"""Figure 4 — benchmark setting (KFK snowflake): runtime split + accuracy.

Reproduces the main comparison: BASE / ARDA / MAB / JoinAll / JoinAll+F /
AutoFeat on tree-based models, per dataset. Set REPRO_BENCH_FULL=1 for the
whole Table II matrix with all four tree models.
"""

from _util import emit, run_once

from repro.bench import (
    average_by_method,
    fig4_benchmark_setting,
    format_table,
)


def test_fig4_benchmark_setting(benchmark):
    rows = run_once(benchmark, fig4_benchmark_setting)
    emit(
        "fig4_benchmark_setting",
        format_table(rows, title="Figure 4: benchmark setting (tree models)")
        + "\n\n"
        + format_table(
            average_by_method(rows), title="Figure 4: mean accuracy per method"
        )
        + "\n"
        + format_table(
            average_by_method(rows, "fs_seconds"),
            title="Figure 4: mean feature-selection seconds per method",
        ),
    )
    means = {r["method"]: r["mean_accuracy"] for r in average_by_method(rows)}
    # Paper shape: augmentation beats the bare base table...
    assert means["AutoFeat"] > means["BASE"]
    # ...and AutoFeat's transitive reach at least matches single-hop ARDA.
    assert means["AutoFeat"] >= means["ARDA"] - 0.02
    fs = {r["method"]: r["mean_fs_seconds"] for r in average_by_method(rows, "fs_seconds")}
    assert fs["AutoFeat"] < fs["ARDA"]
    assert fs["AutoFeat"] < fs["MAB"]
