"""Figure 9 — ablation: AutoFeat variants (relevance x redundancy)."""

from _util import emit, run_once

from repro.bench import fig9_ablation, format_table


def test_fig9_ablation(benchmark):
    rows = run_once(benchmark, fig9_ablation)
    emit("fig9_ablation", format_table(rows, title="Figure 9: ablation study"))
    by_variant = {}
    for row in rows:
        by_variant.setdefault(row["variant"], []).append(row)
    mean = lambda vals, key: sum(r[key] for r in vals) / len(vals)
    # Paper shape: the JMI variants are slower than the MRMR ones.
    assert mean(by_variant["spearman-jmi"], "fs_seconds") > mean(
        by_variant["spearman-mrmr"], "fs_seconds"
    ) * 0.8
    # The published configuration stays within a whisker of the best variant.
    best = max(mean(v, "accuracy") for v in by_variant.values())
    assert mean(by_variant["spearman-mrmr"], "accuracy") >= best - 0.05
