"""Always-on service benchmark: warm requests vs cold single-shot runs.

Measures what the :class:`repro.service.DiscoveryService` exists for —
amortising lake profiling, O(n²) schema matching, DRG construction and
hop-index building across requests.  Three segments:

* **cold** — one from-scratch ``from_discovery`` + ``autofeat_augment``,
  the per-request cost of not running a service;
* **warm** — the same request served repeatedly by a standing service
  (result cache + shared hop cache);
* **mutation** — one ``update_table`` applied incrementally vs a cold
  full rebuild of the post-mutation lake.

Two gates are enforced and recorded:

* **parity** — the warm response is bit-identical to the cold run (ranked
  paths, scores, selected features, best-model accuracy, failure
  reports), and the incrementally maintained DRG matches the cold
  rebuild edge-for-edge; a violation exits non-zero.
* **speedup** — the median warm request must beat the cold single-shot
  by at least 5x.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]

Writes a JSON summary (with embedded, validated run manifests) to
``BENCH_service.json`` at the repo root and exits non-zero if a gate
fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

from _util import assert_no_failures, write_summary

from repro import AutoFeat, AutoFeatConfig, DiscoveryService
from repro.datasets import make_classification, split_into_lake
from repro.datasets.splitter import SplitPlan
from repro.discovery import ComaMatcher
from repro.graph import DatasetRelationGraph

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_service.json"

SPEEDUP_GATE = 5.0
N_WARM_REQUESTS = 5


def build_lake(smoke: bool, seed: int = 7):
    flat = make_classification(
        n_rows=240 if smoke else 480,
        n_informative=5,
        n_redundant=2,
        n_noise=3,
        class_sep=1.6,
        seed=seed,
    )
    plan = SplitPlan(
        name="service-bench",
        n_satellites=4 if smoke else 6,
        n_base_features=2,
        max_depth=2,
        match_rate_range=(0.8, 1.0),
        seed=seed,
    )
    return split_into_lake(flat, plan)


def fingerprint(result):
    """Everything order- or value-sensitive in an AugmentationResult."""
    discovery = result.discovery
    return {
        "ranked": [
            (r.path.describe(), r.score, r.selected_features)
            for r in discovery.ranked_paths
        ],
        "trained": [
            (t.ranked.path.describe(), t.accuracy, t.n_features_used)
            for t in result.trained
        ],
        "best_accuracy": result.best.accuracy if result.best else None,
        "failures": [
            (f.stage, f.error_kind, f.message, f.path, f.edge)
            for f in (
                list(discovery.failure_report.records)
                + list(result.failure_report.records)
            )
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller lake; same gates — what scripts/check.sh runs",
    )
    args = parser.parse_args(argv)

    bundle = build_lake(args.smoke)
    tables = list(bundle.tables)
    config = AutoFeatConfig(
        sample_size=200, seed=0, top_k=2, max_path_length=2
    )

    # -- cold single-shot: rebuild the world, run once ----------------------
    started = time.perf_counter()
    cold_drg = DatasetRelationGraph.from_discovery(tables, ComaMatcher())
    cold = AutoFeat(cold_drg, config).augment(
        bundle.base_name, bundle.label_column
    )
    cold_seconds = time.perf_counter() - started
    assert_no_failures(cold)

    # -- warm service: one priming request, then repeats --------------------
    service = DiscoveryService(
        tables, matcher=ComaMatcher(), config=config, n_workers=2
    )
    started = time.perf_counter()
    priming = service.augment(bundle.base_name, bundle.label_column)
    priming_seconds = time.perf_counter() - started
    assert_no_failures(priming.result)

    warm_seconds = []
    warm_responses = []
    for _ in range(N_WARM_REQUESTS):
        started = time.perf_counter()
        response = service.augment(bundle.base_name, bundle.label_column)
        warm_seconds.append(time.perf_counter() - started)
        warm_responses.append(response)
    warm_median = statistics.median(warm_seconds)
    all_warm_hits = all(r.cache_hit for r in warm_responses)

    parity = fingerprint(priming.result) == fingerprint(cold) and all(
        fingerprint(r.result) == fingerprint(cold) for r in warm_responses
    )

    # -- mutation: incremental maintenance vs cold rebuild ------------------
    satellite = next(t for t in tables if t.name != bundle.base_name)
    started = time.perf_counter()
    report = service.update_table(satellite)
    mutation_seconds = time.perf_counter() - started
    started = time.perf_counter()
    rebuilt = DatasetRelationGraph.from_discovery(
        service.index.tables, ComaMatcher()
    )
    rebuild_seconds = time.perf_counter() - started
    drg_parity = (
        service.drg.edge_fingerprint() == rebuilt.edge_fingerprint()
    )

    speedup = cold_seconds / max(warm_median, 1e-9)
    stats = service.stats()
    service.close()

    summary = {
        "benchmark": "service",
        "mode": "smoke" if args.smoke else "full",
        "lake": {
            "name": bundle.name,
            "n_tables": len(tables),
            "sample_size": config.sample_size,
        },
        "cold_single_shot_seconds": round(cold_seconds, 4),
        "warm_priming_seconds": round(priming_seconds, 4),
        "warm_request_seconds": [round(s, 6) for s in warm_seconds],
        "warm_median_seconds": round(warm_median, 6),
        "warm_speedup_vs_cold": round(speedup, 2),
        "speedup_gate": SPEEDUP_GATE,
        "all_warm_requests_cache_hits": all_warm_hits,
        "warm_cold_parity": parity,
        "mutation": {
            "kind": report.kind,
            "table": report.table,
            "n_pairs_rematched": report.n_pairs_rematched,
            "n_pairs_reused": report.n_pairs_reused,
            "incremental_seconds": round(mutation_seconds, 4),
            "cold_rebuild_seconds": round(rebuild_seconds, 4),
            "drg_parity": drg_parity,
        },
        "service_stats": stats,
    }
    manifests = [
        cold.run_manifest,
        priming.result.run_manifest,
        priming.manifest,
        warm_responses[0].manifest,
    ]
    write_summary(SUMMARY_PATH, summary, manifests)

    print(
        f"cold single-shot   {cold_seconds:8.3f}s  (discovery + match + augment)"
    )
    print(f"warm priming       {priming_seconds:8.3f}s  (service, cold caches)")
    print(
        f"warm request       {warm_median:8.6f}s  median of {N_WARM_REQUESTS} "
        f"(speedup {speedup:.0f}x, gate {SPEEDUP_GATE:.0f}x)"
    )
    print(
        f"mutation           {mutation_seconds:8.3f}s  incremental vs "
        f"{rebuild_seconds:.3f}s cold rebuild "
        f"({report.n_pairs_rematched} pairs rematched, "
        f"{report.n_pairs_reused} reused)"
    )
    print(f"summary -> {SUMMARY_PATH}")

    if not parity:
        print("ERROR: warm service results differ from cold run", file=sys.stderr)
        return 1
    if not drg_parity:
        print(
            "ERROR: incremental DRG differs from cold rebuild", file=sys.stderr
        )
        return 1
    if not all_warm_hits:
        print("ERROR: warm repeats were not served from cache", file=sys.stderr)
        return 1
    if speedup < SPEEDUP_GATE:
        print(
            f"ERROR: warm speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_GATE}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
