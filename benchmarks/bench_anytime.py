"""Anytime discovery benchmark: the regret-vs-budget curve.

Runs ``AutoFeat.discover`` over the covertype lake under a sweep of hop
budgets (fractions of the full traversal) with the UCB frontier, and
reports wall time, executed hops and :func:`repro.core.ranking_regret`
against the unbudgeted reference run.  Hop work is dominated by
``hop_latency_seconds`` (the engine's simulated remote-fetch latency), so
wall time tracks executed hops and the speedup figures are
machine-independent.

Three gates are enforced and recorded:

* **degeneration parity** — an unbudgeted run with
  ``frontier_strategy="ucb"`` is bit-identical to the reference run: the
  UCB knob must not perturb complete traversals (DESIGN.md §14);
* **infinite-budget parity** — with ``max_hops`` equal to the full
  traversal's hop count, the budgeted run discovers exactly the
  reference path set and its regret is exactly 0;
* **anytime speedup** (full mode only) — some budget point runs at least
  2x faster than the full traversal while keeping regret at or below 5%:
  the headline claim that half the work loses almost none of the value.

Usage::

    PYTHONPATH=src python benchmarks/bench_anytime.py [--smoke]

Writes a JSON summary to ``BENCH_anytime.json`` at the repo root and
exits non-zero if a gate fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from _util import assert_no_failures, write_summary

from repro.core import AutoFeat, AutoFeatConfig, ranking_regret
from repro.datasets import build_dataset, datalake_drg

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_anytime.json"

SPEEDUP_GATE = 2.0
REGRET_GATE = 0.05
#: Hop budgets as fractions of the full traversal, smallest first.
BUDGET_FRACTIONS = (0.125, 0.25, 0.4, 0.5, 0.75, 1.0)


def fingerprint(discovery):
    return {
        "ranked": [
            (r.path.describe(), r.score, r.selected_features)
            for r in discovery.ranked_paths
        ],
        "failures": [
            (f.stage, f.error_kind, f.message, f.path, f.edge)
            for f in discovery.failure_report.records
        ],
    }


def run_discover(drg, bundle, *, sample_size, hop_latency, **overrides):
    config = AutoFeatConfig(
        sample_size=sample_size,
        seed=0,
        hop_latency_seconds=hop_latency,
        **overrides,
    )
    autofeat = AutoFeat(drg, config)
    started = time.perf_counter()
    discovery = autofeat.discover(bundle.base_name, bundle.label_column)
    return discovery, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="lighter latency/sample; parity gates only (scripts/check.sh)",
    )
    args = parser.parse_args(argv)
    hop_latency = 0.005 if args.smoke else 0.03
    sample_size = 300 if args.smoke else 1000

    bundle = build_dataset("covertype")
    drg = datalake_drg(bundle)

    full, full_seconds = run_discover(
        drg, bundle, sample_size=sample_size, hop_latency=hop_latency
    )
    assert_no_failures(full)
    total_hops = full.navigation.hops_executed
    manifests = [full.run_manifest]

    # Gate 1: the strategy knob is inert without a budget.
    degenerate, _ = run_discover(
        drg,
        bundle,
        sample_size=sample_size,
        hop_latency=hop_latency,
        frontier_strategy="ucb",
    )
    degeneration_parity = fingerprint(degenerate) == fingerprint(full)

    curve = []
    budgets = sorted(
        {max(1, round(total_hops * f)) for f in BUDGET_FRACTIONS}
    )
    for max_hops in budgets:
        partial, seconds = run_discover(
            drg,
            bundle,
            sample_size=sample_size,
            hop_latency=hop_latency,
            max_hops=max_hops,
            frontier_strategy="ucb",
        )
        manifests.append(partial.run_manifest)
        regret = ranking_regret(full, partial)
        curve.append(
            {
                "max_hops": max_hops,
                "budget_fraction": round(max_hops / max(total_hops, 1), 4),
                "hops_executed": partial.navigation.hops_executed,
                "budget_exhausted": partial.budget_exhausted,
                "frontier_unexplored": partial.navigation.frontier_unexplored,
                "n_paths_ranked": len(partial.ranked_paths),
                "discovery_seconds": round(seconds, 4),
                "speedup_vs_full": round(full_seconds / max(seconds, 1e-9), 3),
                "regret": round(regret, 6),
            }
        )

    # Gate 2: the full hop budget reproduces the reference path set.
    at_full = curve[-1]
    full_budget_run, _ = run_discover(
        drg,
        bundle,
        sample_size=sample_size,
        hop_latency=hop_latency,
        max_hops=total_hops,
        frontier_strategy="ucb",
    )
    full_paths = {r.path.describe() for r in full.ranked_paths}
    budget_paths = {r.path.describe() for r in full_budget_run.ranked_paths}
    infinite_budget_parity = budget_paths == full_paths and at_full["regret"] == 0.0

    # Gate 3: anytime value — fast AND nearly as good, at some point.
    qualifying = [
        row
        for row in curve
        if row["speedup_vs_full"] >= SPEEDUP_GATE and row["regret"] <= REGRET_GATE
    ]
    summary = {
        "benchmark": "anytime",
        "mode": "smoke" if args.smoke else "full",
        "dataset": "covertype",
        "sample_size": sample_size,
        "hop_latency_seconds": hop_latency,
        "full_traversal": {
            "hops_executed": total_hops,
            "discovery_seconds": round(full_seconds, 4),
            "n_paths_ranked": len(full.ranked_paths),
        },
        "regret_curve": curve,
        "degeneration_parity": degeneration_parity,
        "infinite_budget_parity": infinite_budget_parity,
        "speedup_gate": SPEEDUP_GATE,
        "regret_gate": REGRET_GATE,
        "speedup_gate_enforced": not args.smoke,
        "best_qualifying_point": (
            max(qualifying, key=lambda r: r["speedup_vs_full"])
            if qualifying
            else None
        ),
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    print(
        f"full       hops={total_hops} time={full_seconds:.3f}s "
        f"paths={len(full.ranked_paths)} (baseline)"
    )
    for row in curve:
        print(
            f"hops<={row['max_hops']:<4} time={row['discovery_seconds']:.3f}s "
            f"speedup={row['speedup_vs_full']:.2f}x "
            f"regret={row['regret']:.4f} "
            f"paths={row['n_paths_ranked']}"
        )
    print(f"summary -> {SUMMARY_PATH}")

    if not degeneration_parity:
        print(
            "ERROR: unbudgeted ucb run diverged from the reference traversal",
            file=sys.stderr,
        )
        return 1
    if not infinite_budget_parity:
        print(
            "ERROR: full hop budget did not reproduce the reference path set",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and not qualifying:
        print(
            f"ERROR: no budget point reached {SPEEDUP_GATE}x speedup at "
            f"<= {REGRET_GATE:.0%} regret",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
