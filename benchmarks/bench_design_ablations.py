"""DESIGN.md extra ablations — BFS vs DFS traversal, multigraph vs simple."""

from _util import emit, run_once

from repro.bench import format_table, multigraph_ablation, traversal_ablation


def test_bfs_vs_dfs_traversal(benchmark):
    rows = run_once(benchmark, traversal_ablation)
    emit(
        "ablation_traversal",
        format_table(rows, title="Ablation: BFS vs DFS traversal"),
    )
    # Same search space either way on these graphs; BFS must not lose.
    bfs = [r["accuracy"] for r in rows if r["traversal"] == "bfs"]
    dfs = [r["accuracy"] for r in rows if r["traversal"] == "dfs"]
    assert sum(bfs) / len(bfs) >= sum(dfs) / len(dfs) - 0.05


def test_multigraph_vs_simple_drg(benchmark):
    rows = run_once(benchmark, multigraph_ablation)
    emit(
        "ablation_multigraph",
        format_table(rows, title="Ablation: multigraph vs simple-graph DRG"),
    )
    multi = [r for r in rows if r["drg"] == "multigraph"]
    simple = [r for r in rows if r["drg"] == "simple"]
    # The multigraph retains at least as many join opportunities.
    assert sum(r["edges"] for r in multi) >= sum(r["edges"] for r in simple)
