"""Parallel discovery benchmark: serial vs threads vs processes at 4 workers.

Runs ``AutoFeat.discover`` over one synthetic snowflake lake under each
``parallel_backend`` and reports wall time, the engine counters and the
executor's ``parallel.*`` gauges.  Two gates are enforced and recorded:

* **parity** — ranked paths (descriptions, scores, selected features) and
  failure reports are bit-identical across all three backends; a violation
  exits non-zero.
* **speedup** — the best parallel backend must beat serial by at least
  1.8x at 4 workers (full mode; smoke only gates parity).

Hop work is dominated by ``hop_latency_seconds``, the engine's simulated
remote-fetch latency: each hop sleeps (releasing the GIL) as a lake whose
tables live across a network would, which makes the speedup measurement
meaningful and machine-independent even on single-core CI runners.  See
DESIGN.md §11 for why CPU-bound speedups additionally need the
``processes`` backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_discovery.py [--smoke]

Writes a JSON summary to ``BENCH_parallel_discovery.json`` at the repo
root and exits non-zero if a gate fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from _util import assert_no_failures, write_summary

from repro.core import AutoFeat, AutoFeatConfig
from repro.datasets import make_classification, split_into_lake
from repro.datasets.splitter import SplitPlan

REPO_ROOT = Path(__file__).resolve().parent.parent
SUMMARY_PATH = REPO_ROOT / "BENCH_parallel_discovery.json"

WORKERS = 4
SPEEDUP_GATE = 1.8
BACKENDS = ("serial", "threads", "processes")


def build_lake(seed: int = 7):
    """A wide snowflake: every BFS wave fans out enough to keep 4 busy."""
    flat = make_classification(
        n_rows=480,
        n_informative=6,
        n_redundant=3,
        n_noise=5,
        class_sep=1.6,
        seed=seed,
    )
    plan = SplitPlan(
        name="parallel-bench",
        n_satellites=8,
        n_base_features=2,
        max_depth=2,
        match_rate_range=(0.8, 1.0),
        seed=seed,
    )
    bundle = split_into_lake(flat, plan)
    return bundle, bundle.benchmark_drg()


def fingerprint(discovery):
    return {
        "ranked": [
            (r.path.describe(), r.score, r.selected_features)
            for r in discovery.ranked_paths
        ],
        "failures": [
            (f.stage, f.error_kind, f.message, f.path, f.edge)
            for f in discovery.failure_report.records
        ],
    }


def bench_backend(drg, bundle, backend, *, hop_latency, sample_size):
    config = AutoFeatConfig(
        sample_size=sample_size,
        seed=0,
        parallel_backend=backend,
        max_workers=WORKERS,
        hop_latency_seconds=hop_latency,
    )
    autofeat = AutoFeat(drg, config)
    started = time.perf_counter()
    discovery = autofeat.discover(bundle.base_name, bundle.label_column)
    seconds = time.perf_counter() - started
    assert_no_failures(discovery)
    gauges = discovery.run_manifest.metrics.get("gauges", {})
    row = {
        "backend": backend,
        "workers": 1 if backend == "serial" else WORKERS,
        "discovery_seconds": round(seconds, 4),
        "n_paths_ranked": len(discovery.ranked_paths),
        "n_failure_records": len(discovery.failure_report.records),
        **discovery.engine_stats.as_dict(),
        "gauges": {k: v for k, v in gauges.items() if k.startswith("parallel.")},
    }
    return row, fingerprint(discovery), discovery.run_manifest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="lighter latency + parity gate only; what scripts/check.sh runs",
    )
    args = parser.parse_args(argv)
    hop_latency = 0.005 if args.smoke else 0.03
    sample_size = 200 if args.smoke else 300

    bundle, drg = build_lake()
    rows, prints, manifests = {}, {}, []
    for backend in BACKENDS:
        row, print_, manifest = bench_backend(
            drg, bundle, backend, hop_latency=hop_latency, sample_size=sample_size
        )
        rows[backend], prints[backend] = row, print_
        manifests.append(manifest)

    serial_seconds = rows["serial"]["discovery_seconds"]
    for backend in ("threads", "processes"):
        rows[backend]["speedup_vs_serial"] = round(
            serial_seconds / max(rows[backend]["discovery_seconds"], 1e-9), 3
        )
    best_speedup = max(
        rows[b]["speedup_vs_serial"] for b in ("threads", "processes")
    )
    parity = all(prints[b] == prints["serial"] for b in ("threads", "processes"))
    zero_failures = all(r["n_failure_records"] == 0 for r in rows.values())

    summary = {
        "benchmark": "parallel_discovery",
        "mode": "smoke" if args.smoke else "full",
        "workers": WORKERS,
        "hop_latency_seconds": hop_latency,
        "lake": {
            "name": bundle.name,
            "n_tables": len(bundle.tables),
            "sample_size": sample_size,
        },
        "backends": [rows[b] for b in BACKENDS],
        "all_rankings_identical": parity,
        "zero_failure_records": zero_failures,
        "best_parallel_speedup": best_speedup,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_enforced": not args.smoke,
    }
    write_summary(SUMMARY_PATH, summary, manifests)

    for backend in BACKENDS:
        r = rows[backend]
        speedup = r.get("speedup_vs_serial")
        print(
            f"{backend:<10} workers={r['workers']} "
            f"time={r['discovery_seconds']:.3f}s "
            f"hops={r['hops_executed']} "
            + (f"speedup={speedup:.2f}x " if speedup else "(baseline) ")
            + f"parity={'ok' if prints[backend] == prints['serial'] else 'BROKEN'}"
        )
    print(f"summary -> {SUMMARY_PATH}")

    if not parity:
        print("ERROR: parallel and serial discovery disagree", file=sys.stderr)
        return 1
    if not zero_failures:
        print("ERROR: benchmark runs recorded failures", file=sys.stderr)
        return 1
    if not args.smoke and best_speedup < SPEEDUP_GATE:
        print(
            f"ERROR: best parallel speedup {best_speedup:.2f}x is below the "
            f"{SPEEDUP_GATE}x gate at {WORKERS} workers",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
