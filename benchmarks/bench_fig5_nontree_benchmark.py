"""Figure 5 — benchmark setting with non-tree models (KNN, logistic-L1)."""

from _util import emit, run_once

from repro.bench import average_by_method, fig5_nontree_benchmark, format_table


def test_fig5_nontree_models_benchmark(benchmark):
    rows = run_once(benchmark, fig5_nontree_benchmark)
    emit(
        "fig5_nontree_benchmark",
        format_table(rows, title="Figure 5: benchmark setting (KNN / logistic-L1)"),
    )
    means = {r["method"]: r["mean_accuracy"] for r in average_by_method(rows)}
    # Non-tree models benefit less, but augmentation still should not lose
    # to the base table on average.
    assert means["AutoFeat"] >= means["BASE"] - 0.02
