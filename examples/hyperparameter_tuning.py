"""Dynamic hyper-parameter tuning (the paper's future-work direction).

Runs :class:`AutoFeatTuner` over a small (τ, κ) grid on the eyemove lake,
showing how the best configuration adapts to the lake's match rates
instead of relying on the global τ = 0.65 / κ = 15 defaults.

Run:  python examples/hyperparameter_tuning.py
"""

from repro.bench import print_table
from repro.core import AutoFeatConfig, AutoFeatTuner
from repro.datasets import benchmark_drg, build_dataset


def main() -> None:
    bundle = build_dataset("eyemove")
    drg = benchmark_drg(bundle)

    tuner = AutoFeatTuner(
        drg,
        base_config=AutoFeatConfig(sample_size=600, seed=1),
        taus=(0.4, 0.65, 0.9),
        kappas=(5, 15),
    )
    outcome = tuner.tune(bundle.base_name, bundle.label_column)

    rows = [
        {
            "tau": t.tau,
            "kappa": t.kappa,
            "accuracy": t.accuracy,
            "paths": t.n_paths,
            "fs_seconds": t.feature_selection_seconds,
        }
        for t in outcome.trials
    ]
    print_table(rows, title="Tuning grid (accuracy scored on top-1 path)")
    print()
    print(
        f"best configuration: tau={outcome.best_config.tau} "
        f"kappa={outcome.best_config.kappa} "
        f"(tuned in {outcome.total_seconds:.1f}s)"
    )
    print()
    print(outcome.best_result.summary())


if __name__ == "__main__":
    main()
