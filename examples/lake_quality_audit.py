"""Auditing a lake before augmentation.

Before pointing AutoFeat at a lake, a practitioner wants to know: how
complete is each table, which columns are junk (constant), which are key
material, and do the declared KFK constraints actually hold in the data?
This example runs that audit over a generated evaluation lake using the
data-quality module — the general form of the completeness statistic
AutoFeat's τ-pruning relies on.

Run:  python examples/lake_quality_audit.py
"""

from repro.bench import print_table
from repro.datasets import build_dataset
from repro.dataframe import quality_report, verify_key_constraint


def main() -> None:
    bundle = build_dataset("eyemove")
    tables = {t.name: t for t in bundle.tables}

    rows = []
    for table in bundle.tables:
        report = quality_report(table)
        rows.append(
            {
                "table": report.table_name,
                "rows": report.n_rows,
                "columns": len(report.columns),
                "completeness": round(report.completeness, 4),
                "constant_cols": len(report.constant_columns),
                "key_candidates": ", ".join(report.key_candidates[:3]),
            }
        )
    print_table(rows, title="Per-table quality")
    print()

    base_quality = quality_report(bundle.base_table)
    print_table(base_quality.rows(), title=f"Column quality: {bundle.base_name}")
    print()

    constraint_rows = []
    for constraint in bundle.constraints:
        constraint_rows.append(
            verify_key_constraint(
                tables[constraint.table_a],
                constraint.column_a,
                tables[constraint.table_b],
                constraint.column_b,
            )
        )
    print_table(constraint_rows, title="Declared KFK constraints vs the data")
    print()
    worst = min(constraint_rows, key=lambda r: r["coverage"])
    print(
        f"lowest referential coverage: {worst['parent']} -> {worst['child']} "
        f"at {worst['coverage']:.2%} — joins through it will carry "
        f"~{1 - worst['coverage']:.0%} nulls, which is what AutoFeat's "
        "tau threshold prunes on."
    )


if __name__ == "__main__":
    main()
