"""Working with an on-disk CSV lake.

Persists a generated evaluation lake as a directory of CSV files (the way
real open-data lakes arrive), reads it back with the table engine, runs
schema-matching discovery over the files and augments the base table —
the full cold-start workflow a downstream user would follow.

Run:  python examples/csv_lake_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro import AutoFeat, AutoFeatConfig, DatasetRelationGraph
from repro.dataframe import read_csv, write_csv
from repro.datasets import build_dataset, rename_for_lake
from repro.discovery import ComaMatcher


def main() -> None:
    bundle = build_dataset("eyemove")
    lake_tables = rename_for_lake(bundle)

    with tempfile.TemporaryDirectory(prefix="repro_lake_") as tmp:
        lake_dir = Path(tmp)
        for table in lake_tables:
            write_csv(table, lake_dir / f"{table.name}.csv")
        files = sorted(lake_dir.glob("*.csv"))
        print(f"wrote {len(files)} CSV files to {lake_dir}")

        # Cold start: read every file back and discover relationships.
        tables = [read_csv(path) for path in files]
        drg = DatasetRelationGraph.from_discovery(
            tables, ComaMatcher(), threshold=0.55
        )
        print(f"rediscovered {drg.n_relationships} relationships\n")

        autofeat = AutoFeat(drg, AutoFeatConfig(seed=1))
        result = autofeat.augment(bundle.base_name, bundle.label_column)
        print(result.summary())


if __name__ == "__main__":
    main()
