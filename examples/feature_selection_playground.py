"""Feature-selection metric playground (the Section V empirical study).

Generates a synthetic dataset with known informative / redundant / noise
features, then shows how each relevance metric ranks them and how each
redundancy method reacts to a near-duplicate feature — the analysis that
led the paper to pick Spearman + MRMR.

Run:  python examples/feature_selection_playground.py
"""

import numpy as np

from repro.bench import print_table
from repro.datasets import make_classification
from repro.selection import (
    REDUNDANCY_METHODS,
    greedy_select,
    redundancy_score,
    relevance_scores,
)


def main() -> None:
    flat = make_classification(
        n_rows=1500, n_informative=4, n_redundant=2, n_noise=4, class_sep=1.8, seed=3
    )
    names = list(flat.features)
    X = np.column_stack([flat.features[n] for n in names])
    y = flat.label.astype(float)

    print("ground truth, weakest to strongest:", ", ".join(flat.relevance_order))
    print()

    rows = []
    for metric in ("information_gain", "symmetrical_uncertainty", "pearson", "spearman", "relief"):
        scores = relevance_scores(X, y, metric=metric)
        ranked = [names[j] for j in np.argsort(-scores)]
        rows.append({"metric": metric, "top_3": ", ".join(ranked[:3])})
    print_table(rows, title="Relevance metrics: top-3 ranked features")
    print()

    # A near-duplicate of the strongest feature: every redundancy method
    # should penalise it once the original is in the selected set.
    strongest = flat.relevance_order[-1]
    original = flat.features[strongest]
    duplicate = original + np.random.default_rng(0).normal(0, 0.01, len(original))
    rows = []
    for method in REDUNDANCY_METHODS:
        fresh = redundancy_score(duplicate, None, y, method).score
        against = redundancy_score(duplicate, original.reshape(-1, 1), y, method).score
        rows.append(
            {
                "method": method,
                "score_alone": round(fresh, 4),
                "score_vs_original": round(against, 4),
                "penalised": against < fresh,
            }
        )
    print_table(rows, title=f"Redundancy methods vs a duplicate of {strongest!r}")
    print()

    picked = greedy_select(X, y, k=4, method="mrmr")
    print("greedy MRMR selection order:", ", ".join(names[j] for j in picked))


if __name__ == "__main__":
    main()
