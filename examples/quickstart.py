"""Quickstart: the paper's Figure 2 running example, end to end.

A loan-approval base table is surrounded by four candidate tables; the
feature that actually predicts approval (the property value) sits two hops
away, behind a transitive join.  AutoFeat finds it, ranks the path first
and trains a model on the augmented table.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AutoFeat, AutoFeatConfig, DatasetRelationGraph, KFKConstraint, Table
from repro.ml import evaluate_accuracy


def build_lake(n: int = 800, seed: int = 7):
    """The Figure 2 lake: applicants + four candidate tables."""
    rng = np.random.default_rng(seed)
    applicant_id = np.arange(n)
    income = rng.normal(50, 15, n)
    property_id = np.arange(n)
    property_value = rng.normal(300, 80, n)
    # Loan approval depends on income AND the (transitive) property value.
    approval = (
        income / 15 + property_value / 80 + rng.normal(0, 0.5, n) > 5.3
    ).astype(int)

    applicants = Table(
        {
            "applicant_id": applicant_id,
            "income": income,
            "loan_approval": approval,
        },
        name="applicants",
    )
    personal = Table(
        {
            "applicant_id": applicant_id,
            "property_id": property_id,
            "n_children": rng.integers(0, 4, n),
        },
        name="personal_information",
    )
    property_values = Table(
        {
            "property_id": property_id,
            "value": property_value,
            "rooms": rng.integers(1, 8, n),
        },
        name="property_value",
    )
    credit = Table(
        {
            "applicant_id": applicant_id,
            "credit_score": rng.normal(600, 50, n),
        },
        name="credit_profile",
    )
    loan_history = Table(
        {
            "applicant_id": applicant_id,
            "past_defaults": rng.integers(0, 3, n),
        },
        name="loan_history",
    )
    constraints = [
        KFKConstraint("applicants", "applicant_id", "personal_information", "applicant_id"),
        KFKConstraint("personal_information", "property_id", "property_value", "property_id"),
        KFKConstraint("applicants", "applicant_id", "credit_profile", "applicant_id"),
        KFKConstraint("applicants", "applicant_id", "loan_history", "applicant_id"),
    ]
    tables = [applicants, personal, property_values, credit, loan_history]
    return DatasetRelationGraph.from_constraints(tables, constraints), applicants


def main() -> None:
    drg, applicants = build_lake()
    print(drg)

    base_accuracy = evaluate_accuracy(applicants, "loan_approval", "lightgbm", seed=1)
    print(f"BASE accuracy (no augmentation): {base_accuracy:.4f}\n")

    autofeat = AutoFeat(drg, AutoFeatConfig(kappa=10, top_k=3, seed=1))
    result = autofeat.augment("applicants", "loan_approval", model_name="lightgbm")

    print("Ranked join paths:")
    for trained in result.trained:
        print(f"  acc={trained.accuracy:.4f}  {trained.ranked.describe()}")
    print()
    from repro.core import explain

    print(explain(result))
    print()
    assert result.augmented_table is not None
    print("Augmented table columns:", result.augmented_table.column_names)
    improvement = result.accuracy - base_accuracy
    print(f"\nAccuracy improvement over BASE: {improvement:+.4f}")


if __name__ == "__main__":
    main()
