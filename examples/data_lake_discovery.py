"""Data-lake scenario: no declared keys, relationships are *discovered*.

Takes one of the Table II evaluation lakes (credit), discards its KFK
constraints, runs the COMA-style matcher at the paper's 0.55 threshold to
rebuild a noisy multigraph DRG, and compares AutoFeat with ARDA and MAB on
it — the Figure 6 scenario in miniature.

Run:  python examples/data_lake_discovery.py
"""

from repro.baselines import run_arda, run_autofeat, run_base, run_mab
from repro.bench import print_table
from repro.datasets import build_dataset, datalake_drg


def main() -> None:
    bundle = build_dataset("credit")
    print(
        f"lake {bundle.name!r}: base={bundle.base_name} "
        f"({bundle.n_tables} tables, {bundle.total_features} features)"
    )

    drg = datalake_drg(bundle)
    print(f"\ndiscovered relationships (threshold 0.55): {drg.n_relationships}")
    for edge in drg.graph.all_edges():
        print(
            f"  {edge.node_a}.{edge.column_a} <-> "
            f"{edge.node_b}.{edge.column_b}  score={edge.weight:.3f}"
        )

    rows = []
    rows.append(run_base(bundle.base_table, bundle.label_column, seed=1).row())
    for runner in (run_autofeat, run_arda, run_mab):
        rows.append(
            runner(drg, bundle.base_name, bundle.label_column, seed=1).row()
        )
    print()
    print_table(rows, title="Data-lake comparison (credit)")

    autofeat_row = next(r for r in rows if r["method"] == "AutoFeat")
    for row in rows:
        if row["method"] in ("ARDA", "MAB") and autofeat_row["fs_seconds"] > 0:
            speedup = row["fs_seconds"] / autofeat_row["fs_seconds"]
            print(
                f"AutoFeat feature selection is {speedup:.0f}x faster "
                f"than {row['method']}"
            )


if __name__ == "__main__":
    main()
