.PHONY: check test bench-engine

# Tier-1 tests + engine-cache micro-bench (smoke mode).
check:
	scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Full engine-cache benchmark (several lakes); writes BENCH_engine_cache.json.
bench-engine:
	PYTHONPATH=src python benchmarks/bench_engine_cache.py
