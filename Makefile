.PHONY: check test test-faults test-parallel test-service test-chunked test-anytime test-exp test-sketch trace-smoke exp-smoke bench-engine bench-selection bench-parallel bench-service bench-chunked bench-anytime bench-sketch

# Fault-isolation fast gate + tier-1 tests + engine-cache and
# selection-kernel micro-benches (smoke mode).
check:
	scripts/check.sh

test:
	PYTHONPATH=src python -m pytest -x -q

# Fast gate: just the fault-isolation suites (injector, policies, budgets).
test-faults:
	PYTHONPATH=src python -m pytest -q tests/engine tests/core -k fault

# Fast gate: parallel-backend parity/stress/manifest suites (threads and
# processes at max_workers=2, exercising the pickling path) plus the
# parallel-discovery micro-bench in smoke mode (parity-gated).
test-parallel:
	PYTHONPATH=src python -m pytest -q tests/engine/test_parallel_parity.py \
		tests/core/test_parallel_faults.py tests/obs/test_parallel_manifest.py
	PYTHONPATH=src python benchmarks/bench_parallel_discovery.py --smoke

# Fast gate: the always-on service suites (request queue, warm result
# cache, incremental DRG maintenance, surgical invalidation, the
# mutation-equivalence property suite) plus the service micro-bench in
# smoke mode (warm >=5x cold, warm/cold parity).
test-service:
	PYTHONPATH=src python -m pytest -q tests/service \
		tests/graph/test_drg_delta.py tests/discovery/test_incremental.py \
		tests/engine/test_hop_cache.py
	PYTHONPATH=src python benchmarks/bench_service.py --smoke

# Fast gate: dictionary-encoding + out-of-core suites (KeyDictionary
# interning and cross-table alignment, chunked executor, spill manager,
# encoded-vs-scalar hypothesis parity) plus the chunked-join micro-bench
# in smoke mode (kernel parity, >=2x build+probe speedup, spilling
# bounded-memory run).
test-chunked:
	PYTHONPATH=src python -m pytest -q tests/dataframe/test_encoding.py \
		tests/engine/test_chunked.py tests/engine/test_encoded_parity.py
	PYTHONPATH=src python benchmarks/bench_chunked_join.py --smoke

# Fast gate: anytime budgeted-navigation suites (UCB frontier, run
# budgets, hop/run deadline enforcement, budget-vs-full-BFS parity and
# monotone-regret hypothesis properties, service per-request budgets)
# plus the anytime micro-bench in smoke mode (degeneration and
# infinite-budget parity).
test-anytime:
	PYTHONPATH=src python -m pytest -q tests/core/test_anytime.py \
		tests/engine/test_deadlines.py tests/service/test_service.py
	PYTHONPATH=src python benchmarks/bench_anytime.py --smoke

# Observability smoke: traced diamond-lake run, manifest schema validation,
# chrome-trace export, obs CLI, and the <2% no-op tracer overhead gate.
trace-smoke:
	PYTHONPATH=src python scripts/trace_smoke.py

# Fast gate: experiment-orchestration suites (spec validation/fingerprints,
# append-only store + queries, resumable runner + failure isolation,
# regression detector + reports, bench CLI/reporting satellites).
test-exp:
	PYTHONPATH=src python -m pytest -q tests/exp tests/bench

# Fast gate: sketch-index suites (banding validation, LSH candidate
# index, filtered-matcher parity properties, containment-estimate
# statistics) plus the sketch-index micro-bench in smoke mode
# (bit-parity at recall 1.0, sub-quadratic pairs-scored growth).
test-sketch:
	PYTHONPATH=src python -m pytest -q tests/discovery -k "index or lsh"
	PYTHONPATH=src python benchmarks/bench_sketch_index.py --smoke

# End-to-end experiment-orchestration smoke: runs experiments/smoke.json
# against a scratch store (2 baseline sweeps, clean diff gate, kill/resume
# with exact fingerprint counters, injected-slowdown regression flag).
exp-smoke:
	scripts/exp_smoke.sh

# Full engine-cache benchmark (several lakes); writes BENCH_engine_cache.json.
bench-engine:
	PYTHONPATH=src python benchmarks/bench_engine_cache.py

# Full selection-kernel benchmark (kernels on vs off, parity-gated); writes
# BENCH_selection_kernels.json.
bench-selection:
	PYTHONPATH=src python benchmarks/bench_selection_kernels.py

# Full parallel-discovery benchmark (serial vs threads vs processes at 4
# workers; parity- and speedup-gated); writes BENCH_parallel_discovery.json.
bench-parallel:
	PYTHONPATH=src python benchmarks/bench_parallel_discovery.py

# Full service benchmark (warm requests vs cold single-shot, incremental
# mutation vs cold rebuild; parity- and speedup-gated); writes
# BENCH_service.json.
bench-service:
	PYTHONPATH=src python benchmarks/bench_service.py

# Full chunked-join benchmark (encoded kernels vs scalar over three lakes,
# discovery parity, 100k-row bounded-memory spill run; parity- and
# >=2x-speedup-gated); writes BENCH_chunked_join.json.
bench-chunked:
	PYTHONPATH=src python benchmarks/bench_chunked_join.py

# Full anytime benchmark (regret-vs-budget curve over covertype; parity-
# gated at infinite budget and >=2x-speedup-at-<=5%-regret-gated); writes
# BENCH_anytime.json.
bench-anytime:
	PYTHONPATH=src python benchmarks/bench_anytime.py

# Full sketch-index benchmark (paper-lake bit-parity for both exact
# matchers, 100-2000-table wide-lake scaling; recall-, slope- and
# >=5x-pruning-gated); writes BENCH_sketch_index.json.
bench-sketch:
	PYTHONPATH=src python benchmarks/bench_sketch_index.py
