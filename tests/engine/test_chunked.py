"""Out-of-core hop execution: chunked probes, spill round-trips, metrics."""

import glob
import os

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig
from repro.dataframe import Column, DType, JoinIndex, Table
from repro.engine import JoinEngine, SpillManager, chunked_left_join, estimate_table_bytes
from repro.engine.stats import EngineStats
from repro.graph import DatasetRelationGraph, KFKConstraint
from repro.obs.tracer import Tracer


def make_pair(n_left=500, n_right=120, seed=0):
    rng = np.random.default_rng(seed)
    left = Table(
        {
            "k": rng.integers(0, n_right * 2, n_left),
            "x": rng.normal(0, 1, n_left),
            "s": Column(
                np.array([f"v{i % 7}" for i in range(n_left)], dtype=object),
                dtype=DType.STRING,
            ),
        },
        name="L",
    )
    right = Table(
        {
            "k": rng.permutation(n_right * 2)[:n_right],
            "y": rng.normal(0, 1, n_right),
            "tag": Column(
                np.array([f"t{i % 5}" for i in range(n_right)], dtype=object),
                dtype=DType.STRING,
            ),
        },
        name="R",
    )
    return left, right


def tables_identical(a: Table, b: Table) -> bool:
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        if ca.dtype is not cb.dtype or not np.array_equal(ca.mask, cb.mask):
            return False
        if ca.dtype is DType.STRING:
            pairs = zip(ca.values, cb.values, ca.mask)
            if not all(m or x == y for x, y, m in pairs):
                return False
        elif not np.array_equal(ca.values[~ca.mask], cb.values[~cb.mask]):
            return False
    return True


class TestChunkedLeftJoin:
    @pytest.mark.parametrize("chunk_rows", [1, 7, 64, 499, 500, 1000])
    def test_bit_identical_to_one_shot(self, chunk_rows):
        left, right = make_pair()
        index = JoinIndex.build(right, "k", seed=3)
        whole = index.left_join(left, "k")
        chunked = chunked_left_join(index, left, "k", chunk_rows=chunk_rows)
        assert tables_identical(whole, chunked)

    def test_spill_path_identical_and_counted(self, tmp_path):
        left, right = make_pair(n_left=800)
        index = JoinIndex.build(right, "k", seed=1)
        whole = index.left_join(left, "k")
        stats = EngineStats()
        chunked = chunked_left_join(
            index,
            left,
            "k",
            chunk_rows=50,
            memory_budget_bytes=1,  # force every completed partition out
            spill_dir=str(tmp_path),
            stats=stats,
        )
        assert tables_identical(whole, chunked)
        assert stats.chunks_executed == 16
        assert stats.partitions_spilled > 0
        assert stats.spill_bytes_written > 0
        assert stats.spill_bytes_read == stats.spill_bytes_written
        assert stats.peak_resident_bytes > 0

    def test_no_budget_never_spills(self):
        left, right = make_pair()
        index = JoinIndex.build(right, "k", seed=0)
        stats = EngineStats()
        chunked_left_join(index, left, "k", chunk_rows=100, stats=stats)
        assert stats.chunks_executed == 5
        assert stats.partitions_spilled == 0
        assert stats.peak_resident_bytes > 0

    def test_spill_files_cleaned_up(self, tmp_path):
        left, right = make_pair()
        index = JoinIndex.build(right, "k", seed=0)
        chunked_left_join(
            index,
            left,
            "k",
            chunk_rows=50,
            memory_budget_bytes=1,
            spill_dir=str(tmp_path),
        )
        assert glob.glob(str(tmp_path / "**" / "*.pkl"), recursive=True) == []

    def test_small_table_takes_one_shot_path(self):
        left, right = make_pair(n_left=10)
        index = JoinIndex.build(right, "k", seed=0)
        stats = EngineStats()
        out = chunked_left_join(index, left, "k", chunk_rows=100, stats=stats)
        assert stats.chunks_executed == 0
        assert out.n_rows == 10

    def test_chunk_spans_and_spill_events(self, tmp_path):
        left, right = make_pair()
        index = JoinIndex.build(right, "k", seed=0)
        tracer = Tracer(enabled=True)
        with tracer.span("hop"):
            chunked_left_join(
                index,
                left,
                "k",
                chunk_rows=100,
                memory_budget_bytes=1,
                spill_dir=str(tmp_path),
                tracer=tracer,
            )
        names = [s.name for s in tracer.iter_spans()]
        assert names.count("chunk") == 5
        assert "concat" in names
        events = [e["name"] for s in tracer.iter_spans() for e in s.events]
        assert "spill" in events and "restore" in events


class TestSpillManager:
    def test_round_trip_preserves_everything(self, tmp_path):
        left, _ = make_pair(n_left=40)
        masked = left.with_column(
            "x",
            Column(
                left.column("x").values,
                dtype=DType.FLOAT,
                mask=np.arange(40) % 3 == 0,
            ),
        )
        with SpillManager(str(tmp_path)) as spiller:
            handle = spiller.spill(masked)
            restored = spiller.restore(handle)
            assert tables_identical(masked, restored)
            assert spiller.partitions_spilled == 1
            assert spiller.bytes_written > 0
            assert spiller.bytes_read == spiller.bytes_written

    def test_close_removes_directory(self, tmp_path):
        left, _ = make_pair(n_left=5)
        spiller = SpillManager(str(tmp_path))
        spiller.spill(left)
        assert len(os.listdir(tmp_path)) == 1
        spiller.close()
        assert os.listdir(tmp_path) == []

    def test_estimate_is_positive_and_monotone(self):
        left, _ = make_pair(n_left=100)
        small = left.take(np.arange(10))
        assert 0 < estimate_table_bytes(small) < estimate_table_bytes(left)


def chunky_lake(n=600, seed=5):
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    a_key = rng.permutation(n) + 1_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {"id": ids, "a_key": a_key, "weak": rng.normal(0, 1, n), "label": label},
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
        ],
    )


class TestEngineIntegration:
    def test_materialize_path_parity_and_counters(self, tmp_path):
        drg = chunky_lake()
        plain = JoinEngine(drg, seed=7)
        chunked = JoinEngine(
            drg,
            seed=7,
            chunk_rows=100,
            memory_budget_bytes=1,
            spill_dir=str(tmp_path),
        )
        from repro.graph import JoinPath

        path = JoinPath("base").extend(drg.best_join_options("base", "a")[0])
        base = drg.table("base")
        expect, _ = plain.materialize_path(path, base)
        got, _ = chunked.materialize_path(path, base)
        assert tables_identical(expect, got)
        snap = chunked.snapshot()
        assert snap.chunks_executed == 6
        assert snap.partitions_spilled > 0
        assert snap.spill_bytes_written > 0
        assert snap.peak_resident_bytes > 0
        assert plain.snapshot().chunks_executed == 0

    def test_worker_view_inherits_chunk_knobs(self, tmp_path):
        engine = JoinEngine(
            chunky_lake(),
            chunk_rows=64,
            memory_budget_bytes=123,
            spill_dir=str(tmp_path),
            use_dict_keys=False,
        )
        view = engine.worker_view()
        assert view.chunk_rows == 64
        assert view.memory_budget_bytes == 123
        assert view.spill_dir == str(tmp_path)
        assert view.use_dict_keys is False

    def test_discover_parity_chunked_vs_in_core(self, tmp_path):
        drg = chunky_lake()
        base_cfg = AutoFeatConfig(sample_size=200, enable_tracing=False, seed=2)
        plain = AutoFeat(drg, config=base_cfg).discover("base", "label")
        chunked = AutoFeat(
            drg,
            config=base_cfg.with_overrides(
                chunk_rows=64,
                memory_budget_bytes=4096,
                spill_dir=str(tmp_path),
            ),
        ).discover("base", "label")
        assert [
            (p.path.describe(), round(p.score, 12)) for p in plain.ranked_paths
        ] == [(p.path.describe(), round(p.score, 12)) for p in chunked.ranked_paths]
        assert chunked.engine_stats.chunks_executed > 0

    def test_stats_publish_and_roundtrip(self):
        from repro.engine.stats import ExecutionStats
        from repro.obs.metrics import MetricsRegistry

        stats = ExecutionStats(
            hops_executed=2,
            chunks_executed=5,
            partitions_spilled=3,
            spill_bytes_written=100,
            spill_bytes_read=100,
            peak_resident_bytes=77,
        )
        registry = stats.publish(MetricsRegistry())
        assert registry.value("engine.chunks_executed") == 5
        assert registry.value("engine.partitions_spilled") == 3
        assert registry.value("engine.peak_resident_bytes") == 77
        assert ExecutionStats.from_dict(stats.as_dict()) == stats
        merged = stats.merged(ExecutionStats(peak_resident_bytes=50, chunks_executed=1))
        assert merged.chunks_executed == 6
        assert merged.peak_resident_bytes == 77  # max, not sum

    def test_config_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="chunk_rows"):
            AutoFeatConfig(chunk_rows=0)
        with pytest.raises(ConfigError, match="memory_budget_bytes"):
            AutoFeatConfig(memory_budget_bytes=-1)

    def test_encode_counters_on_shared_cache(self):
        from repro.engine import HopCache

        drg = chunky_lake()
        cache = HopCache()
        engine = JoinEngine(drg, cache=cache)
        edge = drg.best_join_options("base", "a")[0]
        engine.hop_index(edge)
        engine.hop_index(edge)
        counters = cache.counters()
        assert counters["encode_misses"] == 1
        assert counters["encode_hits"] == 1
