"""JoinEngine: cached/uncached parity, exact stats, and error diagnostics.

The fixture lake is a *diamond*: the signal table ``c`` is reachable both
through ``a`` and through ``b``, so the discovery BFS must build the same
``(c, shared_key)`` join index on two different paths — exactly the
cross-path reuse the HopCache exists for.
"""

import numpy as np
import pytest

from repro.core import AutoFeat, AutoFeatConfig, apply_hop, materialize_path
from repro.dataframe import Table
from repro.engine import JoinEngine
from repro.errors import JoinError
from repro.graph import DatasetRelationGraph, JoinPath, KFKConstraint, OrientedEdge


def diamond_lake(n=400, seed=3):
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    a_key = rng.permutation(n) + 1_000
    b_key = rng.permutation(n) + 5_000
    shared = rng.permutation(n) + 9_000
    signal = rng.normal(0, 1, n)
    label = ((signal + rng.normal(0, 0.3, n)) > 0).astype(int)
    base = Table(
        {
            "id": ids,
            "a_key": a_key,
            "b_key": b_key,
            "weak": rng.normal(0, 1, n),
            "label": label,
        },
        name="base",
    )
    a = Table(
        {"a_key": a_key, "shared_key": shared, "a_noise": rng.normal(0, 1, n)},
        name="a",
    )
    b = Table(
        {"b_key": b_key, "shared_key": shared, "b_noise": rng.normal(0, 1, n)},
        name="b",
    )
    c = Table({"shared_key": shared, "signal": signal}, name="c")
    return DatasetRelationGraph.from_constraints(
        [base, a, b, c],
        [
            KFKConstraint("base", "a_key", "a", "a_key"),
            KFKConstraint("base", "b_key", "b", "b_key"),
            KFKConstraint("a", "shared_key", "c", "shared_key"),
            KFKConstraint("b", "shared_key", "c", "shared_key"),
        ],
    )


@pytest.fixture(scope="module")
def drg():
    return diamond_lake()


def discover(drg, cached: bool):
    config = AutoFeatConfig(sample_size=200, seed=1, enable_hop_cache=cached)
    return AutoFeat(drg, config).discover("base", "label")


@pytest.fixture(scope="module")
def cached_discovery(drg):
    return discover(drg, cached=True)


@pytest.fixture(scope="module")
def uncached_discovery(drg):
    return discover(drg, cached=False)


def ranking_fingerprint(discovery):
    return [
        (
            r.path.describe(),
            r.score,
            r.selected_features,
            r.relevance_scores,
            r.redundancy_scores,
            r.completeness,
        )
        for r in discovery.ranked_paths
    ]


class TestCachedUncachedParity:
    def test_identical_rankings_and_scores(self, cached_discovery, uncached_discovery):
        assert ranking_fingerprint(cached_discovery) == ranking_fingerprint(
            uncached_discovery
        )

    def test_identical_materialisation(self, drg, cached_discovery):
        base = drg.table("base")
        path = cached_discovery.best_path.path
        with_cache = JoinEngine(drg, seed=1, enable_cache=True)
        without_cache = JoinEngine(drg, seed=1, enable_cache=False)
        table_on, cols_on = with_cache.materialize_path(path, base)
        table_off, cols_off = without_cache.materialize_path(path, base)
        assert table_on == table_off
        assert cols_on == cols_off

    def test_signal_found_through_diamond(self, cached_discovery):
        best = cached_discovery.best_path
        assert best.path.terminal == "c"
        all_selected = set()
        for ranked in cached_discovery.ranked_paths:
            all_selected.update(ranked.selected_features)
        assert "c.signal" in all_selected


class TestEngineStats:
    """Exact counter accounting over the diamond's six frontier hops.

    Hops: base->a, base->b, base->a->c, base->b->c, base->a->c->b,
    base->b->c->a.  Distinct build keys: (a, a_key), (b, b_key),
    (c, shared_key), (b, shared_key), (a, shared_key) — five builds, and
    the second arrival at (c, shared_key) is the one cache hit.
    """

    def test_cached_stats_exact(self, cached_discovery):
        stats = cached_discovery.engine_stats
        assert stats.hops_executed == 6
        assert stats.index_builds == 5
        assert stats.cache_hits == 1
        assert stats.cache_misses == 5
        assert stats.index_builds < stats.hops_executed
        assert stats.cache_hit_rate > 0
        assert stats.rows_probed == 6 * 200

    def test_uncached_stats_exact(self, uncached_discovery):
        stats = uncached_discovery.engine_stats
        assert stats.hops_executed == 6
        assert stats.index_builds == 6
        assert stats.cache_hits == stats.cache_misses == 0
        assert stats.cache_hit_rate == 0.0

    def test_explored_equals_hops(self, cached_discovery, uncached_discovery):
        assert cached_discovery.n_paths_explored == 6
        assert uncached_discovery.n_paths_explored == 6

    def test_training_phase_stats_on_augmentation_result(self, drg):
        config = AutoFeatConfig(sample_size=200, seed=1, top_k=2)
        result = AutoFeat(drg, config).augment("base", "label", model_name="knn")
        assert result.engine_stats.hops_executed >= 2
        assert result.combined_engine_stats.hops_executed == (
            result.discovery.engine_stats.hops_executed
            + result.engine_stats.hops_executed
        )
        assert "engine:" in result.summary()


class TestModuleLevelWrappers:
    def test_apply_hop_matches_engine(self, drg):
        base = drg.table("base")
        edge = drg.best_join_options("base", "a")[0]
        via_wrapper = apply_hop(base, drg, edge, "base", 1)
        via_engine = JoinEngine(drg, seed=1).apply_hop(base, edge, "base")
        assert via_wrapper[0] == via_engine[0]
        assert via_wrapper[1] == via_engine[1]

    def test_materialize_path_matches_engine(self, drg, cached_discovery):
        base = drg.table("base")
        path = cached_discovery.best_path.path
        via_wrapper, __ = materialize_path(drg, path, base, seed=1)
        via_engine, __ = JoinEngine(drg, seed=1).materialize_path(path, base)
        assert via_wrapper == via_engine


class TestJoinErrorContext:
    """The path-context satellite: pruned-path diagnostics are actionable."""

    def test_missing_source_column_names_base_path_and_edge(self, drg):
        base = drg.table("base")
        hop1 = drg.best_join_options("base", "a")[0]
        hop2 = drg.best_join_options("a", "c")[0]
        walked = JoinPath("base").extend(hop1)
        # Apply the second hop to the *bare* base table: 'a.shared_key' is
        # not available, which is exactly the spurious-edge pruning case.
        with pytest.raises(JoinError) as excinfo:
            JoinEngine(drg, seed=1).apply_hop(base, hop2, "base", path=walked)
        message = str(excinfo.value)
        assert "'a.shared_key'" in message
        assert "base='base'" in message
        assert "base.a_key -> a.a_key" in message  # the hop sequence walked
        assert "a.shared_key -> c.shared_key" in message  # the failing edge

    def test_context_at_base_has_placeholder_path(self, drg):
        base = drg.table("base").select(["id", "label"])
        edge = drg.best_join_options("base", "a")[0]
        with pytest.raises(JoinError) as excinfo:
            JoinEngine(drg, seed=1).apply_hop(base, edge, "base")
        assert "(at base)" in str(excinfo.value)

    def test_missing_target_column_is_wrapped_with_context(self, drg):
        base = drg.table("base")
        bogus = OrientedEdge(
            source="base",
            target="a",
            source_column="a_key",
            target_column="no_such_column",
            weight=1.0,
        )
        with pytest.raises(JoinError) as excinfo:
            JoinEngine(drg, seed=1).apply_hop(base, bogus, "base")
        message = str(excinfo.value)
        assert "failing edge" in message
        assert "base.a_key -> a.no_such_column" in message
