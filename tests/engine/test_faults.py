"""Unit tests for the fault-isolation layer: injector, budgets, manager."""

import numpy as np
import pytest

from repro.dataframe import Table
from repro.engine import (
    FailureReport,
    FaultInjector,
    FaultManager,
    JoinEngine,
)
from repro.errors import (
    ConfigError,
    ErrorBudgetExceeded,
    FaultError,
    HopBudgetExceeded,
    InjectedFaultError,
    JoinError,
)
from repro.graph import DatasetRelationGraph, KFKConstraint


def tiny_drg(n=50, seed=0):
    rng = np.random.default_rng(seed)
    ids = np.arange(n)
    base = Table(
        {"id": ids, "x": rng.normal(0, 1, n), "label": rng.integers(0, 2, n)},
        name="base",
    )
    sat = Table({"id": ids, "y": rng.normal(0, 1, n)}, name="sat")
    return DatasetRelationGraph.from_constraints(
        [base, sat], [KFKConstraint("base", "id", "sat", "id")]
    )


@pytest.fixture()
def drg():
    return tiny_drg()


@pytest.fixture()
def edge(drg):
    return drg.best_join_options("base", "sat")[0]


class TestFaultInjector:
    def test_deterministic_across_instances(self, edge):
        kinds = [
            FaultInjector(failure_probability=0.5, seed=s).fault_kind(edge)
            for s in range(20)
        ]
        again = [
            FaultInjector(failure_probability=0.5, seed=s).fault_kind(edge)
            for s in range(20)
        ]
        assert kinds == again
        assert any(k == "failure" for k in kinds)
        assert any(k is None for k in kinds)

    def test_probability_zero_never_fires(self, edge):
        injector = FaultInjector(failure_probability=0.0, seed=0)
        for __ in range(5):
            injector.check(edge)  # must not raise

    def test_probability_one_always_fires_typed(self, edge):
        injector = FaultInjector(failure_probability=1.0, seed=0)
        with pytest.raises(InjectedFaultError):
            injector.check(edge)

    def test_timeout_kind_raises_hop_budget_exceeded(self, edge):
        injector = FaultInjector(timeout_probability=1.0, seed=0)
        assert injector.fault_kind(edge) == "timeout"
        with pytest.raises(HopBudgetExceeded):
            injector.check(edge)

    def test_recover_after_makes_fault_transient(self, edge):
        injector = FaultInjector(
            failure_probability=1.0, seed=0, recover_after=2
        )
        for __ in range(2):
            with pytest.raises(InjectedFaultError):
                injector.check(edge)
        injector.check(edge)  # third attempt recovers
        injector.reset()
        with pytest.raises(InjectedFaultError):
            injector.check(edge)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(failure_probability=1.5)
        with pytest.raises(ConfigError):
            FaultInjector(failure_probability=0.7, timeout_probability=0.7)

    def test_faulty_edges_subset(self, drg, edge):
        injector = FaultInjector(failure_probability=1.0, seed=0)
        assert injector.faulty_edges([edge]) == [edge]
        assert FaultInjector(seed=0).faulty_edges([edge]) == []


class TestEngineHopBudgets:
    def test_row_cap_raises_typed_error_with_context(self, drg, edge):
        engine = JoinEngine(drg, seed=0, max_output_rows=10)
        with pytest.raises(HopBudgetExceeded) as excinfo:
            engine.apply_hop(drg.table("base"), edge, "base")
        message = str(excinfo.value)
        assert "max_output_rows=10" in message
        assert "base.id -> sat.id" in message

    def test_row_cap_allows_bounded_hops(self, drg, edge):
        engine = JoinEngine(drg, seed=0, max_output_rows=50)
        joined, contributed = engine.apply_hop(drg.table("base"), edge, "base")
        assert "sat.y" in contributed
        assert joined.n_rows == 50

    def test_wall_clock_budget_raises_typed_error(self, drg, edge):
        # A zero budget is exceeded by any real hop: the cooperative check
        # fires after the work and raises instead of letting a run hang
        # hop after hop.
        engine = JoinEngine(drg, seed=0, hop_timeout_seconds=0.0)
        with pytest.raises(HopBudgetExceeded) as excinfo:
            engine.apply_hop(drg.table("base"), edge, "base")
        assert "wall-clock budget" in str(excinfo.value)

    def test_injector_fault_carries_hop_context(self, drg, edge):
        engine = JoinEngine(
            drg,
            seed=0,
            fault_injector=FaultInjector(failure_probability=1.0, seed=0),
        )
        with pytest.raises(InjectedFaultError) as excinfo:
            engine.apply_hop(drg.table("base"), edge, "base")
        message = str(excinfo.value)
        assert "injected join failure" in message
        assert "base='base'" in message

    def test_budget_errors_are_fault_not_join_errors(self):
        assert issubclass(HopBudgetExceeded, FaultError)
        assert issubclass(InjectedFaultError, FaultError)
        assert issubclass(ErrorBudgetExceeded, FaultError)
        assert not issubclass(FaultError, JoinError)


class TestFaultManager:
    def test_fail_fast_propagates(self):
        manager = FaultManager(policy="fail_fast")

        def boom():
            raise JoinError("boom")

        with pytest.raises(JoinError):
            manager.execute(boom, stage="test")
        assert manager.n_failures == 0

    def test_skip_and_record_returns_none_and_records(self, edge):
        manager = FaultManager(policy="skip_and_record", stage="test")

        def boom():
            raise HopBudgetExceeded("too big")

        assert manager.execute(boom, base="base", edge=edge) is None
        report = manager.report()
        assert report.n_failures == 1
        record = report.records[0]
        assert record.error_kind == "HopBudgetExceeded"
        assert record.stage == "test"
        assert record.edge == "base.id->sat.id"
        assert record.retries == 0

    def test_unmanaged_kinds_propagate(self):
        manager = FaultManager(policy="skip_and_record")

        def boom():
            raise JoinError("prune me instead")

        with pytest.raises(JoinError):
            manager.execute(boom, kinds=(FaultError,))
        assert manager.n_failures == 0

    def test_successful_fn_passes_through(self):
        manager = FaultManager(policy="skip_and_record")
        assert manager.execute(lambda: 42) == 42
        assert manager.report().ok

    def test_error_budget_exhaustion_aborts(self):
        manager = FaultManager(policy="skip_and_record", error_budget=2)

        def boom():
            raise JoinError("boom")

        manager.execute(boom)
        manager.execute(boom)
        with pytest.raises(ErrorBudgetExceeded):
            manager.execute(boom)

    def test_retry_recovers_transient_failures(self):
        manager = FaultManager(policy="retry", max_retries=2)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise JoinError("transient")
            return "ok"

        assert manager.execute(flaky) == "ok"
        assert len(attempts) == 3
        assert manager.report().ok

    def test_retry_respects_budget_then_records(self):
        manager = FaultManager(policy="retry", max_retries=2)
        attempts = []

        def always_bad():
            attempts.append(1)
            raise JoinError("permanent")

        assert manager.execute(always_bad) is None
        assert len(attempts) == 3  # 1 try + 2 retries, no more
        record = manager.report().records[0]
        assert record.retries == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            FaultManager(policy="shrug")


class TestFailureReport:
    def test_empty_report_describe(self):
        report = FailureReport(policy="skip_and_record")
        assert report.ok
        assert "none" in report.describe()

    def test_by_kind_and_describe(self):
        manager = FaultManager(policy="skip_and_record", stage="s")

        def join_boom():
            raise JoinError("a")

        def budget_boom():
            raise HopBudgetExceeded("b")

        manager.execute(join_boom)
        manager.execute(join_boom)
        manager.execute(budget_boom)
        report = manager.report()
        assert report.by_kind() == {"JoinError": 2, "HopBudgetExceeded": 1}
        assert "JoinError x2" in report.describe()

    def test_merged_concatenates_records(self):
        a = FaultManager(policy="skip_and_record", stage="a")
        b = FaultManager(policy="skip_and_record", stage="b")

        def boom():
            raise JoinError("x")

        a.execute(boom)
        b.execute(boom)
        merged = a.report().merged(b.report())
        assert merged.n_failures == 2
        assert [r.stage for r in merged.records] == ["a", "b"]
