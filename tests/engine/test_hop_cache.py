"""Exact accounting of the cross-path hop cache."""

from repro.engine import EngineStats, ExecutionStats, HopCache


class CountingBuilder:
    """Stands in for the JoinIndex build phase; counts invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return object()


class TestEnabledCache:
    def test_miss_then_hit(self):
        cache, stats, builder = HopCache(), EngineStats(), CountingBuilder()
        first = cache.get_or_build("t", "t.k", 0, builder, stats)
        second = cache.get_or_build("t", "t.k", 0, builder, stats)
        assert first is second
        assert builder.calls == 1
        assert (stats.index_builds, stats.cache_hits, stats.cache_misses) == (1, 1, 1)
        assert len(cache) == 1
        assert ("t", "t.k", 0) in cache

    def test_distinct_keys_build_separately(self):
        cache, stats, builder = HopCache(), EngineStats(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder, stats)
        cache.get_or_build("t", "t.other", 0, builder, stats)  # other key column
        cache.get_or_build("u", "t.k", 0, builder, stats)  # other table
        cache.get_or_build("t", "t.k", 1, builder, stats)  # other seed
        assert builder.calls == 4
        assert stats.cache_misses == 4
        assert stats.cache_hits == 0
        assert len(cache) == 4

    def test_clear_forces_rebuild(self):
        cache, builder = HopCache(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_build("t", "t.k", 0, builder)
        assert builder.calls == 2

    def test_stats_optional(self):
        cache, builder = HopCache(), CountingBuilder()
        assert cache.get_or_build("t", "t.k", 0, builder) is cache.get_or_build(
            "t", "t.k", 0, builder
        )


class TestDisabledCache:
    def test_every_lookup_builds_and_nothing_is_counted_as_cache_traffic(self):
        cache, stats, builder = HopCache(enabled=False), EngineStats(), CountingBuilder()
        a = cache.get_or_build("t", "t.k", 0, builder, stats)
        b = cache.get_or_build("t", "t.k", 0, builder, stats)
        assert a is not b
        assert builder.calls == 2
        assert stats.index_builds == 2
        assert stats.cache_hits == stats.cache_misses == 0
        assert len(cache) == 0


class TestStats:
    def test_snapshot_freezes_counters(self):
        stats = EngineStats(hops_executed=3, index_builds=2, cache_hits=1,
                            cache_misses=2, rows_probed=300)
        snap = stats.snapshot()
        stats.hops_executed = 99
        assert snap.hops_executed == 3
        assert snap.cache_lookups == 3
        assert snap.cache_hit_rate == 1 / 3

    def test_hit_rate_zero_without_lookups(self):
        assert ExecutionStats().cache_hit_rate == 0.0

    def test_merged_sums_counterwise(self):
        a = ExecutionStats(hops_executed=2, index_builds=1, cache_hits=1,
                           cache_misses=1, rows_probed=10)
        b = ExecutionStats(hops_executed=3, index_builds=3, cache_hits=0,
                           cache_misses=3, rows_probed=5)
        merged = a.merged(b)
        assert merged == ExecutionStats(hops_executed=5, index_builds=4,
                                        cache_hits=1, cache_misses=4,
                                        rows_probed=15)

    def test_as_dict_reports_hit_rate(self):
        stats = ExecutionStats(hops_executed=4, index_builds=3, cache_hits=1,
                               cache_misses=3, rows_probed=40)
        row = stats.as_dict()
        assert row["cache_hit_rate"] == 0.25
        assert row["index_builds"] == 3
