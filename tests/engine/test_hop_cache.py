"""Exact accounting of the cross-path hop cache."""

from repro.engine import EngineStats, ExecutionStats, HopCache


class CountingBuilder:
    """Stands in for the JoinIndex build phase; counts invocations."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return object()


class TestEnabledCache:
    def test_miss_then_hit(self):
        cache, stats, builder = HopCache(), EngineStats(), CountingBuilder()
        first = cache.get_or_build("t", "t.k", 0, builder, stats)
        second = cache.get_or_build("t", "t.k", 0, builder, stats)
        assert first is second
        assert builder.calls == 1
        assert (stats.index_builds, stats.cache_hits, stats.cache_misses) == (1, 1, 1)
        assert len(cache) == 1
        assert ("t", "t.k", 0) in cache

    def test_distinct_keys_build_separately(self):
        cache, stats, builder = HopCache(), EngineStats(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder, stats)
        cache.get_or_build("t", "t.other", 0, builder, stats)  # other key column
        cache.get_or_build("u", "t.k", 0, builder, stats)  # other table
        cache.get_or_build("t", "t.k", 1, builder, stats)  # other seed
        assert builder.calls == 4
        assert stats.cache_misses == 4
        assert stats.cache_hits == 0
        assert len(cache) == 4

    def test_clear_forces_rebuild(self):
        cache, builder = HopCache(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder)
        cache.clear()
        assert len(cache) == 0
        cache.get_or_build("t", "t.k", 0, builder)
        assert builder.calls == 2

    def test_stats_optional(self):
        cache, builder = HopCache(), CountingBuilder()
        assert cache.get_or_build("t", "t.k", 0, builder) is cache.get_or_build(
            "t", "t.k", 0, builder
        )


class TestDisabledCache:
    def test_every_lookup_builds_and_nothing_is_counted_as_cache_traffic(self):
        cache, stats, builder = HopCache(enabled=False), EngineStats(), CountingBuilder()
        a = cache.get_or_build("t", "t.k", 0, builder, stats)
        b = cache.get_or_build("t", "t.k", 0, builder, stats)
        assert a is not b
        assert builder.calls == 2
        assert stats.index_builds == 2
        assert stats.cache_hits == stats.cache_misses == 0
        assert len(cache) == 0


class TestStats:
    def test_snapshot_freezes_counters(self):
        stats = EngineStats(hops_executed=3, index_builds=2, cache_hits=1,
                            cache_misses=2, rows_probed=300)
        snap = stats.snapshot()
        stats.hops_executed = 99
        assert snap.hops_executed == 3
        assert snap.cache_lookups == 3
        assert snap.cache_hit_rate == 1 / 3

    def test_hit_rate_zero_without_lookups(self):
        assert ExecutionStats().cache_hit_rate == 0.0

    def test_merged_sums_counterwise(self):
        a = ExecutionStats(hops_executed=2, index_builds=1, cache_hits=1,
                           cache_misses=1, rows_probed=10)
        b = ExecutionStats(hops_executed=3, index_builds=3, cache_hits=0,
                           cache_misses=3, rows_probed=5)
        merged = a.merged(b)
        assert merged == ExecutionStats(hops_executed=5, index_builds=4,
                                        cache_hits=1, cache_misses=4,
                                        rows_probed=15)

    def test_as_dict_reports_hit_rate(self):
        stats = ExecutionStats(hops_executed=4, index_builds=3, cache_hits=1,
                               cache_misses=3, rows_probed=40)
        row = stats.as_dict()
        assert row["cache_hit_rate"] == 0.25
        assert row["index_builds"] == 3


class SlowBuilder:
    """A builder that parks inside the build phase so threads pile up."""

    def __init__(self, delay=0.05, fail_times=0):
        import threading

        self.calls = 0
        self.delay = delay
        self.fail_times = fail_times
        self._lock = threading.Lock()

    def __call__(self):
        import time

        with self._lock:
            self.calls += 1
            call = self.calls
        time.sleep(self.delay)
        if call <= self.fail_times:
            raise RuntimeError(f"build {call} failed")
        return ("index", call)


class TestThreadSafety:
    """Regression tests for the latent single-threaded-mutation bug.

    Before the single-flight rewrite, concurrent probes of a cold key
    could each run the builder (double materialisation) and interleave
    counter updates; these tests pin the exact-accounting contract the
    parallel backends rely on.
    """

    N_THREADS = 8

    def _race(self, cache, builder, n_threads=N_THREADS):
        import threading

        from repro.engine import EngineStats

        stats = [EngineStats() for _ in range(n_threads)]
        results = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def probe(i):
            barrier.wait()
            results[i] = cache.get_or_build("t", "t.k", 0, builder, stats[i])

        threads = [
            threading.Thread(target=probe, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results, stats

    def test_cold_key_is_built_exactly_once_under_contention(self):
        from repro.engine import HopCache

        cache, builder = HopCache(), SlowBuilder()
        results, _ = self._race(cache, builder)
        assert builder.calls == 1, "cold key was double-materialised"
        assert all(r is results[0] for r in results)
        assert len(cache) == 1

    def test_counters_stay_exact_under_contention(self):
        from repro.engine import ExecutionStats, HopCache

        cache, builder = HopCache(), SlowBuilder()
        _, stats = self._race(cache, builder)
        merged = ExecutionStats.merge(s.snapshot() for s in stats)
        # Identical totals to a serial sequence of the same lookups:
        # one miss + one build for the cold key, a hit for everyone else.
        assert merged.index_builds == 1
        assert merged.cache_misses == 1
        assert merged.cache_hits == self.N_THREADS - 1

    def test_waiters_retry_when_the_elected_builder_fails(self):
        import threading

        from repro.engine import EngineStats, HopCache

        cache = HopCache()
        builder = SlowBuilder(delay=0.02, fail_times=1)
        n = 4
        stats = [EngineStats() for _ in range(n)]
        results = [None] * n
        errors = [None] * n
        barrier = threading.Barrier(n)

        def probe(i):
            barrier.wait()
            try:
                results[i] = cache.get_or_build("t", "t.k", 0, builder, stats[i])
            except RuntimeError as exc:
                errors[i] = exc

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one thread surfaced the deterministic build error; the
        # waiters re-ran the lookup and one of them rebuilt successfully.
        assert sum(e is not None for e in errors) == 1
        built = [r for r in results if r is not None]
        assert built and all(r is built[0] for r in built)
        assert builder.calls == 2
        assert len(cache) == 1

    def test_distinct_keys_build_concurrently_without_cross_talk(self):
        import threading

        from repro.engine import EngineStats, ExecutionStats, HopCache

        cache = HopCache()
        builders = [SlowBuilder(delay=0.01) for _ in range(4)]
        stats = [EngineStats() for _ in range(8)]
        barrier = threading.Barrier(8)

        def probe(i):
            barrier.wait()
            cache.get_or_build(f"t{i % 4}", "t.k", 0, builders[i % 4], stats[i])

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [b.calls for b in builders] == [1, 1, 1, 1]
        merged = ExecutionStats.merge(s.snapshot() for s in stats)
        assert merged.index_builds == 4
        assert merged.cache_misses == 4
        assert merged.cache_hits == 4
        assert len(cache) == 4


class TestInvalidation:
    """Per-table surgical invalidation: the always-on service's mutation hook."""

    def test_invalidate_drops_only_that_tables_entries(self):
        cache, builder = HopCache(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder)
        cache.get_or_build("t", "t.other", 1, builder)
        cache.get_or_build("u", "u.k", 0, builder)
        dropped = cache.invalidate("t")
        assert dropped == 2
        assert len(cache) == 1
        assert ("u", "u.k", 0) in cache
        assert ("t", "t.k", 0) not in cache

    def test_invalidate_unknown_table_is_a_counted_noop(self):
        cache = HopCache()
        assert cache.invalidate("ghost") == 0
        assert cache.counters()["invalidations"] == 1
        assert cache.counters()["entries_invalidated"] == 0

    def test_lifetime_counters_and_hit_rate(self):
        cache, builder = HopCache(), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder)
        cache.get_or_build("t", "t.k", 0, builder)
        cache.get_or_build("t", "t.k", 0, builder)
        cache.invalidate("t")
        cache.get_or_build("t", "t.k", 0, builder)
        counters = cache.counters()
        assert counters["hits"] == 2
        assert counters["misses"] == 2
        assert counters["builds"] == 2
        assert counters["invalidations"] == 1
        assert counters["entries_invalidated"] == 1
        assert cache.hit_rate == 0.5

    def test_disabled_cache_still_counts_builds(self):
        cache, builder = HopCache(enabled=False), CountingBuilder()
        cache.get_or_build("t", "t.k", 0, builder)
        assert cache.counters()["builds"] == 1
        assert cache.counters()["hits"] == cache.counters()["misses"] == 0

    def test_concurrent_invalidation_keeps_counters_exact(self):
        import threading

        cache = HopCache()
        builder = SlowBuilder(delay=0.002)
        n_loops, n_threads = 25, 4
        barrier = threading.Barrier(n_threads + 1)

        def prober():
            barrier.wait()
            for _ in range(n_loops):
                cache.get_or_build("t", "t.k", 0, builder)

        def invalidator():
            barrier.wait()
            for _ in range(n_loops):
                cache.invalidate("t")

        threads = [threading.Thread(target=prober) for _ in range(n_threads)]
        threads.append(threading.Thread(target=invalidator))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counters = cache.counters()
        # Conservation laws that hold under any interleaving: every
        # lookup is a hit or a miss, every miss elects one builder, and
        # nothing invalidated is ever double-counted.
        assert counters["hits"] + counters["misses"] == n_loops * n_threads
        assert counters["builds"] == counters["misses"]
        assert builder.calls == counters["builds"]
        assert counters["invalidations"] == n_loops
        assert counters["entries_invalidated"] <= counters["builds"]

    def test_builder_racing_an_invalidation_never_publishes_stale(self):
        import threading

        cache = HopCache()
        release = threading.Event()
        entered = threading.Event()

        def parked_builder():
            entered.set()
            release.wait(2.0)
            return "stale"

        worker = threading.Thread(
            target=lambda: cache.get_or_build("t", "t.k", 0, parked_builder)
        )
        worker.start()
        assert entered.wait(2.0)
        # Invalidate while the elected builder is mid-build: its result
        # must be returned to its caller but never enter the cache.
        cache.invalidate("t")
        release.set()
        worker.join()
        assert len(cache) == 0
        assert ("t", "t.k", 0) not in cache
        # The next lookup is an ordinary miss that rebuilds fresh.
        fresh = cache.get_or_build("t", "t.k", 0, lambda: "fresh")
        assert fresh == "fresh"
        assert ("t", "t.k", 0) in cache
